//! The sans-IO coordinator state machine.
//!
//! One [`Coordinator`] drives one global transaction through the protocol
//! selected at construction. It never performs IO: callers feed it
//! [`CoordEvent`]s and interpret the returned [`CoordAction`]s (send this
//! message, the decision is made, the transaction is finished). Both the
//! threaded and the discrete-event runtimes drive the same machine, which
//! is what makes the golden traces representative of the benchmarked code.
//!
//! State progression mirrors the global-transaction halves of Figs. 2, 4
//! and 6: `Running → Inquiring → WaitingToCommit/WaitingToAbort →
//! Committed/Aborted`.

use amc_obs::{EventKind, ObsSink};
use amc_types::{
    GlobalPhase, GlobalTxnId, GlobalVerdict, LocalVote, Operation, ProtocolKind, SiteId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Input to the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordEvent {
    /// Kick off: ship the decomposed programs.
    Start,
    /// A vote (submit reply, or prepare reply for 2PC) arrived.
    Vote {
        /// Voting site.
        site: SiteId,
        /// Its vote.
        vote: LocalVote,
    },
    /// A `finished` message arrived.
    Finished {
        /// Acknowledging site.
        site: SiteId,
    },
    /// Retransmission timer fired (the driver decides the cadence; the
    /// machine re-emits whatever is still outstanding).
    Timer,
}

/// Output of the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordAction {
    /// Send `payload` to `site`.
    Send {
        /// Destination.
        site: SiteId,
        /// Message.
        payload: amc_net::Payload,
    },
    /// The global decision has been made (emitted exactly once).
    Decided(GlobalVerdict),
    /// The protocol is complete; the global transaction reached its
    /// terminal phase.
    Done(GlobalVerdict),
}

/// Retransmission backoff ceiling: once a site has missed enough timers,
/// it is re-asked every `BACKOFF_CAP_TICKS` ticks instead of every tick.
const BACKOFF_CAP_TICKS: u32 = 64;

/// Deterministic retransmission jitter in `[0, base/4]`, mixed from the
/// (transaction, site, attempt) triple with SplitMix64. Many coordinators
/// wedged on the same recovering site would otherwise re-inquire on
/// exactly the same ticks — the doubling schedule is identical for all of
/// them. A pure function (no RNG state) keeps replays of the same
/// schedule bit-identical.
fn backoff_jitter(gtx: GlobalTxnId, site: SiteId, misses: u32, base: u32) -> u32 {
    let mut z = gtx
        .raw()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(site.raw()) << 32)
        .wrapping_add(u64::from(misses));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as u32) % (base / 4 + 1)
}

/// Per-site retransmission backoff state. A site that stays silent is
/// re-asked after 2, 4, 8, … ticks (capped), not on every tick — PR 1's
/// every-tick re-inquiry turned a long partition into a retransmit storm.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Backoff {
    /// Timer ticks on which this site was actually retransmitted to.
    misses: u32,
    /// Ticks to skip before the next retransmission.
    ticks_left: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Round {
    /// Work shipped, collecting submit replies.
    Work,
    /// 2PC only: prepare shipped, collecting ready votes.
    Prepare,
    /// Decision shipped, collecting finished acks.
    Finish,
    /// Terminal.
    Done,
}

/// Coordinator for one global transaction.
#[derive(Debug, Clone)]
pub struct Coordinator {
    gtx: GlobalTxnId,
    protocol: ProtocolKind,
    programs: BTreeMap<SiteId, Vec<Operation>>,
    round: Round,
    votes: BTreeMap<SiteId, Option<LocalVote>>,
    /// Sites we expect a `finished` from, with the payload to retransmit.
    pending_finish: BTreeMap<SiteId, amc_net::Payload>,
    /// Commit-before abort only: sites whose final state was unknown when
    /// the decision fell. §3.3: the coordinator keeps inquiring — a site
    /// that turns out to have committed still needs its undo.
    awaiting_final_state: BTreeSet<SiteId>,
    /// Per-site retransmission backoff (reset when the site answers or a
    /// new round ships fresh messages).
    backoff: BTreeMap<SiteId, Backoff>,
    /// 1PC vote piggyback (2PC only): the work dispatch carries the
    /// prepare, the submit replies are the votes, and the separate prepare
    /// round disappears.
    piggyback: bool,
    verdict: Option<GlobalVerdict>,
    obs: ObsSink,
}

impl Coordinator {
    /// A coordinator for `gtx` running `protocol` over the decomposed
    /// `programs`.
    pub fn new(
        gtx: GlobalTxnId,
        protocol: ProtocolKind,
        programs: BTreeMap<SiteId, Vec<Operation>>,
    ) -> Self {
        assert!(
            !programs.is_empty(),
            "a global transaction needs participants"
        );
        assert!(
            programs.keys().all(|s| !s.is_central()),
            "the central system is not a participant"
        );
        let votes = programs.keys().map(|s| (*s, None)).collect();
        Coordinator {
            gtx,
            protocol,
            programs,
            round: Round::Work,
            votes,
            pending_finish: BTreeMap::new(),
            awaiting_final_state: BTreeSet::new(),
            backoff: BTreeMap::new(),
            piggyback: false,
            verdict: None,
            obs: ObsSink::disabled(),
        }
    }

    /// Enable the 1PC vote piggyback (*To Vote Before Decide*). Only
    /// meaningful under 2PC — the portable protocols' votes already ride
    /// their submit replies. `start` ships the combined `SubmitPrepare`
    /// dispatch and unanimous ready replies decide commit directly,
    /// cutting the dedicated prepare round (one RTT per site).
    ///
    /// Retransmission is unchanged: a silent site is re-inquired with
    /// `Prepare`, which the managers answer idempotently from the durable
    /// prepared state (or presume abort if the dispatch never arrived).
    pub fn with_piggyback(mut self) -> Self {
        debug_assert_eq!(
            self.protocol,
            ProtocolKind::TwoPhaseCommit,
            "piggyback is a 2PC fast path"
        );
        self.piggyback = true;
        self
    }

    /// Attach an observability sink; votes, decisions, inquiries and
    /// completion emit events attributed to the central system.
    pub fn set_obs(&mut self, sink: ObsSink) {
        self.obs = sink;
    }

    fn emit(&self, kind: EventKind) {
        self.obs.emit(Some(self.gtx), SiteId::new(0), kind);
    }

    /// This coordinator's transaction.
    pub fn gtx(&self) -> GlobalTxnId {
        self.gtx
    }

    /// Participant sites.
    pub fn participants(&self) -> Vec<SiteId> {
        self.programs.keys().copied().collect()
    }

    /// The decision, once made.
    pub fn verdict(&self) -> Option<GlobalVerdict> {
        self.verdict
    }

    /// The paper's global-transaction phase (Figs. 2/4/6 left columns).
    pub fn phase(&self) -> GlobalPhase {
        match (self.round, self.verdict) {
            (Round::Work, _) if self.votes.values().all(Option::is_none) => GlobalPhase::Running,
            (Round::Work, _) | (Round::Prepare, _) => GlobalPhase::Inquiring,
            (Round::Finish, Some(GlobalVerdict::Commit)) => GlobalPhase::WaitingToCommit,
            (Round::Finish, Some(GlobalVerdict::Abort)) => GlobalPhase::WaitingToAbort,
            (Round::Done, Some(GlobalVerdict::Commit)) => GlobalPhase::Committed,
            (Round::Done, _) => GlobalPhase::Aborted,
            (Round::Finish, None) => unreachable!("finish round implies a verdict"),
        }
    }

    /// True once the protocol is complete.
    pub fn is_done(&self) -> bool {
        self.round == Round::Done
    }

    /// Rebuild a coordinator after a **central-system crash** (the
    /// coordinator-side half of crash recovery, cf. [Ske 81]):
    ///
    /// * `Some(verdict)` — the decision had been forced to the central log
    ///   before the crash: resume the finish round and re-drive every
    ///   participant (handlers are idempotent: markers, tombstones, state
    ///   checks).
    /// * `None` — no durable decision: **presume abort**. Participant
    ///   votes are unknown; commit-before inquires for final states and
    ///   undoes late "committed" answers, the decision-holding protocols
    ///   ship the abort to everyone.
    ///
    /// Returns the rebuilt machine plus the actions to perform immediately.
    pub fn resume(
        gtx: GlobalTxnId,
        protocol: ProtocolKind,
        programs: BTreeMap<SiteId, Vec<Operation>>,
        logged_verdict: Option<GlobalVerdict>,
    ) -> (Self, Vec<CoordAction>) {
        let mut c = Coordinator::new(gtx, protocol, programs);
        let actions = match logged_verdict {
            Some(GlobalVerdict::Commit) => {
                // A commit was decided, so every participant had voted yes;
                // whether any was read-only is lost with the crash — assume
                // not and re-drive everyone (duplicates are absorbed).
                for slot in c.votes.values_mut() {
                    *slot = Some(LocalVote::Ready);
                }
                c.decide(GlobalVerdict::Commit)
            }
            // Aborts (logged or presumed): votes unknown — `decide` sends
            // the abort / inquires as the protocol requires.
            _ => c.decide(GlobalVerdict::Abort),
        };
        // Drop the duplicate `Decided` marker: the decision (if any) was
        // already counted before the crash, and a presumed abort is
        // reported through `Done`.
        let actions = actions
            .into_iter()
            .filter(|a| !matches!(a, CoordAction::Decided(_)))
            .collect();
        (c, actions)
    }

    /// Feed one event; interpret the returned actions.
    pub fn on_event(&mut self, event: CoordEvent) -> Vec<CoordAction> {
        match event {
            CoordEvent::Start => self.start(),
            CoordEvent::Vote { site, vote } => self.on_vote(site, vote),
            CoordEvent::Finished { site } => self.on_finished(site),
            CoordEvent::Timer => self.on_timer(),
        }
    }

    fn start(&mut self) -> Vec<CoordAction> {
        assert_eq!(self.round, Round::Work, "start called twice");
        self.programs
            .iter()
            .map(|(site, ops)| CoordAction::Send {
                site: *site,
                payload: if self.piggyback {
                    amc_net::Payload::SubmitPrepare {
                        gtx: self.gtx,
                        ops: ops.clone(),
                        solo: false,
                    }
                } else {
                    amc_net::Payload::Submit {
                        gtx: self.gtx,
                        ops: ops.clone(),
                    }
                },
            })
            .collect()
    }

    fn on_vote(&mut self, site: SiteId, vote: LocalVote) -> Vec<CoordAction> {
        // Commit-before abort: late final-state answers keep arriving
        // after the decision (§3.3's post-decision inquiry).
        if self.round == Round::Finish {
            return self.on_late_final_state(site, vote);
        }
        if self.round != Round::Work && self.round != Round::Prepare {
            return Vec::new(); // stale duplicate
        }
        let Some(slot) = self.votes.get_mut(&site) else {
            return Vec::new(); // not a participant; ignore
        };
        if self.round == Round::Work && slot.is_some() {
            return Vec::new(); // duplicate
        }
        *slot = Some(vote);
        self.backoff.remove(&site);
        self.emit(EventKind::Vote { from: site, vote });

        // An abort vote decides immediately — no point waiting (§3.1).
        if vote == LocalVote::Aborted {
            return self.decide(GlobalVerdict::Abort);
        }
        if self.votes.values().any(Option::is_none) {
            return Vec::new(); // still collecting
        }
        // All ready.
        match (self.protocol, self.round) {
            // Piggyback: the work replies *are* the prepare votes — the
            // transaction is already prepared everywhere; decide directly.
            (ProtocolKind::TwoPhaseCommit, Round::Work) if !self.piggyback => {
                // Work complete everywhere: start the voting phase proper.
                self.round = Round::Prepare;
                self.backoff.clear();
                for slot in self.votes.values_mut() {
                    *slot = None;
                }
                self.programs
                    .keys()
                    .map(|site| CoordAction::Send {
                        site: *site,
                        payload: amc_net::Payload::Prepare { gtx: self.gtx },
                    })
                    .collect()
            }
            _ => self.decide(GlobalVerdict::Commit),
        }
    }

    fn decide(&mut self, verdict: GlobalVerdict) -> Vec<CoordAction> {
        debug_assert!(self.verdict.is_none());
        self.verdict = Some(verdict);
        self.round = Round::Finish;
        self.backoff.clear();
        self.emit(EventKind::Decide { verdict });
        let mut actions = vec![CoordAction::Decided(verdict)];

        for (site, _) in self.programs.iter() {
            let voted = self.votes.get(site).copied().flatten();
            // Read-only participants committed at their vote and dropped
            // out of the decision round entirely.
            if voted == Some(LocalVote::ReadyReadOnly) {
                continue;
            }
            let payload = match (self.protocol, verdict) {
                // 2PC and commit-after ship the decision to everyone; a
                // participant that already aborted locally tolerates the
                // duplicate abort (§3.2's state diagram).
                (ProtocolKind::TwoPhaseCommit, v) | (ProtocolKind::CommitAfter, v) => {
                    Some(amc_net::Payload::Decision {
                        gtx: self.gtx,
                        verdict: v,
                    })
                }
                // Commit-before, commit: nothing to do — the locals already
                // committed (§3.3: "does not need to start further
                // actions").
                (ProtocolKind::CommitBefore, GlobalVerdict::Commit) => None,
                // Commit-before, abort: undo the sites that committed.
                // Empty inverse_ops selects the manager-local undo-log.
                // Sites with *unknown* final state must be inquired until
                // they answer — a silent site may have committed (§3.3).
                (ProtocolKind::CommitBefore, GlobalVerdict::Abort) => match voted {
                    Some(LocalVote::Ready) => Some(amc_net::Payload::Undo {
                        gtx: self.gtx,
                        inverse_ops: Vec::new(),
                    }),
                    // Read-only: committed, but with no effects to invert.
                    Some(LocalVote::ReadyReadOnly) => None,
                    Some(LocalVote::Aborted) => None,
                    None => {
                        self.awaiting_final_state.insert(*site);
                        self.obs.emit(
                            Some(self.gtx),
                            SiteId::new(0),
                            EventKind::Inquiry { to: *site },
                        );
                        actions.push(CoordAction::Send {
                            site: *site,
                            payload: amc_net::Payload::Prepare { gtx: self.gtx },
                        });
                        None
                    }
                },
            };
            if let Some(payload) = payload {
                self.pending_finish.insert(*site, payload.clone());
                actions.push(CoordAction::Send {
                    site: *site,
                    payload,
                });
            }
        }
        if self.pending_finish.is_empty() && self.awaiting_final_state.is_empty() {
            self.round = Round::Done;
            self.emit(EventKind::Done { verdict });
            actions.push(CoordAction::Done(verdict));
        }
        actions
    }

    /// A final-state answer arriving after an abort decision (commit-before
    /// only): a committed site gets its undo now.
    fn on_late_final_state(&mut self, site: SiteId, vote: LocalVote) -> Vec<CoordAction> {
        if !self.awaiting_final_state.remove(&site) {
            return Vec::new(); // duplicate or unrelated
        }
        self.backoff.remove(&site);
        debug_assert_eq!(self.protocol, ProtocolKind::CommitBefore);
        debug_assert_eq!(self.verdict, Some(GlobalVerdict::Abort));
        *self.votes.get_mut(&site).expect("participant") = Some(vote);
        self.emit(EventKind::Vote { from: site, vote });
        let mut actions = Vec::new();
        if vote == LocalVote::Ready {
            let payload = amc_net::Payload::Undo {
                gtx: self.gtx,
                inverse_ops: Vec::new(),
            };
            self.pending_finish.insert(site, payload.clone());
            actions.push(CoordAction::Send { site, payload });
        }
        if self.pending_finish.is_empty() && self.awaiting_final_state.is_empty() {
            self.round = Round::Done;
            let verdict = self.verdict.expect("decided");
            self.emit(EventKind::Done { verdict });
            actions.push(CoordAction::Done(verdict));
        }
        actions
    }

    fn on_finished(&mut self, site: SiteId) -> Vec<CoordAction> {
        if self.round != Round::Finish {
            return Vec::new();
        }
        self.pending_finish.remove(&site);
        self.backoff.remove(&site);
        if self.pending_finish.is_empty() && self.awaiting_final_state.is_empty() {
            self.round = Round::Done;
            let verdict = self.verdict.expect("finish round has a verdict");
            self.emit(EventKind::Done { verdict });
            return vec![CoordAction::Done(verdict)];
        }
        Vec::new()
    }

    /// Retransmit outstanding messages. In the work/prepare rounds the
    /// missing piece is a vote: re-inquire with `Prepare` (the paper's
    /// post-recovery inquiry — the managers answer from durable state). In
    /// the finish round, re-send the decision — except that a commit-after
    /// **commit** is retransmitted as `Redo` carrying the operations, since
    /// a crashed site may have lost the running transaction and needs the
    /// program to repeat it (§3.2) — and re-inquire every site whose final
    /// state is still unknown after a commit-before abort: losing either
    /// the one-shot inquiry or its answer must not end the inquiry (§3.3).
    ///
    /// Retransmissions back off per site: the first timer after a send
    /// retransmits immediately (fast recovery from a single lost message),
    /// then the gap doubles up to [`BACKOFF_CAP_TICKS`] ticks, so a long
    /// partition costs O(log + ticks/cap) sends per site instead of one
    /// per tick. Any answer from the site resets its backoff.
    fn on_timer(&mut self) -> Vec<CoordAction> {
        // What is outstanding, and what would we send each site?
        let targets: Vec<(SiteId, amc_net::Payload, bool)> = match self.round {
            Round::Work | Round::Prepare => self
                .votes
                .iter()
                .filter(|(_, v)| v.is_none())
                .map(|(site, _)| {
                    (
                        *site,
                        amc_net::Payload::Prepare { gtx: self.gtx },
                        true, // an inquiry
                    )
                })
                .collect(),
            Round::Finish => self
                .pending_finish
                .iter()
                .map(|(site, payload)| {
                    let payload = match (self.protocol, self.verdict) {
                        (ProtocolKind::CommitAfter, Some(GlobalVerdict::Commit)) => {
                            amc_net::Payload::Redo {
                                gtx: self.gtx,
                                ops: self.programs[site].clone(),
                            }
                        }
                        _ => payload.clone(),
                    };
                    (*site, payload, false)
                })
                .chain(
                    self.awaiting_final_state
                        .iter()
                        .map(|site| (*site, amc_net::Payload::Prepare { gtx: self.gtx }, true)),
                )
                .collect(),
            Round::Done => Vec::new(),
        };
        let mut actions = Vec::new();
        for (site, payload, is_inquiry) in targets {
            let due = {
                let gtx = self.gtx;
                let slot = self.backoff.entry(site).or_default();
                if slot.ticks_left > 0 {
                    slot.ticks_left -= 1;
                    false
                } else {
                    slot.misses += 1;
                    let base = (1u32 << slot.misses.min(6)).min(BACKOFF_CAP_TICKS);
                    slot.ticks_left = base + backoff_jitter(gtx, site, slot.misses, base);
                    true
                }
            };
            if !due {
                continue;
            }
            if is_inquiry {
                self.emit(EventKind::Inquiry { to: site });
            }
            actions.push(CoordAction::Send { site, payload });
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_net::Payload;
    use amc_types::Value;

    fn gtx() -> GlobalTxnId {
        GlobalTxnId::new(1)
    }
    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }

    fn programs(sites: &[u32]) -> BTreeMap<SiteId, Vec<Operation>> {
        sites
            .iter()
            .map(|s| {
                (
                    site(*s),
                    vec![Operation::Increment {
                        obj: amc_types::ObjectId::new(u64::from(*s)),
                        delta: 1,
                    }],
                )
            })
            .collect()
    }

    fn sends(actions: &[CoordAction]) -> Vec<(SiteId, &'static str)> {
        actions
            .iter()
            .filter_map(|a| match a {
                CoordAction::Send { site, payload } => Some((*site, payload.label())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn two_phase_happy_path_matches_fig2() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::TwoPhaseCommit, programs(&[1, 2]));
        assert_eq!(c.phase(), GlobalPhase::Running);
        let a = c.on_event(CoordEvent::Start);
        assert_eq!(sends(&a), vec![(site(1), "submit"), (site(2), "submit")]);
        // Work replies.
        assert!(c
            .on_event(CoordEvent::Vote {
                site: site(1),
                vote: LocalVote::Ready
            })
            .is_empty());
        assert_eq!(c.phase(), GlobalPhase::Inquiring);
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Ready,
        });
        // All work done: the prepare round of Fig. 2.
        assert_eq!(sends(&a), vec![(site(1), "prepare"), (site(2), "prepare")]);
        // Ready votes.
        assert!(c
            .on_event(CoordEvent::Vote {
                site: site(1),
                vote: LocalVote::Ready
            })
            .is_empty());
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Ready,
        });
        assert_eq!(a[0], CoordAction::Decided(GlobalVerdict::Commit));
        assert_eq!(
            sends(&a[1..]),
            vec![(site(1), "commit"), (site(2), "commit")]
        );
        assert_eq!(c.phase(), GlobalPhase::WaitingToCommit);
        // Finished acks.
        assert!(c
            .on_event(CoordEvent::Finished { site: site(1) })
            .is_empty());
        let a = c.on_event(CoordEvent::Finished { site: site(2) });
        assert_eq!(a, vec![CoordAction::Done(GlobalVerdict::Commit)]);
        assert_eq!(c.phase(), GlobalPhase::Committed);
        assert!(c.is_done());
    }

    #[test]
    fn piggyback_cuts_the_prepare_round() {
        // 1PC vote piggyback: one combined dispatch, the replies are the
        // votes, decide directly — two fewer messages per site than Fig. 2.
        let mut c = Coordinator::new(gtx(), ProtocolKind::TwoPhaseCommit, programs(&[1, 2]))
            .with_piggyback();
        let a = c.on_event(CoordEvent::Start);
        assert_eq!(
            sends(&a),
            vec![(site(1), "submit-prepare"), (site(2), "submit-prepare")]
        );
        assert!(c
            .on_event(CoordEvent::Vote {
                site: site(1),
                vote: LocalVote::Ready
            })
            .is_empty());
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Ready,
        });
        assert_eq!(a[0], CoordAction::Decided(GlobalVerdict::Commit));
        assert_eq!(
            sends(&a[1..]),
            vec![(site(1), "commit"), (site(2), "commit")]
        );
        c.on_event(CoordEvent::Finished { site: site(1) });
        let a = c.on_event(CoordEvent::Finished { site: site(2) });
        assert_eq!(a, vec![CoordAction::Done(GlobalVerdict::Commit)]);
    }

    #[test]
    fn piggyback_abort_vote_decides_abort() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::TwoPhaseCommit, programs(&[1, 2]))
            .with_piggyback();
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Aborted,
        });
        assert_eq!(a[0], CoordAction::Decided(GlobalVerdict::Abort));
        // Site 1 holds a piggybacked prepare; it must see the abort.
        assert_eq!(sends(&a[1..]), vec![(site(1), "abort"), (site(2), "abort")]);
    }

    #[test]
    fn piggyback_timer_reinquires_with_prepare() {
        // A lost combined dispatch (or its reply) is recovered by the
        // classic Prepare inquiry, answered idempotently by the manager.
        let mut c = Coordinator::new(gtx(), ProtocolKind::TwoPhaseCommit, programs(&[1, 2]))
            .with_piggyback();
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        let a = c.on_event(CoordEvent::Timer);
        assert_eq!(sends(&a), vec![(site(2), "prepare")]);
    }

    #[test]
    fn commit_after_skips_the_prepare_round() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitAfter, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Ready,
        });
        // Votes double as submit replies (§3.2): decision follows directly.
        assert_eq!(a[0], CoordAction::Decided(GlobalVerdict::Commit));
        assert_eq!(
            sends(&a[1..]),
            vec![(site(1), "commit"), (site(2), "commit")]
        );
    }

    #[test]
    fn commit_before_commit_sends_nothing_after_deciding() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitBefore, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Ready,
        });
        // §3.3: no further actions; protocol completes in the same step.
        assert_eq!(
            a,
            vec![
                CoordAction::Decided(GlobalVerdict::Commit),
                CoordAction::Done(GlobalVerdict::Commit),
            ]
        );
        assert!(c.is_done());
    }

    #[test]
    fn commit_before_abort_undoes_only_committed_sites() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitBefore, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Aborted,
        });
        assert_eq!(a[0], CoordAction::Decided(GlobalVerdict::Abort));
        // Only site 1 committed; only site 1 gets an undo (Fig. 6).
        assert_eq!(sends(&a[1..]), vec![(site(1), "undo")]);
        assert_eq!(c.phase(), GlobalPhase::WaitingToAbort);
        let a = c.on_event(CoordEvent::Finished { site: site(1) });
        assert_eq!(a, vec![CoordAction::Done(GlobalVerdict::Abort)]);
    }

    #[test]
    fn abort_vote_in_work_round_aborts_without_waiting() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::TwoPhaseCommit, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        let a = c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Aborted,
        });
        assert_eq!(a[0], CoordAction::Decided(GlobalVerdict::Abort));
        // Abort decision still travels to every participant.
        assert_eq!(sends(&a[1..]), vec![(site(1), "abort"), (site(2), "abort")]);
    }

    #[test]
    fn commit_before_abort_with_no_committed_site_finishes_immediately() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitBefore, programs(&[1]));
        c.on_event(CoordEvent::Start);
        let a = c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Aborted,
        });
        assert_eq!(
            a,
            vec![
                CoordAction::Decided(GlobalVerdict::Abort),
                CoordAction::Done(GlobalVerdict::Abort),
            ]
        );
    }

    #[test]
    fn timer_reinquires_missing_votes() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitBefore, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        let a = c.on_event(CoordEvent::Timer);
        // Only the silent site is re-asked, with a Prepare inquiry.
        assert_eq!(sends(&a), vec![(site(2), "prepare")]);
    }

    #[test]
    fn timer_retransmits_commit_after_commit_as_redo() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitAfter, programs(&[1]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        // Commit decision sent; the finished ack never arrives.
        let a = c.on_event(CoordEvent::Timer);
        match &a[0] {
            CoordAction::Send {
                site: s,
                payload: Payload::Redo { ops, .. },
            } => {
                assert_eq!(*s, site(1));
                assert_eq!(ops.len(), 1, "redo carries the program");
            }
            other => panic!("expected Redo, got {other:?}"),
        }
    }

    #[test]
    fn timer_retransmits_undo_verbatim() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitBefore, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Aborted,
        });
        let a = c.on_event(CoordEvent::Timer);
        assert_eq!(sends(&a), vec![(site(1), "undo")]);
    }

    #[test]
    fn timer_reinquires_unknown_final_state_after_abort() {
        // Commit-before, abort decided while site 1's final state was
        // unknown (it never answered the submit). The one-shot inquiry sent
        // at decision time can be lost; every timer must re-ask until the
        // site answers, or a single dropped message wedges the transaction.
        let (mut c, actions) =
            Coordinator::resume(gtx(), ProtocolKind::CommitBefore, programs(&[1, 2]), None);
        assert_eq!(
            sends(&actions),
            vec![(site(1), "prepare"), (site(2), "prepare")]
        );
        // Site 2 answers; site 1's inquiry (or its answer) is lost.
        c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Aborted,
        });
        let a = c.on_event(CoordEvent::Timer);
        assert_eq!(sends(&a), vec![(site(1), "prepare")]);
        // The late answer still lands and completes the protocol.
        let a = c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Aborted,
        });
        assert_eq!(a, vec![CoordAction::Done(GlobalVerdict::Abort)]);
    }

    #[test]
    fn timer_backoff_caps_inquiries_under_a_long_partition() {
        // Commit-before abort with both sites' final state unknown and a
        // partition that outlives 1000 timer ticks. PR 1 re-inquired every
        // site on every tick — 2000 sends; capped exponential backoff
        // (2, 4, 8, … up to 64 ticks between retries) keeps it sparse.
        let (mut c, _) =
            Coordinator::resume(gtx(), ProtocolKind::CommitBefore, programs(&[1, 2]), None);
        let ticks = 1000usize;
        let mut inquiries = 0usize;
        for _ in 0..ticks {
            inquiries += sends(&c.on_event(CoordEvent::Timer)).len();
        }
        assert!(inquiries >= 8, "backoff must keep retrying: {inquiries}");
        assert!(
            inquiries <= 60,
            "retransmit storm: {inquiries} inquiries in {ticks} ticks (was {})",
            2 * ticks
        );
        // An answer resets the site's backoff: the next timer after a fresh
        // outstanding message retransmits immediately again.
        let a = c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        assert_eq!(sends(&a), vec![(site(1), "undo")]);
        let a = c.on_event(CoordEvent::Timer);
        assert!(
            sends(&a).contains(&(site(1), "undo")),
            "first timer after a fresh send retransmits immediately: {a:?}"
        );
    }

    #[test]
    fn timer_backoff_doubles_then_caps() {
        // One silent site: record which ticks actually retransmit. Gaps
        // follow the doubling envelope (2, 4, 8, … capped at 64 ticks)
        // plus a deterministic jitter of at most a quarter of it.
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitBefore, programs(&[1]));
        c.on_event(CoordEvent::Start);
        let mut send_ticks = Vec::new();
        for t in 0..700usize {
            if !c.on_event(CoordEvent::Timer).is_empty() {
                send_ticks.push(t);
            }
        }
        assert_eq!(send_ticks[0], 0, "first timer retransmits immediately");
        let gaps: Vec<usize> = send_ticks.windows(2).map(|w| w[1] - w[0]).collect();
        let bases = [2usize, 4, 8, 16, 32, 64, 64, 64];
        for (i, gap) in gaps.iter().take(bases.len()).enumerate() {
            let base = bases[i];
            assert!(
                (base + 1..=base + base / 4 + 1).contains(gap),
                "gap {i} = {gap} outside the jittered envelope of base {base}: {gaps:?}"
            );
        }
        assert!(gaps.iter().all(|g| *g <= 64 + 16 + 1), "{gaps:?}");
    }

    #[test]
    fn backoff_jitter_is_deterministic_bounded_and_decorrelated() {
        let j = backoff_jitter(GlobalTxnId::new(1), site(1), 5, 64);
        assert_eq!(j, backoff_jitter(GlobalTxnId::new(1), site(1), 5, 64));
        assert!((0..50).all(|m| backoff_jitter(GlobalTxnId::new(3), site(2), m, 64) <= 16));
        // Small bases degenerate to zero jitter (nothing to spread).
        assert_eq!(backoff_jitter(GlobalTxnId::new(9), site(1), 1, 2), 0);
        // Different transactions land on different schedules.
        let distinct: std::collections::BTreeSet<u32> = (1..=20u64)
            .map(|g| backoff_jitter(GlobalTxnId::new(g), site(1), 6, 64))
            .collect();
        assert!(
            distinct.len() > 4,
            "jitter must spread schedules: {distinct:?}"
        );
    }

    #[test]
    fn duplicates_and_strays_are_ignored() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitAfter, programs(&[1]));
        c.on_event(CoordEvent::Start);
        assert!(c
            .on_event(CoordEvent::Vote {
                site: site(9),
                vote: LocalVote::Ready
            })
            .is_empty());
        let a = c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        assert!(!a.is_empty());
        // Late duplicate vote after decision: ignored.
        assert!(c
            .on_event(CoordEvent::Vote {
                site: site(1),
                vote: LocalVote::Ready
            })
            .is_empty());
        // Stray finished from a non-pending site: ignored, not done twice.
        c.on_event(CoordEvent::Finished { site: site(1) });
        assert!(c.is_done());
        assert!(c
            .on_event(CoordEvent::Finished { site: site(1) })
            .is_empty());
    }

    #[test]
    fn mixed_votes_in_2pc_prepare_round_abort() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::TwoPhaseCommit, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Ready,
        });
        // Prepare round: site 2 cannot prepare.
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Aborted,
        });
        assert_eq!(a[0], CoordAction::Decided(GlobalVerdict::Abort));
        assert_eq!(c.verdict(), Some(GlobalVerdict::Abort));
    }

    #[test]
    fn resume_with_logged_commit_redrives_participants() {
        let (mut c, actions) = Coordinator::resume(
            gtx(),
            ProtocolKind::CommitAfter,
            programs(&[1, 2]),
            Some(GlobalVerdict::Commit),
        );
        // No duplicate Decided marker; the decision goes back out to every
        // participant.
        assert!(actions
            .iter()
            .all(|a| !matches!(a, CoordAction::Decided(_))));
        assert_eq!(
            sends(&actions),
            vec![(site(1), "commit"), (site(2), "commit")]
        );
        assert_eq!(c.verdict(), Some(GlobalVerdict::Commit));
        c.on_event(CoordEvent::Finished { site: site(1) });
        let a = c.on_event(CoordEvent::Finished { site: site(2) });
        assert_eq!(a, vec![CoordAction::Done(GlobalVerdict::Commit)]);
    }

    #[test]
    fn resume_without_log_presumes_abort() {
        // Commit-before: unknown votes -> inquire everyone.
        let (c, actions) =
            Coordinator::resume(gtx(), ProtocolKind::CommitBefore, programs(&[1, 2]), None);
        assert_eq!(c.verdict(), Some(GlobalVerdict::Abort));
        assert_eq!(
            sends(&actions),
            vec![(site(1), "prepare"), (site(2), "prepare")]
        );
        // 2PC: abort decision goes to everyone directly.
        let (_, actions) =
            Coordinator::resume(gtx(), ProtocolKind::TwoPhaseCommit, programs(&[1, 2]), None);
        assert_eq!(
            sends(&actions),
            vec![(site(1), "abort"), (site(2), "abort")]
        );
    }

    #[test]
    fn resumed_commit_before_abort_undoes_late_committed_answer() {
        let (mut c, _) =
            Coordinator::resume(gtx(), ProtocolKind::CommitBefore, programs(&[1, 2]), None);
        // Site 1 answers the inquiry: it had committed.
        let a = c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::Ready,
        });
        assert_eq!(sends(&a), vec![(site(1), "undo")]);
        // Site 2 never committed.
        assert!(c
            .on_event(CoordEvent::Vote {
                site: site(2),
                vote: LocalVote::Aborted
            })
            .is_empty());
        let a = c.on_event(CoordEvent::Finished { site: site(1) });
        assert_eq!(a, vec![CoordAction::Done(GlobalVerdict::Abort)]);
    }

    #[test]
    fn resume_commit_before_commit_is_immediately_done() {
        let (c, actions) = Coordinator::resume(
            gtx(),
            ProtocolKind::CommitBefore,
            programs(&[1, 2]),
            Some(GlobalVerdict::Commit),
        );
        // Nothing to re-drive: the locals committed before the decision.
        assert_eq!(actions, vec![CoordAction::Done(GlobalVerdict::Commit)]);
        assert!(c.is_done());
    }

    #[test]
    fn read_only_vote_is_yes_but_skips_decision_round() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitAfter, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::ReadyReadOnly,
        });
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::Ready,
        });
        assert_eq!(a[0], CoordAction::Decided(GlobalVerdict::Commit));
        // Only the updating site sees the decision.
        assert_eq!(sends(&a[1..]), vec![(site(2), "commit")]);
        let done = c.on_event(CoordEvent::Finished { site: site(2) });
        assert_eq!(done, vec![CoordAction::Done(GlobalVerdict::Commit)]);
    }

    #[test]
    fn all_read_only_votes_finish_without_any_decision_message() {
        let mut c = Coordinator::new(gtx(), ProtocolKind::CommitAfter, programs(&[1, 2]));
        c.on_event(CoordEvent::Start);
        c.on_event(CoordEvent::Vote {
            site: site(1),
            vote: LocalVote::ReadyReadOnly,
        });
        let a = c.on_event(CoordEvent::Vote {
            site: site(2),
            vote: LocalVote::ReadyReadOnly,
        });
        assert_eq!(
            a,
            vec![
                CoordAction::Decided(GlobalVerdict::Commit),
                CoordAction::Done(GlobalVerdict::Commit),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "participants")]
    fn empty_participant_set_is_rejected() {
        Coordinator::new(gtx(), ProtocolKind::CommitBefore, BTreeMap::new());
    }

    #[test]
    fn value_type_used_in_programs() {
        // Silence the unused-import lint in a meaningful way: programs may
        // carry writes too.
        let mut p = programs(&[1]);
        p.get_mut(&site(1)).unwrap().push(Operation::Write {
            obj: amc_types::ObjectId::new(1),
            value: Value::counter(1),
        });
        let c = Coordinator::new(gtx(), ProtocolKind::CommitBefore, p);
        assert_eq!(c.participants(), vec![site(1)]);
    }
}
