//! # amc-core
//!
//! The paper's contribution: the **global transaction manager** of the
//! integrated database system, with all three atomic commitment protocols
//! of Muth & Rakow (ICDE 1991):
//!
//! | protocol | local commit point | repair mechanism | §  |
//! |---|---|---|---|
//! | [`ProtocolKind::TwoPhaseCommit`] | *during* the decision (ready state) | none needed — but requires modified engines | 3.1 |
//! | [`ProtocolKind::CommitAfter`] | after the global decision | **redo** (repeat the local transaction) | 3.2 |
//! | [`ProtocolKind::CommitBefore`] | before the global decision | **undo** (inverse transactions, reusing the multi-level machinery) | 3.3 / 4 |
//!
//! The protocol logic lives in a **sans-IO state machine**
//! ([`coordinator::Coordinator`]): it consumes votes/acks and emits
//! send-message and decision actions, so the exact same code runs under
//!
//! * [`federation::Federation`] — the threaded runtime used for the
//!   throughput experiments (E1–E3, E7), and
//! * [`simdrive::SimFederation`] — the deterministic discrete-event runtime
//!   used for golden traces (F2–F5), crash experiments (E5) and message
//!   accounting (E4).
//!
//! Global concurrency control is the L1 lock manager from `amc-mlt`, held
//! strictly until global end — which is precisely how the serializability
//! requirements of §3.2 (no conflicting work between an erroneous abort and
//! its repetition) and §3.3 (no non-commuting work between a commit and its
//! inverse) are discharged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod coordinator;
pub mod federation;
pub mod metrics;
pub mod simdrive;

pub use amc_types::ProtocolKind;
pub use config::{
    coord_slot_of, CoordIdentity, FederationConfig, PaxosCommitConfig, COORD_GTX_SPAN,
};
pub use coordinator::{CoordAction, CoordEvent, Coordinator};
pub use federation::{submit_mode_for, Federation, TxnOutcome};
pub use metrics::RunMetrics;
pub use simdrive::{SimConfig, SimFederation, SimReport};
