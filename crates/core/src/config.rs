//! Federation configuration.

use amc_engine::{OccEngine, TplConfig, TwoPLEngine};
use amc_mlt::ConflictPolicy;
use amc_net::{EngineHandle, LocalCommManager};
use amc_types::{GlobalTxnId, ProtocolKind, SiteId};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Size of the global-transaction-id range owned by one coordinator of a
/// sharded federation. Coordinator slot `k` allocates ids from
/// `k * COORD_GTX_SPAN + 1` upward, so N independent coordinators can
/// allocate concurrently without coordination and never collide — and any
/// gtx seen in a log or trace names its coordinator via [`coord_slot_of`].
/// 2^40 ids per slot leaves room for 2^21 slots below the reserved marker
/// region (`MARKER_BIT = 1<<63`).
pub const COORD_GTX_SPAN: u64 = 1 << 40;

/// Which coordinator slot allocated `gtx` (slot 0 for unsharded runs,
/// whose ids start at 1).
pub fn coord_slot_of(gtx: GlobalTxnId) -> u32 {
    (gtx.raw() / COORD_GTX_SPAN) as u32
}

/// Identity of one coordinator in a sharded (multi-coordinator)
/// federation: which of the `coordinators` id-range slots it owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoordIdentity {
    /// This coordinator's slot, `0..coordinators`.
    pub slot: u32,
    /// Total number of coordinators in the topology.
    pub coordinators: u32,
}

/// Paxos Commit (Gray & Lamport) for the central system: the commit
/// decision is replicated across `2f+1` acceptors co-located with site
/// servers, so the death of the incumbent coordinator never leaves a
/// prepared site blocked — any standby replica finishes in-doubt
/// transactions from the acceptor logs.
///
/// Only meaningful under [`ProtocolKind::TwoPhaseCommit`]: Paxos Commit
/// replicates the prepare/decision structure of 2PC (it is 2PC's
/// non-blocking generalisation); the portable protocols have no prepared
/// state to make durable.
#[derive(Debug, Clone)]
pub struct PaxosCommitConfig {
    /// Acceptor-hosting sites — `2f+1` of them to tolerate `f` failures.
    /// Every entry must be an existing site of the federation.
    pub acceptors: Vec<SiteId>,
    /// This coordinator replica's ballot tie-break id. Recovery ballots
    /// are `(round ≥ 1, replica)`; ballot 0 is the incumbent fast path.
    pub replica: u32,
    /// Standby takeover lease: how long a registered-but-undecided
    /// transaction may stay open before a standby assumes the incumbent
    /// died and claims ballot leadership.
    pub lease: Duration,
    /// Directory for the in-process acceptor logs (used by
    /// `Federation::new`; TCP deployments mount acceptors in their site
    /// servers instead).
    pub log_dir: PathBuf,
    /// Group-commit linger for the acceptor logs: accepts arriving within
    /// this window of each other share one fsync instead of paying one
    /// each (the `amc-wal` group-committer pattern applied to the Paxos
    /// durability point). `None` keeps the historical sync-per-record
    /// behaviour.
    pub acceptor_linger: Option<Duration>,
}

impl PaxosCommitConfig {
    /// A config tolerating `f = (acceptors-1)/2` failures with logs under
    /// `log_dir`, speaking as replica 0 (the incumbent).
    pub fn new(acceptors: Vec<SiteId>, log_dir: impl Into<PathBuf>) -> Self {
        PaxosCommitConfig {
            acceptors,
            replica: 0,
            lease: Duration::from_millis(200),
            log_dir: log_dir.into(),
            acceptor_linger: None,
        }
    }

    /// Batch acceptor-log fsyncs through a `linger`-long group-commit
    /// window.
    pub fn with_acceptor_linger(mut self, linger: Duration) -> Self {
        self.acceptor_linger = Some(linger);
        self
    }
}

/// Which engine flavour a site runs — the federation's heterogeneity axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Strict-2PL engine (preparable — can serve the 2PC baseline).
    TwoPL,
    /// Optimistic engine (not preparable: 2PC cannot run on it).
    Occ,
}

/// Configuration for a federation instance.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Commit protocol.
    pub protocol: ProtocolKind,
    /// L1 conflict policy (semantic vs read/write-only, for the E7
    /// ablation). Ignored by the 2PC baseline, which has no L1 layer.
    pub policy: ConflictPolicy,
    /// One engine per local site; site ids are `1..=engines.len()`.
    pub engines: Vec<EngineKind>,
    /// Local 2PL engine tuning.
    pub tpl: TplConfig,
    /// How long a global transaction may wait for one L1 lock.
    pub l1_timeout: Duration,
    /// Modelled round-trip cost of one coordinator↔site exchange in the
    /// threaded driver (network + handler service time). Zero disables the
    /// model; the concurrency experiments set a realistic value so that
    /// lock-tenure differences between the protocols are visible, exactly
    /// as they were on 1991 networks where a message round trip dwarfed
    /// local work.
    pub message_delay: Duration,
    /// Replicated, non-blocking coordination (Paxos Commit). `None` runs
    /// the classical single coordinator of Fig. 2.
    pub paxos: Option<PaxosCommitConfig>,
    /// 1PC fast path: piggyback the PREPARE on the op dispatch (the work
    /// reply doubles as the vote, cutting the explicit prepare round) and
    /// commit single-site transactions with no global round at all.
    ///
    /// 2PC only — the portable protocols' votes already ride their submit
    /// replies — and mutually exclusive with Paxos Commit, whose
    /// replicated decision hangs ballot-0 accepts off the explicit
    /// prepare round. Default off; when off every runtime behaves
    /// exactly as before.
    pub fast_path: bool,
    /// This instance's identity in a sharded multi-coordinator topology.
    /// `None` (the default) is the classical single central system; its
    /// transaction ids start at 1, identical to slot 0 of a sharded run.
    pub coordinator: Option<CoordIdentity>,
}

impl FederationConfig {
    /// `n` homogeneous 2PL sites under `protocol` with semantic conflicts.
    pub fn uniform(n: u32, protocol: ProtocolKind) -> Self {
        FederationConfig {
            protocol,
            policy: ConflictPolicy::Semantic,
            engines: vec![EngineKind::TwoPL; n as usize],
            tpl: TplConfig::default(),
            l1_timeout: Duration::from_secs(2),
            message_delay: Duration::ZERO,
            paxos: None,
            fast_path: false,
            coordinator: None,
        }
    }

    /// Run this federation instance as coordinator `slot` of a
    /// `coordinators`-wide sharded topology: its global transaction ids
    /// are allocated from the slot's disjoint [`COORD_GTX_SPAN`] range, so
    /// concurrent coordinators driving the same site fleet never collide.
    pub fn sharded(mut self, slot: u32, coordinators: u32) -> Self {
        assert!(slot < coordinators, "slot must be < coordinators");
        assert!(
            u64::from(coordinators) <= (1 << 21),
            "id-range slots above 2^21 collide with the marker region"
        );
        self.coordinator = Some(CoordIdentity { slot, coordinators });
        self
    }

    /// Enable the 1PC fast path (vote piggyback + single-site bypass).
    /// Requires the 2PC protocol and no Paxos Commit configuration.
    pub fn with_fast_path(mut self) -> Self {
        assert_eq!(
            self.protocol,
            ProtocolKind::TwoPhaseCommit,
            "the 1PC fast path piggybacks 2PC's prepare; the portable \
             protocols' votes already ride their submit replies"
        );
        assert!(
            self.paxos.is_none(),
            "Paxos Commit needs the explicit prepare round for its \
             ballot-0 accepts"
        );
        self.fast_path = true;
        self
    }

    /// Enable Paxos Commit with acceptors at the first `2f+1` sites
    /// (requires the 2PC protocol and at least `acceptors` sites).
    pub fn with_paxos_commit(mut self, acceptors: u32, log_dir: impl Into<PathBuf>) -> Self {
        assert!(
            acceptors <= self.site_count(),
            "acceptors are co-located with sites"
        );
        let group = (1..=acceptors).map(SiteId::new).collect();
        self.paxos = Some(PaxosCommitConfig::new(group, log_dir));
        self
    }

    /// A heterogeneous federation: alternating 2PL and OCC sites.
    pub fn heterogeneous(n: u32, protocol: ProtocolKind) -> Self {
        let engines = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    EngineKind::TwoPL
                } else {
                    EngineKind::Occ
                }
            })
            .collect();
        FederationConfig {
            engines,
            ..Self::uniform(n, protocol)
        }
    }

    /// Number of local sites.
    pub fn site_count(&self) -> u32 {
        self.engines.len() as u32
    }

    /// Whether this configuration can run at all: 2PC needs every engine to
    /// be preparable (the paper's infeasibility argument, §3.1).
    pub fn is_runnable(&self) -> bool {
        self.protocol != ProtocolKind::TwoPhaseCommit
            || self.engines.iter().all(|e| *e == EngineKind::TwoPL)
    }

    /// Build the per-site communication managers (fresh engines).
    pub fn build_managers(&self) -> Vec<Arc<LocalCommManager>> {
        self.engines
            .iter()
            .enumerate()
            .map(|(i, kind)| {
                let site = SiteId::new(i as u32 + 1);
                let handle = match kind {
                    EngineKind::TwoPL => {
                        // 2PL engines are preparable; whether the protocol
                        // may *use* prepare is decided by the protocol
                        // itself. Modelling fidelity: under the two portable
                        // protocols, hand out the sealed interface only.
                        let engine = Arc::new(TwoPLEngine::new_at(self.tpl.clone(), site));
                        if self.protocol == ProtocolKind::TwoPhaseCommit {
                            EngineHandle::Preparable(engine)
                        } else {
                            EngineHandle::Plain(engine)
                        }
                    }
                    EngineKind::Occ => {
                        EngineHandle::Plain(Arc::new(OccEngine::with_defaults_at(site)))
                    }
                };
                Arc::new(LocalCommManager::new(site, handle))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_n_sites() {
        let cfg = FederationConfig::uniform(3, ProtocolKind::CommitBefore);
        assert_eq!(cfg.site_count(), 3);
        assert!(cfg.is_runnable());
        let managers = cfg.build_managers();
        assert_eq!(managers.len(), 3);
        assert_eq!(managers[0].site(), SiteId::new(1));
        assert_eq!(managers[2].site(), SiteId::new(3));
    }

    #[test]
    fn two_pc_on_heterogeneous_federation_is_not_runnable() {
        // The paper's core observation: an OCC engine has no ready state,
        // so classical 2PC cannot be deployed.
        let cfg = FederationConfig::heterogeneous(2, ProtocolKind::TwoPhaseCommit);
        assert!(!cfg.is_runnable());
        for p in [ProtocolKind::CommitAfter, ProtocolKind::CommitBefore] {
            assert!(FederationConfig::heterogeneous(2, p).is_runnable());
        }
    }

    #[test]
    fn coord_slots_partition_the_gtx_space() {
        assert_eq!(coord_slot_of(GlobalTxnId::new(1)), 0);
        assert_eq!(coord_slot_of(GlobalTxnId::new(COORD_GTX_SPAN - 1)), 0);
        assert_eq!(coord_slot_of(GlobalTxnId::new(COORD_GTX_SPAN + 1)), 1);
        assert_eq!(coord_slot_of(GlobalTxnId::new(3 * COORD_GTX_SPAN + 7)), 3);
    }

    #[test]
    #[should_panic(expected = "slot must be < coordinators")]
    fn sharded_rejects_out_of_range_slot() {
        let _ = FederationConfig::uniform(2, ProtocolKind::CommitBefore).sharded(4, 4);
    }

    #[test]
    fn portable_protocols_get_sealed_engines() {
        let cfg = FederationConfig::uniform(1, ProtocolKind::CommitBefore);
        let managers = cfg.build_managers();
        assert!(managers[0].handle().preparable().is_none());
        let cfg = FederationConfig::uniform(1, ProtocolKind::TwoPhaseCommit);
        let managers = cfg.build_managers();
        assert!(managers[0].handle().preparable().is_some());
    }
}
