//! The deterministic discrete-event federation runtime.
//!
//! Same managers, same engines, same [`crate::Coordinator`] —
//! but messages travel through the seeded [`amc_net::Router`] with latency
//! and loss, sites crash and restart on a [`amc_sim::FailurePlan`], and all
//! timing is virtual. This driver produces the golden message traces
//! (F2–F5), the crash/blocking experiment (E5) and exact message accounting
//! (E4).
//!
//! Modelling notes:
//!
//! * A local handler runs at message-delivery time; its reply is shipped
//!   after a fixed *service time* (engine work is modelled as instantaneous
//!   state change plus virtual delay — the protocols only care about
//!   ordering).
//! * The coordinator re-arms a retransmission timer per transaction until
//!   the protocol completes. Messages to a down site are dropped by the
//!   router; the timer is what eventually gets the protocol unstuck, which
//!   is exactly the paper's "the global transaction manager has to wait for
//!   the local system to come up again" (§3.3).
//! * This driver runs one simulation thread; it relies on workload design
//!   (not the L1 lock manager) to keep concurrent global transactions
//!   conflict-free, because a blocking L1 acquisition would stall the
//!   event loop. Contention experiments belong to the threaded
//!   [`Federation`](crate::Federation).

use crate::config::FederationConfig;
use crate::coordinator::{CoordAction, CoordEvent, Coordinator};
use amc_net::comm::SubmitMode;
use amc_net::router::{NetStats, RouterConfig, Routing};
use amc_net::{Envelope, LocalCommManager, MessageTrace, Payload, Router};
use amc_obs::{EventKind, EventLog, ObsSink};
use amc_sim::{EventQueue, FailurePlan, FaultEvent, FaultKind, FaultPlan, LinkDir, SimRng};
use amc_types::{
    AmcError, GlobalTxnId, GlobalVerdict, Operation, ProtocolKind, SimDuration, SimTime, SiteId,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Federation to build.
    pub federation: FederationConfig,
    /// Network behaviour.
    pub router: RouterConfig,
    /// RNG seed (drives latency and loss).
    pub seed: u64,
    /// Crash/restart schedule (E5 legacy form; merged with `faults`).
    pub failures: FailurePlan,
    /// Composed nemesis schedule: crashes (optionally with torn WAL
    /// tails), link partitions, loss bursts.
    pub faults: FaultPlan,
    /// Local handler service time (per message).
    pub service_time: SimDuration,
    /// Coordinator retransmission period.
    pub retransmit_every: SimDuration,
    /// Hard stop for the virtual clock.
    pub horizon: SimDuration,
    /// **Chaos-harness knob, deliberately unsafe**: skip forcing global
    /// decisions to the central decision log. A central crash then forgets
    /// decided-commit transactions and presumed abort tears them apart —
    /// exactly the bug the chaos sweep + shrinker demo must catch. Never
    /// set outside tests.
    pub unsafe_skip_decision_log: bool,
    /// Retention bound for the structured event log (ring buffer; the
    /// oldest events are evicted past this). Events are stamped with the
    /// virtual clock, so equal seeds give bit-identical logs.
    pub event_cap: usize,
}

impl SimConfig {
    /// Sensible defaults over `federation`: 0.5 ms latency, 0.2 ms service
    /// time, 20 ms retransmit, 10 s horizon, no failures.
    pub fn new(mut federation: FederationConfig) -> Self {
        // The event loop is single-threaded: an engine lock wait blocks the
        // whole simulation, so make accidental conflicts fail fast instead
        // of stalling for the default 2 s.
        federation.tpl.lock_timeout = std::time::Duration::from_millis(50);
        SimConfig {
            federation,
            router: RouterConfig::default(),
            seed: 42,
            failures: FailurePlan::none(),
            faults: FaultPlan::none(),
            service_time: SimDuration::from_micros(200),
            retransmit_every: SimDuration::from_millis(20),
            horizon: SimDuration::from_millis(10_000),
            unsafe_skip_decision_log: false,
            event_cap: amc_obs::log::DEFAULT_EVENT_CAP,
        }
    }

    /// The legacy crash/restart schedule and the composed fault schedule
    /// merged into one time-ordered plan.
    fn merged_faults(&self) -> FaultPlan {
        let mut events = FaultPlan::from(&self.failures).events();
        events.extend(self.faults.events());
        FaultPlan::from_events(events)
    }
}

/// What one simulated run produced.
#[derive(Debug)]
pub struct SimReport {
    /// Verdict per global transaction (missing = unresolved at horizon).
    pub outcomes: BTreeMap<GlobalTxnId, GlobalVerdict>,
    /// Virtual start→done duration per transaction.
    pub resolution: BTreeMap<GlobalTxnId, SimDuration>,
    /// Every message that entered the network.
    pub trace: MessageTrace,
    /// Messages admitted / dropped by the router.
    pub sent: u64,
    /// Dropped by loss or down sites.
    pub dropped: u64,
    /// Full network accounting (supersets `sent`/`dropped`, which stay for
    /// compatibility): duplications and partition-caused drops included.
    pub net: NetStats,
    /// Coordinator timer firings that retransmitted something.
    pub retransmissions: u64,
    /// Transactions unresolved when the horizon hit.
    pub unresolved: Vec<GlobalTxnId>,
    /// Handler errors observed (site-down races are expected; anything
    /// else indicates a bug).
    pub errors: Vec<String>,
    /// Final virtual time.
    pub end_time: SimTime,
    /// Structured event log: every protocol transition, message fate,
    /// fault and recovery step, stamped with the virtual clock. Feed to
    /// [`EventLog::timeline`] / [`EventLog::derive`] for per-transaction
    /// explanations and histogram metrics.
    pub events: EventLog,
}

#[derive(Debug)]
enum Event {
    Deliver(Envelope),
    Fault(FaultEvent),
    Start(GlobalTxnId),
    Timer(GlobalTxnId),
}

struct TxnState {
    coordinator: Coordinator,
    done: bool,
}

/// The discrete-event federation.
pub struct SimFederation {
    cfg: SimConfig,
    managers: BTreeMap<SiteId, Arc<LocalCommManager>>,
    router: Router,
    queue: EventQueue<Event>,
    txns: BTreeMap<GlobalTxnId, TxnState>,
    programs: BTreeMap<GlobalTxnId, BTreeMap<SiteId, Vec<Operation>>>,
    trace: MessageTrace,
    retransmissions: u64,
    errors: Vec<String>,
    /// Central-system crash support. The central system is itself a
    /// database system (the paper's VODAK): its decisions are *forced to
    /// its own log* before any decision message leaves, so a restarted
    /// coordinator can resume finish rounds and presume abort for
    /// everything undecided.
    central_down: bool,
    central_log: BTreeMap<GlobalTxnId, GlobalVerdict>,
    central_log_forces: u64,
    start_times: BTreeMap<GlobalTxnId, SimTime>,
    completed: BTreeMap<GlobalTxnId, (GlobalVerdict, SimTime)>,
    /// Master observability sink: shared (via clone) with the router, the
    /// managers (and through them engines and WALs) and every coordinator.
    obs: ObsSink,
}

impl SimFederation {
    /// Build engines, managers, router and queue from `cfg`.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.federation.is_runnable(), "unrunnable federation");
        cfg.failures.validate().expect("invalid failure plan");
        cfg.merged_faults().validate().expect("invalid fault plan");
        let obs = ObsSink::enabled(cfg.event_cap);
        let managers: BTreeMap<SiteId, Arc<LocalCommManager>> = cfg
            .federation
            .build_managers()
            .into_iter()
            .map(|mut m| {
                Arc::get_mut(&mut m)
                    .expect("freshly built manager is unshared")
                    .set_obs(obs.clone());
                (m.site(), m)
            })
            .collect();
        let mut rng = SimRng::new(cfg.seed);
        let mut router = Router::new(cfg.router.clone(), rng.fork());
        router.attach_obs(obs.clone());
        SimFederation {
            cfg,
            managers,
            router,
            queue: EventQueue::new(),
            txns: BTreeMap::new(),
            programs: BTreeMap::new(),
            trace: MessageTrace::new(),
            retransmissions: 0,
            errors: Vec::new(),
            central_down: false,
            central_log: BTreeMap::new(),
            central_log_forces: 0,
            start_times: BTreeMap::new(),
            completed: BTreeMap::new(),
            obs,
        }
    }

    /// Access a site's manager (setup: loading data).
    pub fn manager(&self, site: SiteId) -> &Arc<LocalCommManager> {
        &self.managers[&site]
    }

    /// Load initial data into a site.
    pub fn load_site(&self, site: SiteId, data: &[(amc_types::ObjectId, amc_types::Value)]) {
        self.managers[&site]
            .handle()
            .engine()
            .bulk_load(data)
            .expect("bulk load");
    }

    fn submit_mode(&self) -> SubmitMode {
        match self.cfg.federation.protocol {
            ProtocolKind::TwoPhaseCommit => SubmitMode::TwoPhase,
            ProtocolKind::CommitAfter => SubmitMode::CommitAfter,
            ProtocolKind::CommitBefore => SubmitMode::CommitBefore,
        }
    }

    fn send(&mut self, from: SiteId, to: SiteId, payload: Payload) {
        let env = Envelope::new(from, to, payload);
        self.trace.record(self.queue.now(), env.clone());
        match self.router.route(&env) {
            Routing::Deliver(latency) => {
                self.queue.schedule_after(latency, Event::Deliver(env));
            }
            Routing::DeliverTwice(a, b) => {
                self.queue.schedule_after(a, Event::Deliver(env.clone()));
                self.queue.schedule_after(b, Event::Deliver(env));
            }
            Routing::Dropped => {}
        }
    }

    fn apply_actions(&mut self, gtx: GlobalTxnId, actions: Vec<CoordAction>) {
        for action in actions {
            match action {
                CoordAction::Send { site, payload } => {
                    self.send(SiteId::CENTRAL, site, payload);
                }
                CoordAction::Decided(v) => {
                    // Force the decision to the central log *before* the
                    // decision messages leave (they are queued behind this
                    // in `actions`, so the order is faithful). The unsafe
                    // chaos knob omits the force: a central crash then
                    // presumes abort for a decision other sites may already
                    // have applied — the atomicity bug the shrinker hunts.
                    if !self.cfg.unsafe_skip_decision_log {
                        self.central_log.insert(gtx, v);
                        self.central_log_forces += 1;
                    }
                }
                CoordAction::Done(v) => {
                    let now = self.queue.now();
                    self.completed.insert(gtx, (v, now));
                    if let Some(t) = self.txns.get_mut(&gtx) {
                        t.done = true;
                    }
                }
            }
        }
    }

    fn handle_at_site(&mut self, site: SiteId, payload: Payload) {
        let manager = Arc::clone(&self.managers[&site]);
        if !manager.handle().engine().is_up() {
            return; // crashed between routing and delivery
        }
        let mode = self.submit_mode();
        let reply = match payload {
            Payload::Submit { gtx, ops } => manager.handle_submit(gtx, ops, mode),
            Payload::SubmitPrepare { gtx, ops, solo } => {
                manager.handle_submit_prepare(gtx, ops, solo, mode)
            }
            Payload::Prepare { gtx } => manager.handle_prepare(gtx),
            Payload::Decision { gtx, verdict } => manager.handle_decision(gtx, verdict),
            Payload::Redo { gtx, ops } => manager.handle_redo(gtx, ops),
            Payload::Undo { gtx, inverse_ops } => manager.handle_undo(gtx, inverse_ops),
            other => {
                self.errors.push(format!("local site got {other}"));
                return;
            }
        };
        match reply {
            Ok(reply) => {
                // Service time then network back to the central system.
                let service = self.cfg.service_time;
                let env = Envelope::new(site, SiteId::CENTRAL, reply);
                self.trace.record(self.queue.now(), env.clone());
                match self.router.route(&env) {
                    Routing::Deliver(latency) => {
                        self.queue
                            .schedule_after(service + latency, Event::Deliver(env));
                    }
                    Routing::DeliverTwice(a, b) => {
                        self.queue
                            .schedule_after(service + a, Event::Deliver(env.clone()));
                        self.queue.schedule_after(service + b, Event::Deliver(env));
                    }
                    Routing::Dropped => {}
                }
            }
            Err(AmcError::SiteDown(_)) => {} // crash race: timer will retry
            Err(e) => self.errors.push(format!("{site}: {e}")),
        }
    }

    fn handle_at_central(&mut self, payload: Payload, from: SiteId) {
        if self.central_down {
            return; // the coordinator is dead; retransmission will recover
        }
        let gtx = payload.gtx();
        let event = match payload {
            Payload::Vote { vote, .. } => CoordEvent::Vote { site: from, vote },
            Payload::Finished { .. } => CoordEvent::Finished { site: from },
            other => {
                self.errors.push(format!("central got {other}"));
                return;
            }
        };
        let actions = match self.txns.get_mut(&gtx) {
            Some(t) if !t.done => t.coordinator.on_event(event),
            _ => Vec::new(),
        };
        self.apply_actions(gtx, actions);
    }

    /// Central restart: resume every unfinished transaction from the
    /// durable decision log (presumed abort where no decision survived).
    fn resume_central(&mut self) {
        self.central_down = false;
        self.router.site_up(SiteId::CENTRAL);
        let unfinished: Vec<GlobalTxnId> = self
            .programs
            .keys()
            .filter(|g| !self.completed.contains_key(g) && self.start_times.contains_key(g))
            .copied()
            .collect();
        for gtx in unfinished {
            let program = self.programs[&gtx].clone();
            let logged = self.central_log.get(&gtx).copied();
            self.obs
                .emit(Some(gtx), SiteId::CENTRAL, EventKind::Resume { logged });
            let (mut coordinator, actions) =
                Coordinator::resume(gtx, self.cfg.federation.protocol, program, logged);
            coordinator.set_obs(self.obs.clone());
            let done = coordinator.is_done();
            self.txns.insert(gtx, TxnState { coordinator, done });
            self.apply_actions(gtx, actions);
            if !done {
                self.queue
                    .schedule_after(self.cfg.retransmit_every, Event::Timer(gtx));
            }
        }
    }

    /// Run `programs` (each starting at its given virtual time) to
    /// completion or horizon.
    pub fn run(
        mut self,
        programs: Vec<(SimDuration, BTreeMap<SiteId, Vec<Operation>>)>,
    ) -> SimReport {
        // Seed starts, failures.
        for (i, (at, program)) in programs.into_iter().enumerate() {
            let gtx = GlobalTxnId::new(i as u64 + 1);
            self.programs.insert(gtx, program);
            self.queue
                .schedule_at(SimTime::ZERO + at, Event::Start(gtx));
        }
        let mut pending_failures = 0u32;
        for ev in self.cfg.merged_faults().events() {
            self.queue.schedule_at(ev.at, Event::Fault(ev));
            pending_failures += 1;
        }

        let horizon = SimTime::ZERO + self.cfg.horizon;
        while let Some((at, event)) = self.queue.pop() {
            if at > horizon {
                break;
            }
            // Mirror the virtual clock into the sink so every emission —
            // including those from managers and engines that never see the
            // queue — carries the event's time.
            self.obs.set_now(at);
            match event {
                Event::Start(gtx) => {
                    if self.central_down {
                        // The client retries against a dead central system.
                        self.queue
                            .schedule_after(self.cfg.retransmit_every, Event::Start(gtx));
                        continue;
                    }
                    let program = self.programs[&gtx].clone();
                    self.obs
                        .emit(Some(gtx), SiteId::CENTRAL, EventKind::TxnStart);
                    let mut coordinator =
                        Coordinator::new(gtx, self.cfg.federation.protocol, program);
                    if self.cfg.federation.fast_path {
                        coordinator = coordinator.with_piggyback();
                    }
                    coordinator.set_obs(self.obs.clone());
                    let actions = coordinator.on_event(CoordEvent::Start);
                    self.start_times.insert(gtx, at);
                    self.txns.insert(
                        gtx,
                        TxnState {
                            coordinator,
                            done: false,
                        },
                    );
                    self.apply_actions(gtx, actions);
                    self.queue
                        .schedule_after(self.cfg.retransmit_every, Event::Timer(gtx));
                }
                Event::Timer(gtx) => {
                    if self.central_down {
                        continue; // timers die with the coordinator
                    }
                    let actions = match self.txns.get_mut(&gtx) {
                        Some(t) if !t.done => t.coordinator.on_event(CoordEvent::Timer),
                        _ => continue,
                    };
                    if !actions.is_empty() {
                        self.retransmissions += 1;
                    }
                    self.apply_actions(gtx, actions);
                    self.queue
                        .schedule_after(self.cfg.retransmit_every, Event::Timer(gtx));
                }
                Event::Deliver(env) => {
                    self.obs.emit(
                        Some(env.payload.gtx()),
                        env.to,
                        EventKind::MsgDeliver {
                            label: env.payload.label(),
                            from: env.from,
                        },
                    );
                    if env.to.is_central() {
                        self.handle_at_central(env.payload, env.from);
                    } else {
                        self.handle_at_site(env.to, env.payload);
                    }
                }
                Event::Fault(ev) => {
                    pending_failures -= 1;
                    match ev.kind {
                        FaultKind::Crash { torn } => self.obs.emit(
                            None,
                            ev.site,
                            EventKind::Crash {
                                torn: torn.is_some(),
                            },
                        ),
                        FaultKind::Restart => self.obs.emit(None, ev.site, EventKind::Restart),
                        _ => {}
                    }
                    match (ev.kind, ev.site.is_central()) {
                        (FaultKind::Crash { .. }, true) => {
                            // Central crash: volatile coordinator state is
                            // lost; the decision log survives. A torn local
                            // WAL tail has no analogue here — the decision
                            // log force is modelled as atomic.
                            self.central_down = true;
                            self.router.site_down(SiteId::CENTRAL);
                            self.txns.clear();
                        }
                        (FaultKind::Restart, true) => {
                            self.resume_central();
                        }
                        (FaultKind::Crash { torn }, false) => {
                            self.router.site_down(ev.site);
                            let manager = &self.managers[&ev.site];
                            match torn {
                                Some(t) => {
                                    manager.handle().engine().crash_partial(t.keep_frames, true)
                                }
                                None => manager.handle().engine().crash(),
                            }
                        }
                        (FaultKind::Restart, false) => {
                            self.router.site_up(ev.site);
                            if let Err(e) = self.managers[&ev.site].handle().engine().recover() {
                                self.errors.push(format!("recovery at {}: {e}", ev.site));
                            }
                        }
                        (FaultKind::PartitionStart { dir }, _) => match dir {
                            LinkDir::ToCentral => {
                                self.router.partition(ev.site, SiteId::CENTRAL);
                            }
                            LinkDir::FromCentral => {
                                self.router.partition(SiteId::CENTRAL, ev.site);
                            }
                            LinkDir::Both => {
                                self.router.partition_both(ev.site, SiteId::CENTRAL);
                            }
                        },
                        (FaultKind::PartitionHeal, _) => {
                            // Heal whatever direction(s) the start severed.
                            self.router.heal_both(ev.site, SiteId::CENTRAL);
                        }
                        (FaultKind::LossBurstStart { probability }, _) => {
                            self.router.set_loss_burst(probability);
                        }
                        (FaultKind::LossBurstEnd, _) => {
                            self.router.clear_loss_burst();
                        }
                        // The discrete-event runtime models one logical
                        // coordinator, so replica-crash lanes degenerate
                        // to a central outage: volatile state lost, the
                        // takeover resumes from the durable decision log
                        // exactly as a restarted central would. The
                        // replicated (threaded) runtime gives these events
                        // their full Paxos semantics.
                        (FaultKind::CoordinatorCrash { .. }, _) => {
                            self.central_down = true;
                            self.router.site_down(SiteId::CENTRAL);
                            self.txns.clear();
                        }
                        (FaultKind::CoordinatorTakeover { .. }, _) => {
                            self.resume_central();
                        }
                    }
                }
            }
            // Early exit: everything resolved — but only after every
            // scheduled failure has fired, so sites end the run recovered
            // (a dump of a crashed, unrecovered site would show stale
            // pages: committed work lives in its log until restart).
            if pending_failures == 0 && self.completed.len() == self.programs.len() {
                break;
            }
        }

        let net = self.router.stats();
        let mut outcomes = BTreeMap::new();
        let mut resolution = BTreeMap::new();
        let mut unresolved = Vec::new();
        for gtx in self.programs.keys() {
            match self.completed.get(gtx) {
                Some((v, done_at)) => {
                    outcomes.insert(*gtx, *v);
                    let started = self.start_times.get(gtx).copied().unwrap_or(SimTime::ZERO);
                    resolution.insert(*gtx, done_at.since(started));
                }
                None => unresolved.push(*gtx),
            }
        }
        SimReport {
            outcomes,
            resolution,
            trace: self.trace,
            sent: net.sent,
            dropped: net.dropped,
            net,
            retransmissions: self.retransmissions,
            unresolved,
            errors: self.errors,
            end_time: self.queue.now(),
            events: self.obs.snapshot(),
        }
    }

    /// Final committed state per site (post-run inspection is done through
    /// the report; this helper serves tests built around `run`).
    pub fn dumps(
        managers: &BTreeMap<SiteId, Arc<LocalCommManager>>,
    ) -> BTreeMap<SiteId, BTreeMap<amc_types::ObjectId, amc_types::Value>> {
        managers
            .iter()
            .map(|(s, m)| (*s, m.handle().engine().dump().expect("dump")))
            .collect()
    }

    /// Clone the manager map (so callers can inspect state after `run`
    /// consumed the federation).
    pub fn managers(&self) -> BTreeMap<SiteId, Arc<LocalCommManager>> {
        self.managers.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{ObjectId, Value};

    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }
    fn obj(s: u32, i: u64) -> ObjectId {
        ObjectId::new(u64::from(s) * (1 << 32) + i)
    }

    fn transfer(a: u32, b: u32, amt: i64) -> BTreeMap<SiteId, Vec<Operation>> {
        BTreeMap::from([
            (
                site(a),
                vec![Operation::Increment {
                    obj: obj(a, 0),
                    delta: -amt,
                }],
            ),
            (
                site(b),
                vec![Operation::Increment {
                    obj: obj(b, 0),
                    delta: amt,
                }],
            ),
        ])
    }

    fn sim(protocol: ProtocolKind, failures: FailurePlan) -> SimFederation {
        let mut cfg = SimConfig::new(FederationConfig::uniform(2, protocol));
        cfg.failures = failures;
        let fed = SimFederation::new(cfg);
        for s in 1..=2u32 {
            let data: Vec<(ObjectId, Value)> =
                (0..10).map(|i| (obj(s, i), Value::counter(100))).collect();
            fed.load_site(site(s), &data);
        }
        fed
    }

    #[test]
    fn failure_free_run_commits_under_all_protocols() {
        for protocol in ProtocolKind::ALL {
            let fed = sim(protocol, FailurePlan::none());
            let managers = fed.managers();
            let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 30))]);
            assert!(report.errors.is_empty(), "{protocol}: {:?}", report.errors);
            assert_eq!(
                report.outcomes.get(&GlobalTxnId::new(1)),
                Some(&GlobalVerdict::Commit),
                "{protocol}"
            );
            assert!(report.unresolved.is_empty());
            let dumps = SimFederation::dumps(&managers);
            assert_eq!(
                dumps[&site(1)][&obj(1, 0)],
                Value::counter(70),
                "{protocol}"
            );
            assert_eq!(
                dumps[&site(2)][&obj(2, 0)],
                Value::counter(130),
                "{protocol}"
            );
        }
    }

    #[test]
    fn golden_trace_commit_before_matches_fig6_commit_path() {
        let fed = sim(ProtocolKind::CommitBefore, FailurePlan::none());
        let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 5))]);
        // §3.3 commit path: work ships, locals commit and report; the
        // coordinator needs no further messages ("does not need to start
        // further actions").
        assert_eq!(
            report.trace.labels_for(GlobalTxnId::new(1)),
            vec!["submit:0->1", "submit:0->2", "ready:1->0", "ready:2->0",]
        );
    }

    #[test]
    fn golden_trace_2pc_matches_fig2() {
        let fed = sim(ProtocolKind::TwoPhaseCommit, FailurePlan::none());
        let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 5))]);
        assert_eq!(
            report.trace.labels_for(GlobalTxnId::new(1)),
            vec![
                "submit:0->1",
                "submit:0->2",
                "ready:1->0",
                "ready:2->0",
                "prepare:0->1",
                "prepare:0->2",
                "ready:1->0",
                "ready:2->0",
                "commit:0->1",
                "commit:0->2",
                "finished:1->0",
                "finished:2->0",
            ]
        );
    }

    fn sim_fast(failures: FailurePlan) -> SimFederation {
        let mut cfg = SimConfig::new(
            FederationConfig::uniform(2, ProtocolKind::TwoPhaseCommit).with_fast_path(),
        );
        cfg.failures = failures;
        let fed = SimFederation::new(cfg);
        for s in 1..=2u32 {
            let data: Vec<(ObjectId, Value)> =
                (0..10).map(|i| (obj(s, i), Value::counter(100))).collect();
            fed.load_site(site(s), &data);
        }
        fed
    }

    #[test]
    fn golden_trace_fast_path_2pc_cuts_the_prepare_round() {
        // Vote piggyback: the submit carries PREPARE, so the work ack *is*
        // the vote — 8 messages instead of the classic 12 (fig. 2 minus the
        // explicit prepare round).
        let fed = sim_fast(FailurePlan::none());
        let managers = fed.managers();
        let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 5))]);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(
            report.trace.labels_for(GlobalTxnId::new(1)),
            vec![
                "submit-prepare:0->1",
                "submit-prepare:0->2",
                "ready:1->0",
                "ready:2->0",
                "commit:0->1",
                "commit:0->2",
                "finished:1->0",
                "finished:2->0",
            ]
        );
        let dumps = SimFederation::dumps(&managers);
        assert_eq!(dumps[&site(1)][&obj(1, 0)], Value::counter(95));
        assert_eq!(dumps[&site(2)][&obj(2, 0)], Value::counter(105));
    }

    #[test]
    fn fast_path_lost_vote_is_reinquired_with_classic_prepare() {
        // Site 2 applies the piggybacked op (prepare is durable) but its
        // READY is severed by a one-way partition. The coordinator's timer
        // re-inquires with a *classic* PREPARE, which the already-prepared
        // manager answers idempotently — commit, one RTT late.
        let mut cfg = SimConfig::new(
            FederationConfig::uniform(2, ProtocolKind::TwoPhaseCommit).with_fast_path(),
        );
        cfg.faults = FaultPlan::none().partition_window(
            site(2),
            SimTime(100),
            SimDuration::from_millis(30),
            LinkDir::ToCentral,
        );
        let fed = SimFederation::new(cfg);
        load(&fed);
        let managers = fed.managers();
        let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 30))]);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(
            report.outcomes.get(&GlobalTxnId::new(1)),
            Some(&GlobalVerdict::Commit),
            "unresolved: {:?}",
            report.unresolved
        );
        assert!(report.net.partitioned_drops > 0, "the partition never bit");
        assert!(report.retransmissions > 0, "the lost vote needed the timer");
        let labels = report.trace.labels_for(GlobalTxnId::new(1));
        assert!(
            labels.iter().any(|l| l == "prepare:0->2"),
            "re-inquiry must use the classic prepare: {labels:?}"
        );
        let dumps = SimFederation::dumps(&managers);
        assert_eq!(dumps[&site(1)][&obj(1, 0)], Value::counter(70));
        assert_eq!(dumps[&site(2)][&obj(2, 0)], Value::counter(130));
    }

    #[test]
    fn fast_path_runs_are_deterministic() {
        let run = || {
            let failures =
                FailurePlan::none().outage(site(2), SimTime(300), SimDuration::from_millis(10));
            let fed = sim_fast(failures);
            let report = fed.run(vec![
                (SimDuration::ZERO, transfer(1, 2, 3)),
                (SimDuration::from_millis(1), transfer(2, 1, 7)),
            ]);
            (
                report.outcomes,
                report.sent,
                report.dropped,
                report.end_time,
                report.trace.render(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn participant_crash_before_commit_aborts_commit_before_txn() {
        // Site 2 crashes just after the submit leaves the central system
        // but before executing it, and restarts later; §3.3: the answer to
        // the post-recovery inquiry is abort, and site 1 gets undone.
        let failures =
            FailurePlan::none().outage(site(2), SimTime(100), SimDuration::from_millis(50));
        let fed = sim(ProtocolKind::CommitBefore, failures);
        let managers = fed.managers();
        let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 30))]);
        assert_eq!(
            report.outcomes.get(&GlobalTxnId::new(1)),
            Some(&GlobalVerdict::Abort),
            "unresolved: {:?}, errors: {:?}",
            report.unresolved,
            report.errors
        );
        let dumps = SimFederation::dumps(&managers);
        // Undone at site 1, never applied at site 2.
        assert_eq!(dumps[&site(1)][&obj(1, 0)], Value::counter(100));
        assert_eq!(dumps[&site(2)][&obj(2, 0)], Value::counter(100));
        assert!(report.retransmissions > 0, "recovery needed the timer");
    }

    #[test]
    fn participant_crash_after_decision_still_commits_commit_after_txn() {
        // Crash site 2 *after* the votes are in (decision made) but while
        // the commit decision is in flight; the Redo retransmission must
        // finish the job after restart (§3.2).
        let failures = FailurePlan::none().outage(
            site(2),
            SimTime(1_200), // after both votes (~2×(500+200) ≈ 1400us)... tuned below
            SimDuration::from_millis(30),
        );
        let fed = sim(ProtocolKind::CommitAfter, failures);
        let managers = fed.managers();
        let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 30))]);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let outcome = report.outcomes.get(&GlobalTxnId::new(1)).copied();
        // Depending on where the crash lands relative to the votes the
        // transaction either commits (crash after decision, redo repairs)
        // or aborts (crash before site 2 voted). Both are atomic; neither
        // may leave a partial transfer.
        let dumps = SimFederation::dumps(&managers);
        let v1 = dumps[&site(1)][&obj(1, 0)].counter;
        let v2 = dumps[&site(2)][&obj(2, 0)].counter;
        match outcome {
            Some(GlobalVerdict::Commit) => {
                assert_eq!((v1, v2), (70, 130), "committed everywhere");
            }
            Some(GlobalVerdict::Abort) => {
                assert_eq!((v1, v2), (100, 100), "aborted everywhere");
            }
            None => panic!("unresolved: {:?}", report.unresolved),
        }
    }

    fn load(fed: &SimFederation) {
        for s in 1..=2u32 {
            let data: Vec<(ObjectId, Value)> =
                (0..10).map(|i| (obj(s, i), Value::counter(100))).collect();
            fed.load_site(site(s), &data);
        }
    }

    #[test]
    fn partition_window_delays_but_does_not_prevent_commit() {
        // Sever both directions of site 2's link mid-protocol while both
        // endpoints stay live; retransmission after the heal finishes the
        // job. This is the non-crash failure 2PC's blocking argument is
        // really about.
        let mut cfg = SimConfig::new(FederationConfig::uniform(2, ProtocolKind::TwoPhaseCommit));
        cfg.faults = FaultPlan::none().partition_window(
            site(2),
            SimTime(100),
            SimDuration::from_millis(30),
            LinkDir::Both,
        );
        let fed = SimFederation::new(cfg);
        load(&fed);
        let managers = fed.managers();
        let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 30))]);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(
            report.outcomes.get(&GlobalTxnId::new(1)),
            Some(&GlobalVerdict::Commit),
            "unresolved: {:?}",
            report.unresolved
        );
        assert!(report.net.partitioned_drops > 0, "the partition never bit");
        assert!(report.retransmissions > 0, "the heal needed the timer");
        let dumps = SimFederation::dumps(&managers);
        assert_eq!(dumps[&site(1)][&obj(1, 0)], Value::counter(70));
        assert_eq!(dumps[&site(2)][&obj(2, 0)], Value::counter(130));
    }

    #[test]
    fn torn_tail_crash_mid_txn_still_ends_atomic() {
        // Site 2 crashes mid-force while the transfer is in flight: one
        // tail frame becomes durable, the next lands torn. Restart recovery
        // truncates the tear, the protocol repairs, and whatever the
        // verdict is the transfer must be all-or-nothing.
        let mut cfg = SimConfig::new(FederationConfig::uniform(2, ProtocolKind::CommitAfter));
        cfg.faults = FaultPlan::none()
            .crash_torn(site(2), SimTime(800), 1)
            .restart(site(2), SimTime(30_000));
        let fed = SimFederation::new(cfg);
        load(&fed);
        let managers = fed.managers();
        let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 30))]);
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let dumps = SimFederation::dumps(&managers);
        let v1 = dumps[&site(1)][&obj(1, 0)].counter;
        let v2 = dumps[&site(2)][&obj(2, 0)].counter;
        assert_eq!(v1 + v2, 200, "conservation violated: {v1} + {v2}");
        match report.outcomes.get(&GlobalTxnId::new(1)) {
            Some(GlobalVerdict::Commit) => assert_eq!((v1, v2), (70, 130)),
            Some(GlobalVerdict::Abort) => assert_eq!((v1, v2), (100, 100)),
            None => panic!("unresolved: {:?}", report.unresolved),
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let failures =
                FailurePlan::none().outage(site(2), SimTime(300), SimDuration::from_millis(10));
            let fed = sim(ProtocolKind::CommitBefore, failures);
            let report = fed.run(vec![
                (SimDuration::ZERO, transfer(1, 2, 3)),
                (SimDuration::from_millis(1), transfer(2, 1, 7)),
            ]);
            (
                report.outcomes,
                report.sent,
                report.dropped,
                report.end_time,
                report.trace.render(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn message_counts_per_protocol_match_e4_shape() {
        let mut per_protocol = BTreeMap::new();
        for protocol in ProtocolKind::ALL {
            let fed = sim(protocol, FailurePlan::none());
            let report = fed.run(vec![(SimDuration::ZERO, transfer(1, 2, 1))]);
            per_protocol.insert(protocol.label(), report.sent);
        }
        assert_eq!(per_protocol["commit-before"], 4);
        assert_eq!(per_protocol["commit-after"], 8);
        assert_eq!(per_protocol["2pc"], 12);
    }
}
