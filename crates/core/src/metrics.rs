//! Run metrics aggregated across a workload execution.

use amc_obs::Histogram;
use amc_types::ProtocolKind;
use std::time::Duration;

/// What one workload run measured. All counters are totals; derived rates
/// come from the accessor methods, which return `None` instead of a bogus
/// number when the underlying count is zero (an idle run has no mean
/// latency — reports must say "n=0", never divide into NaN or fake a 0.0).
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Globally committed transactions.
    pub committed: u64,
    /// Global aborts caused by transaction logic (intended).
    pub aborted_intended: u64,
    /// Global aborts caused by local erroneous aborts propagating up
    /// (commit-before voting aborted, 2PC prepare failures, ...).
    pub aborted_erroneous: u64,
    /// Global transactions killed at L1 acquisition (deadlock/timeout)
    /// before touching any engine; the driver retries these.
    pub l1_rejections: u64,
    /// Wall-clock duration of the run.
    pub wall: Duration,
    /// Sum of per-transaction latencies (successful commits only).
    pub total_commit_latency: Duration,
    /// Sum of per-site L0 lock tenures (from first submit to local
    /// release), commits only.
    pub total_l0_hold: Duration,
    /// Number of (transaction, site) tenures in `total_l0_hold`.
    pub l0_hold_count: u64,
    /// Per-commit latency distribution in microseconds (p50/p99 for the
    /// E-report tables; the totals above stay for compatibility).
    pub latency_us: Histogram,
    /// Per-(transaction, site) L0 tenure distribution in microseconds.
    pub l0_hold_us: Histogram,
    /// Protocol messages exchanged.
    pub messages: u64,
    /// Commit-after repetitions executed.
    pub redo_runs: u64,
    /// Commit-before inverse transactions executed.
    pub undo_runs: u64,
    /// Pre-vote retries at the communication managers.
    pub pre_vote_retries: u64,
    /// Requests the sites answered with a load-shed (`BufferExhausted`
    /// backpressure reply). Always 0 over the in-process transport;
    /// networked runs report their RPC clients' counters — retried and
    /// terminal sheds both count, so an overloaded run is visible even
    /// when every shed request eventually succeeded.
    pub load_sheds: u64,
    /// Log forces across all engines.
    pub log_forces: u64,
    /// Durable log bytes across all engines.
    pub log_bytes: u64,
    /// Physical forces issued by the group-commit leaders (E9).
    pub group_forces: u64,
    /// Commit/prepare records acknowledged through group-commit batches.
    pub batched_commits: u64,
}

impl RunMetrics {
    /// Empty metrics for `protocol`.
    pub fn new(protocol: ProtocolKind) -> Self {
        RunMetrics {
            protocol,
            committed: 0,
            aborted_intended: 0,
            aborted_erroneous: 0,
            l1_rejections: 0,
            wall: Duration::ZERO,
            total_commit_latency: Duration::ZERO,
            total_l0_hold: Duration::ZERO,
            l0_hold_count: 0,
            latency_us: Histogram::new(),
            l0_hold_us: Histogram::new(),
            messages: 0,
            redo_runs: 0,
            undo_runs: 0,
            pre_vote_retries: 0,
            load_sheds: 0,
            log_forces: 0,
            log_bytes: 0,
            group_forces: 0,
            batched_commits: 0,
        }
    }

    /// Committed transactions per second; `None` for a zero-length run.
    pub fn throughput(&self) -> Option<f64> {
        if self.wall.is_zero() {
            return None;
        }
        Some(self.committed as f64 / self.wall.as_secs_f64())
    }

    /// Mean commit latency in milliseconds; `None` when nothing committed.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.committed == 0 {
            return None;
        }
        Some(self.total_commit_latency.as_secs_f64() * 1e3 / self.committed as f64)
    }

    /// Median commit latency in milliseconds; `None` when nothing
    /// committed.
    pub fn latency_p50_ms(&self) -> Option<f64> {
        self.latency_us.p50().map(|us| us as f64 / 1e3)
    }

    /// 99th-percentile commit latency in milliseconds; `None` when nothing
    /// committed.
    pub fn latency_p99_ms(&self) -> Option<f64> {
        self.latency_us.p99().map(|us| us as f64 / 1e3)
    }

    /// Mean L0 lock tenure in milliseconds (E1's headline series); `None`
    /// when no tenure was recorded.
    pub fn mean_l0_hold_ms(&self) -> Option<f64> {
        if self.l0_hold_count == 0 {
            return None;
        }
        Some(self.total_l0_hold.as_secs_f64() * 1e3 / self.l0_hold_count as f64)
    }

    /// Median L0 lock tenure in milliseconds.
    pub fn l0_hold_p50_ms(&self) -> Option<f64> {
        self.l0_hold_us.p50().map(|us| us as f64 / 1e3)
    }

    /// 99th-percentile L0 lock tenure in milliseconds.
    pub fn l0_hold_p99_ms(&self) -> Option<f64> {
        self.l0_hold_us.p99().map(|us| us as f64 / 1e3)
    }

    /// Messages per committed transaction (E4); `None` when nothing
    /// committed.
    pub fn messages_per_commit(&self) -> Option<f64> {
        if self.committed == 0 {
            return None;
        }
        Some(self.messages as f64 / self.committed as f64)
    }

    /// Load-shed replies per committed transaction (E10-HC's backpressure
    /// column); `None` when nothing committed.
    pub fn sheds_per_commit(&self) -> Option<f64> {
        if self.committed == 0 {
            return None;
        }
        Some(self.load_sheds as f64 / self.committed as f64)
    }

    /// Physical log forces per durably acknowledged commit/prepare record
    /// (E9's headline series: 1.0 when every record pays its own force,
    /// below 1 once group commit batches). `None` when no record was
    /// acknowledged through the durable path.
    pub fn forces_per_commit(&self) -> Option<f64> {
        if self.batched_commits == 0 {
            return None;
        }
        Some(self.log_forces as f64 / self.batched_commits as f64)
    }

    /// Fraction of attempts that globally aborted; `None` when nothing ran.
    pub fn abort_rate(&self) -> Option<f64> {
        let total = self.committed + self.aborted_intended + self.aborted_erroneous;
        if total == 0 {
            return None;
        }
        Some((self.aborted_intended + self.aborted_erroneous) as f64 / total as f64)
    }

    /// Fraction of attempts aborted by the transaction's own logic (the
    /// §3.2/§3.3 intended aborts); `None` when nothing ran — the E15
    /// tables render that as `n=0`, never as a fabricated `0.00`.
    pub fn intended_abort_rate(&self) -> Option<f64> {
        let total = self.committed + self.aborted_intended + self.aborted_erroneous;
        if total == 0 {
            return None;
        }
        Some(self.aborted_intended as f64 / total as f64)
    }

    /// Fraction of attempts aborted erroneously (contention casualties:
    /// vote failures, prepare timeouts); `None` when nothing ran.
    pub fn erroneous_abort_rate(&self) -> Option<f64> {
        let total = self.committed + self.aborted_intended + self.aborted_erroneous;
        if total == 0 {
            return None;
        }
        Some(self.aborted_erroneous as f64 / total as f64)
    }

    /// Commits plus aborts per second — "completions": aborted work costs
    /// wall time too, the denominator of the C3 (intended-abort) regime
    /// comparison. `None` for a zero-length run.
    pub fn completions_per_sec(&self) -> Option<f64> {
        if self.wall.is_zero() {
            return None;
        }
        let done = self.committed + self.aborted_intended + self.aborted_erroneous;
        Some(done as f64 / self.wall.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut m = RunMetrics::new(ProtocolKind::CommitBefore);
        m.committed = 100;
        m.wall = Duration::from_secs(2);
        m.total_commit_latency = Duration::from_millis(500);
        m.total_l0_hold = Duration::from_millis(300);
        m.l0_hold_count = 200;
        m.messages = 400;
        assert!((m.throughput().unwrap() - 50.0).abs() < 1e-9);
        assert!((m.mean_latency_ms().unwrap() - 5.0).abs() < 1e-9);
        assert!((m.mean_l0_hold_ms().unwrap() - 1.5).abs() < 1e-9);
        assert!((m.messages_per_commit().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_yields_none_not_nan() {
        let m = RunMetrics::new(ProtocolKind::TwoPhaseCommit);
        assert_eq!(m.throughput(), None);
        assert_eq!(m.mean_latency_ms(), None);
        assert_eq!(m.mean_l0_hold_ms(), None);
        assert_eq!(m.messages_per_commit(), None);
        assert_eq!(m.abort_rate(), None);
        assert_eq!(m.latency_p50_ms(), None);
        assert_eq!(m.l0_hold_p99_ms(), None);
        // The PR 2 convention audited for the E15 columns: every rate
        // whose denominator can be zero is an Option, never NaN/0.0.
        assert_eq!(m.intended_abort_rate(), None);
        assert_eq!(m.erroneous_abort_rate(), None);
        assert_eq!(m.completions_per_sec(), None);
        assert_eq!(m.sheds_per_commit(), None);
        assert_eq!(m.forces_per_commit(), None);
    }

    #[test]
    fn abort_rate_split_sums_to_the_total() {
        let mut m = RunMetrics::new(ProtocolKind::CommitBefore);
        m.committed = 60;
        m.aborted_intended = 30;
        m.aborted_erroneous = 10;
        m.wall = Duration::from_secs(2);
        assert!((m.intended_abort_rate().unwrap() - 0.3).abs() < 1e-9);
        assert!((m.erroneous_abort_rate().unwrap() - 0.1).abs() < 1e-9);
        assert!(
            (m.intended_abort_rate().unwrap() + m.erroneous_abort_rate().unwrap()
                - m.abort_rate().unwrap())
            .abs()
                < 1e-9
        );
        assert!((m.completions_per_sec().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles_come_from_the_histograms() {
        let mut m = RunMetrics::new(ProtocolKind::CommitAfter);
        for us in [1_000, 2_000, 3_000, 4_000, 100_000] {
            m.latency_us.record(us);
        }
        assert!((m.latency_p50_ms().unwrap() - 3.0).abs() < 1e-9);
        assert!((m.latency_p99_ms().unwrap() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn abort_rate_counts_both_kinds() {
        let mut m = RunMetrics::new(ProtocolKind::CommitAfter);
        m.committed = 80;
        m.aborted_intended = 15;
        m.aborted_erroneous = 5;
        assert!((m.abort_rate().unwrap() - 0.2).abs() < 1e-9);
    }
}
