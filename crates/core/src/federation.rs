//! The threaded federation runtime.
//!
//! This is the "real machine" driver: communication-manager calls are
//! synchronous function calls (zero network latency), many worker threads
//! push global transactions through the same [`Coordinator`] state machine
//! the simulator uses, and the engines' blocking lock managers provide the
//! contention. It exists for the throughput experiments (E1–E3, E7), where
//! wall-clock concurrency — not failure behaviour — is the measured
//! quantity. Crashes belong to the discrete-event driver.
//!
//! Global concurrency control: for the two portable protocols, every L1
//! lock of a global transaction is acquired (in canonical object order)
//! *before* any engine work and released only at global end — the strict
//! L1 two-phase discipline of §4.3 that discharges both serializability
//! requirements. The 2PC baseline runs without an L1 layer; distributed
//! 2PL at L0 (page locks held to the global end) is its isolation story,
//! and participants are always submitted in ascending site order so
//! cross-site lock cycles cannot form.

use crate::config::{FederationConfig, PaxosCommitConfig};
use crate::coordinator::{CoordAction, CoordEvent, Coordinator};
use crate::metrics::RunMetrics;
use amc_mlt::L1LockManager;
use amc_net::comm::SubmitMode;
use amc_net::transport::{AdminReply, AdminRequest, FederationTransport, InProcessTransport};
use amc_net::{Envelope, LocalCommManager, MessageTrace, Payload};
use amc_paxos::{majority, AcceptorHost, AcceptorTransport, CommitLedger, ReplicaDriver};
use amc_types::{
    AbortReason, AmcError, AmcResult, GlobalTxnId, GlobalVerdict, LocalVote, ObjectId, Operation,
    ProtocolKind, SimTime, SiteId, Value,
};
use amc_verify::{History, OpEvent};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one global transaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Globally committed.
    Committed,
    /// Globally aborted (a participant voted no).
    Aborted,
    /// Rejected at L1 lock acquisition before any engine work; the caller
    /// should retry.
    L1Rejected(AbortReason),
}

/// Per-transaction measurements returned to the driver loop.
#[derive(Debug, Clone)]
pub struct TxnReport {
    /// The global transaction id this attempt ran under (oracle mapping).
    pub gtx: GlobalTxnId,
    /// What happened.
    pub outcome: TxnOutcome,
    /// End-to-end latency of the attempt.
    pub latency: Duration,
    /// L0 lock tenures per participating site (first submit → local
    /// release), only populated for committed transactions.
    pub l0_holds: Vec<Duration>,
    /// Messages exchanged (requests + replies).
    pub messages: u64,
}

/// A final-state message the coordinator still owes a site that was down
/// when it was first sent (§3.1: the coordinator must eventually inform
/// every local system of the decision; §3.2/§3.3 make the retransmission
/// idempotent through markers).
#[derive(Debug, Clone)]
struct PendingObligation {
    gtx: GlobalTxnId,
    site: SiteId,
    payload: Payload,
    /// The transaction's L1 locks are retained until discharge (§4.3
    /// strictness: redo/undo obligations are part of the transaction).
    holds_l1: bool,
}

/// The submit mode a protocol uses on the wire.
pub fn submit_mode_for(protocol: ProtocolKind) -> SubmitMode {
    match protocol {
        ProtocolKind::TwoPhaseCommit => SubmitMode::TwoPhase,
        ProtocolKind::CommitAfter => SubmitMode::CommitAfter,
        ProtocolKind::CommitBefore => SubmitMode::CommitBefore,
    }
}

/// A running federation: central system + communication managers + sealed
/// engines.
pub struct Federation {
    cfg: FederationConfig,
    managers: BTreeMap<SiteId, Arc<LocalCommManager>>,
    transport: Arc<dyn FederationTransport>,
    l1: L1LockManager,
    next_gtx: AtomicU64,
    history: Mutex<History>,
    trace: Mutex<MessageTrace>,
    seq: AtomicU64,
    record_history: bool,
    record_trace: bool,
    unresolved: Mutex<Vec<PendingObligation>>,
    /// In-process acceptor group (Paxos federations built by
    /// [`Federation::new`] only — TCP deployments mount acceptors in
    /// their site servers).
    paxos_transport: Option<Arc<AcceptorTransport<InProcessTransport>>>,
    /// Fault injection: simulate the incumbent coordinator dying after
    /// this many more replicated votes, leaving the transaction in doubt.
    paxos_crash_after: Mutex<Option<u32>>,
}

impl Federation {
    /// Build a federation (fresh engines) from `cfg`.
    ///
    /// # Panics
    /// When `cfg` is not runnable (2PC over a non-preparable engine) — the
    /// paper's point is that such deployments cannot exist.
    pub fn new(cfg: FederationConfig) -> Self {
        assert!(
            cfg.is_runnable(),
            "2PC cannot run on a federation with non-preparable engines (§3.1)"
        );
        let managers: BTreeMap<SiteId, Arc<LocalCommManager>> = cfg
            .build_managers()
            .into_iter()
            .map(|m| (m.site(), m))
            .collect();
        let inner = InProcessTransport::new(
            managers.clone(),
            submit_mode_for(cfg.protocol),
            cfg.message_delay,
        );
        let Some(px) = &cfg.paxos else {
            let transport = Arc::new(inner);
            return Self::assemble(cfg, managers, transport);
        };
        // Replicated coordination: mount a durable acceptor at each
        // configured site by decorating the transport — the same
        // interception the TCP site server performs.
        assert_eq!(
            cfg.protocol,
            ProtocolKind::TwoPhaseCommit,
            "Paxos Commit replicates the 2PC prepare/decision structure; the \
             portable protocols have no prepared state to make durable"
        );
        assert!(
            px.acceptors.iter().all(|a| managers.contains_key(a)),
            "acceptors must be co-located with existing sites"
        );
        std::fs::create_dir_all(&px.log_dir).expect("create acceptor log dir");
        let hosts: BTreeMap<SiteId, AcceptorHost> = px
            .acceptors
            .iter()
            .map(|a| {
                let path = px.log_dir.join(format!("acceptor-{}.log", a.raw()));
                let host = AcceptorHost::open_with_linger(*a, path, px.acceptor_linger)
                    .expect("open acceptor log");
                (*a, host)
            })
            .collect();
        let decorated = Arc::new(AcceptorTransport::new(inner, hosts));
        let mut fed = Self::assemble(
            cfg,
            managers,
            Arc::clone(&decorated) as Arc<dyn FederationTransport>,
        );
        fed.paxos_transport = Some(decorated);
        fed
    }

    /// Build a federation whose sites are reached through an externally
    /// supplied transport (e.g. the TCP transport of `amc-rpc`). The sites'
    /// engines live behind the transport; [`Federation::manager`] returns
    /// `None` for every site.
    pub fn with_transport(cfg: FederationConfig, transport: Arc<dyn FederationTransport>) -> Self {
        Self::assemble(cfg, BTreeMap::new(), transport)
    }

    fn assemble(
        cfg: FederationConfig,
        managers: BTreeMap<SiteId, Arc<LocalCommManager>>,
        transport: Arc<dyn FederationTransport>,
    ) -> Self {
        let l1 = L1LockManager::new(cfg.policy, cfg.l1_timeout);
        // A sharded coordinator allocates from its slot's disjoint id
        // range; slot 0 (and every unsharded federation) starts at 1.
        let first_gtx = match &cfg.coordinator {
            Some(id) => u64::from(id.slot) * crate::config::COORD_GTX_SPAN + 1,
            None => 1,
        };
        Federation {
            cfg,
            managers,
            transport,
            l1,
            next_gtx: AtomicU64::new(first_gtx),
            history: Mutex::new(History::new()),
            trace: Mutex::new(MessageTrace::new()),
            seq: AtomicU64::new(1),
            record_history: true,
            record_trace: true,
            unresolved: Mutex::new(Vec::new()),
            paxos_transport: None,
            paxos_crash_after: Mutex::new(None),
        }
    }

    /// Disable oracle/trace recording (benchmark hot paths).
    pub fn set_recording(&mut self, history: bool, trace: bool) {
        self.record_history = history;
        self.record_trace = trace;
    }

    /// The configuration.
    pub fn config(&self) -> &FederationConfig {
        &self.cfg
    }

    /// The communication manager of `site` — only available when the
    /// federation runs in-process (transports hide remote managers).
    pub fn manager(&self, site: SiteId) -> Option<&Arc<LocalCommManager>> {
        self.managers.get(&site)
    }

    /// The transport sites are reached through.
    pub fn transport(&self) -> &Arc<dyn FederationTransport> {
        &self.transport
    }

    /// Load initial data into a site's engine.
    pub fn load_site(&self, site: SiteId, data: &[(ObjectId, Value)]) -> AmcResult<()> {
        match self
            .transport
            .admin(site, AdminRequest::Load(data.to_vec()))?
        {
            AdminReply::Loaded => Ok(()),
            other => Err(AmcError::Protocol(format!(
                "unexpected admin reply {other:?}"
            ))),
        }
    }

    /// Final committed state of every site (markers included).
    pub fn dumps(&self) -> AmcResult<BTreeMap<SiteId, BTreeMap<ObjectId, Value>>> {
        self.transport
            .sites()
            .into_iter()
            .map(|s| match self.transport.admin(s, AdminRequest::Dump)? {
                AdminReply::Dump(d) => Ok((s, d)),
                other => Err(AmcError::Protocol(format!(
                    "unexpected admin reply {other:?}"
                ))),
            })
            .collect()
    }

    /// Snapshot of the recorded history (oracle input).
    pub fn history(&self) -> History {
        self.history.lock().clone()
    }

    /// Snapshot of the message trace.
    pub fn trace(&self) -> MessageTrace {
        self.trace.lock().clone()
    }

    /// Aggregate communication-manager counters.
    pub fn comm_stats(&self) -> amc_net::CommStats {
        let mut total = amc_net::CommStats::default();
        for site in self.transport.sites() {
            let Ok(AdminReply::CommStats(s)) = self.transport.admin(site, AdminRequest::CommStats)
            else {
                continue;
            };
            total.submits += s.submits;
            total.votes_ready += s.votes_ready;
            total.votes_aborted += s.votes_aborted;
            total.redo_runs += s.redo_runs;
            total.undo_runs += s.undo_runs;
            total.pre_vote_retries += s.pre_vote_retries;
            total.marker_checks += s.marker_checks;
        }
        total
    }

    /// Aggregate engine log counters (E4).
    pub fn log_stats(&self) -> amc_wal::LogStats {
        let mut total = amc_wal::LogStats::default();
        for site in self.transport.sites() {
            let Ok(AdminReply::LogStats(s)) = self.transport.admin(site, AdminRequest::LogStats)
            else {
                continue;
            };
            total.appends += s.appends;
            total.forces += s.forces;
            total.group_forces += s.group_forces;
            total.batched_commits += s.batched_commits;
            total.stable_records += s.stable_records;
            total.stable_bytes += s.stable_bytes;
        }
        total
    }

    /// L1 lock-manager counters.
    pub fn l1_stats(&self) -> amc_lock::LockStats {
        self.l1.stats()
    }

    fn record_envelope(&self, from: SiteId, to: SiteId, payload: &Payload) {
        if self.record_trace {
            self.trace
                .lock()
                .record(SimTime::ZERO, Envelope::new(from, to, payload.clone()));
        }
    }

    /// Dispatch one coordinator message through the transport and return
    /// the reply.
    fn dispatch(&self, site: SiteId, payload: Payload) -> AmcResult<Payload> {
        self.record_envelope(SiteId::CENTRAL, site, &payload);
        let reply = self.transport.call(site, payload)?;
        self.record_envelope(site, SiteId::CENTRAL, &reply);
        Ok(reply)
    }

    /// Record the final-state messages still owed to sites that were down
    /// when `gtx` finished, translating each into the form a *restarted*
    /// site can act on.
    fn queue_obligations(
        &self,
        gtx: GlobalTxnId,
        verdict: GlobalVerdict,
        per_site: &BTreeMap<SiteId, Vec<Operation>>,
        crashed_voters: &[SiteId],
        deferred: Vec<(SiteId, Payload)>,
    ) {
        let holds_l1 = self.cfg.protocol != ProtocolKind::TwoPhaseCommit;
        let mut obligations = Vec::new();
        // A coordinator that already tried to send the crashed voter its
        // abort in the finish round deferred that payload too; the
        // synthetic obligation below supersedes it (for commit-before it
        // is the stronger message — an undo rather than a bare decision).
        let deferred: Vec<(SiteId, Payload)> = deferred
            .into_iter()
            .filter(|(site, _)| !crashed_voters.contains(site))
            .collect();
        for &site in crashed_voters {
            // A vote-phase crash forced the abort verdict, but the site may
            // have gotten further than its lost reply shows: a forced 2PC
            // prepare awaiting the decision, or a commit-before local
            // commit whose vote never arrived. Either way it must learn
            // the abort — as an undo for commit-before (its journal holds
            // the inverses), as a plain abort decision otherwise.
            debug_assert_eq!(verdict, GlobalVerdict::Abort);
            let payload = match self.cfg.protocol {
                ProtocolKind::CommitBefore => Payload::Undo {
                    gtx,
                    inverse_ops: Vec::new(),
                },
                _ => Payload::Decision {
                    gtx,
                    verdict: GlobalVerdict::Abort,
                },
            };
            obligations.push(PendingObligation {
                gtx,
                site,
                payload,
                holds_l1,
            });
        }
        for (site, payload) in deferred {
            // A restarted commit-after site has lost the running local
            // transaction a commit decision would land on; re-ship the
            // program as a redo instead (§3.2) — the forward marker makes
            // the repetition exactly-once even if the site never died.
            let payload = match (self.cfg.protocol, &payload) {
                (
                    ProtocolKind::CommitAfter,
                    Payload::Decision {
                        verdict: GlobalVerdict::Commit,
                        ..
                    },
                ) => Payload::Redo {
                    gtx,
                    ops: per_site.get(&site).cloned().unwrap_or_default(),
                },
                _ => payload,
            };
            obligations.push(PendingObligation {
                gtx,
                site,
                payload,
                holds_l1,
            });
        }
        self.unresolved.lock().extend(obligations);
    }

    /// Number of final-state messages still owed to unreachable sites.
    pub fn pending_obligations(&self) -> usize {
        self.unresolved.lock().len()
    }

    /// Retry delivery of every owed final-state message — the coordinator
    /// side of a recovered site's inquiry (§3.1): once the site answers
    /// again, it learns the verdict it missed, redoes or undoes as the
    /// protocol demands, and the transaction's retained L1 locks are
    /// finally released.
    ///
    /// One delivery attempt per obligation per call; obligations whose
    /// site is still down stay queued. Returns how many were discharged.
    pub fn resolve_pending(&self) -> AmcResult<usize> {
        let pending = std::mem::take(&mut *self.unresolved.lock());
        if pending.is_empty() {
            return Ok(0);
        }
        let batch: Vec<(GlobalTxnId, bool)> = pending.iter().map(|o| (o.gtx, o.holds_l1)).collect();
        let mut kept = Vec::new();
        let mut discharged = 0usize;
        for ob in pending {
            match self.dispatch(ob.site, ob.payload.clone()) {
                Ok(_) => discharged += 1,
                Err(AmcError::SiteDown(_)) | Err(AmcError::TransientIo(_)) => kept.push(ob),
                Err(e) => {
                    // A delivered-but-rejected obligation is a protocol
                    // bug, not an outage: surface it, keep the rest.
                    self.unresolved.lock().extend(kept);
                    return Err(e);
                }
            }
        }
        let mut unresolved = self.unresolved.lock();
        unresolved.extend(kept);
        for (gtx, holds_l1) in batch {
            if holds_l1 && !unresolved.iter().any(|o| o.gtx == gtx) {
                self.l1.release_all(gtx);
            }
        }
        Ok(discharged)
    }

    /// Start numbering transactions at `first` instead of 1. A
    /// *replacement* coordinator replica must not reuse the ids its dead
    /// predecessor already burned at the sites — ids only need to be
    /// unique, not dense.
    pub fn set_first_gtx(&self, first: u64) {
        self.next_gtx.store(first.max(1), Ordering::Relaxed);
    }

    /// The in-process acceptor group, when this federation was built with
    /// a [`PaxosCommitConfig`] (fault-injection switchboard for tests and
    /// experiments).
    pub fn paxos_transport(&self) -> Option<&Arc<AcceptorTransport<InProcessTransport>>> {
        self.paxos_transport.as_ref()
    }

    /// A recovery driver speaking as coordinator replica `replica` over
    /// this federation's acceptor group.
    ///
    /// # Panics
    /// When the federation has no Paxos configuration.
    pub fn replica_driver(&self, replica: u32) -> ReplicaDriver<'_> {
        let px = self.cfg.paxos.as_ref().expect("paxos not configured");
        ReplicaDriver::new(&*self.transport, px.acceptors.clone(), replica)
    }

    /// Fault injection: the incumbent coordinator "dies" (the current
    /// `run_transaction` returns an error without delivering a decision)
    /// right after the `votes`-th replicated prepare vote — leaving the
    /// transaction in doubt for a standby to finish.
    pub fn inject_coordinator_crash_after_votes(&self, votes: u32) {
        *self.paxos_crash_after.lock() = Some(votes.max(1));
    }

    fn paxos_crash_due(&self) -> bool {
        let mut slot = self.paxos_crash_after.lock();
        if let Some(n) = slot.as_mut() {
            *n -= 1;
            if *n == 0 {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Open `gtx`'s Paxos instances at the acceptor group (*BeginCommit*).
    /// Returns the acceptors that durably acknowledged the registration.
    fn paxos_register(
        &self,
        gtx: GlobalTxnId,
        participants: &[SiteId],
        px: &PaxosCommitConfig,
        messages: &mut u64,
    ) -> AmcResult<Vec<SiteId>> {
        let mut acked = Vec::new();
        for a in &px.acceptors {
            *messages += 2;
            let payload = Payload::PaxosRegister {
                gtx,
                participants: participants.to_vec(),
            };
            match self.dispatch(*a, payload) {
                Ok(Payload::PaxosAck { .. }) => acked.push(*a),
                Ok(other) => {
                    return Err(AmcError::Protocol(format!(
                        "unexpected registration reply {other}"
                    )))
                }
                Err(AmcError::SiteDown(_)) | Err(AmcError::TransientIo(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(acked)
    }

    /// Cross-replicate one prepare vote at ballot 0. The voting site's
    /// co-located acceptor already holds the accept (the vote reply *was*
    /// the accept — co-location); the other acceptors get an explicit
    /// phase-2a message. Successful Prepared accepts feed the commit gate.
    #[allow(clippy::too_many_arguments)]
    fn paxos_replicate_vote(
        &self,
        gtx: GlobalTxnId,
        site: SiteId,
        prepared: bool,
        px: &PaxosCommitConfig,
        registered_at: &[SiteId],
        ledger: &mut CommitLedger,
        messages: &mut u64,
    ) {
        for a in &px.acceptors {
            if *a == site && registered_at.contains(a) {
                if prepared {
                    ledger.record_prepared(site, *a);
                }
                continue;
            }
            *messages += 2;
            let payload = Payload::PaxosP2a {
                gtx,
                site,
                ballot: 0,
                prepared,
            };
            // A non-accept (a recovery ballot superseded 0, the acceptor is
            // unreachable, or the reply is malformed) just means the instance
            // is not chosen at this acceptor — the commit gate decides what
            // that means.
            let accepted = matches!(
                self.dispatch(*a, payload),
                Ok(Payload::PaxosP2b { accepted: true, .. })
            );
            if prepared && accepted {
                ledger.record_prepared(site, *a);
            }
        }
    }

    /// Whether the 1PC fast path applies to this federation's runs.
    fn fast_path_active(&self) -> bool {
        self.cfg.fast_path
            && self.cfg.protocol == ProtocolKind::TwoPhaseCommit
            && self.cfg.paxos.is_none()
    }

    /// The single-site bypass: a transaction touching one site needs no
    /// global round at all. The combined op+prepare dispatch carries
    /// `solo`, telling the site to commit locally at once (through the
    /// commit-before machinery: forward marker, captured inverses,
    /// journal); the coordinator records the presumed outcome from the
    /// single reply. A lost reply presumes abort and leaves the site an
    /// undo obligation, discharged by [`Federation::resolve_pending`]
    /// exactly as a commit-before crash race is.
    fn run_single_site(
        &self,
        gtx: GlobalTxnId,
        site: SiteId,
        ops: &[Operation],
        start: Instant,
    ) -> AmcResult<TxnReport> {
        let t0 = Instant::now();
        let payload = Payload::SubmitPrepare {
            gtx,
            ops: ops.to_vec(),
            solo: true,
        };
        let (verdict, l0_holds) = match self.dispatch(site, payload) {
            Ok(Payload::Vote { vote, .. }) => {
                if vote.is_yes() {
                    if self.record_history {
                        let per_site = BTreeMap::from([(site, ops.to_vec())]);
                        self.record_site_ops(gtx, site, &per_site);
                    }
                    // The site committed locally at its vote: its L0
                    // tenure is the single exchange.
                    (GlobalVerdict::Commit, vec![t0.elapsed()])
                } else {
                    (GlobalVerdict::Abort, Vec::new())
                }
            }
            Ok(other) => return Err(AmcError::Protocol(format!("unexpected reply {other}"))),
            Err(AmcError::SiteDown(_)) | Err(AmcError::TransientIo(_)) => {
                // Presume abort. The site may in fact have committed
                // locally before the reply was lost (§3.3's crash race);
                // the empty-inverse undo makes the recovered site consult
                // its own journal, and its markers make the repair
                // exactly-once.
                self.unresolved.lock().push(PendingObligation {
                    gtx,
                    site,
                    payload: Payload::Undo {
                        gtx,
                        inverse_ops: Vec::new(),
                    },
                    holds_l1: false,
                });
                (GlobalVerdict::Abort, Vec::new())
            }
            Err(e) => return Err(e),
        };
        if self.record_history {
            self.history.lock().set_outcome(gtx, verdict);
        }
        Ok(TxnReport {
            gtx,
            outcome: match verdict {
                GlobalVerdict::Commit => TxnOutcome::Committed,
                GlobalVerdict::Abort => TxnOutcome::Aborted,
            },
            latency: start.elapsed(),
            l0_holds,
            messages: 2,
        })
    }

    /// Run one global transaction to completion.
    pub fn run_transaction(
        &self,
        per_site: &BTreeMap<SiteId, Vec<Operation>>,
    ) -> AmcResult<TxnReport> {
        let start = Instant::now();
        let gtx = GlobalTxnId::new(self.next_gtx.fetch_add(1, Ordering::Relaxed));
        if self.fast_path_active() && per_site.len() == 1 {
            let (&site, ops) = per_site.iter().next().expect("one site");
            return self.run_single_site(gtx, site, ops, start);
        }

        // --- L1 acquisition (portable protocols only) ---------------------
        if self.cfg.protocol != ProtocolKind::TwoPhaseCommit {
            // The whole lock set is known before execution starts, so fold
            // each object's accesses into one *strongest* mode and acquire
            // in canonical object order. Ordered acquisition removes lock
            // cycles across objects; one-shot strongest-mode acquisition
            // removes upgrade deadlocks on the same object. L1 deadlock is
            // impossible by construction (timeouts remain the overload
            // safety valve).
            use amc_lock::LockMode;
            let mut needed: BTreeMap<ObjectId, amc_lock::SemanticMode> = BTreeMap::new();
            for op in per_site.values().flatten() {
                let mode = self.cfg.policy.mode_for(op);
                needed
                    .entry(op.object())
                    .and_modify(|m| *m = m.combine(mode))
                    .or_insert(mode);
            }
            for (obj, mode) in needed {
                use amc_lock::blocking::AcquireResult;
                match self.l1.acquire_mode(gtx, obj, mode) {
                    AcquireResult::Granted => {}
                    AcquireResult::Deadlock => {
                        self.l1.release_all(gtx);
                        return Ok(TxnReport {
                            gtx,
                            outcome: TxnOutcome::L1Rejected(AbortReason::Deadlock),
                            latency: start.elapsed(),
                            l0_holds: Vec::new(),
                            messages: 0,
                        });
                    }
                    AcquireResult::Timeout => {
                        self.l1.release_all(gtx);
                        return Ok(TxnReport {
                            gtx,
                            outcome: TxnOutcome::L1Rejected(AbortReason::LockTimeout),
                            latency: start.elapsed(),
                            l0_holds: Vec::new(),
                            messages: 0,
                        });
                    }
                }
            }
        }

        // --- Drive the coordinator synchronously --------------------------
        let mut coordinator = Coordinator::new(gtx, self.cfg.protocol, per_site.clone());
        if self.fast_path_active() {
            coordinator = coordinator.with_piggyback();
        }
        let mut queue = std::collections::VecDeque::from([CoordEvent::Start]);
        let mut messages = 0u64;
        let mut submit_started: BTreeMap<SiteId, Instant> = BTreeMap::new();
        let mut l0_released: BTreeMap<SiteId, Instant> = BTreeMap::new();
        let mut final_verdict: Option<GlobalVerdict> = None;
        // Sites that went down mid-protocol. A vote-phase failure counts
        // as a no vote; a finish-phase failure leaves a final-state
        // message the coordinator still owes the site once it recovers.
        let mut crashed_voters: Vec<SiteId> = Vec::new();
        let mut deferred: Vec<(SiteId, Payload)> = Vec::new();
        // Paxos Commit bookkeeping (2PC + replicated coordination only).
        let paxos = self.cfg.paxos.as_ref();
        let participants: Vec<SiteId> = per_site.keys().copied().collect();
        let mut registration_done = false;
        let mut registered_at: Vec<SiteId> = Vec::new();
        let mut ledger = CommitLedger::new();
        let mut override_verdict: Option<GlobalVerdict> = None;
        let result: AmcResult<()> = (|| {
            'drive: while let Some(event) = queue.pop_front() {
                let actions = coordinator.on_event(event);
                // Over a pipelining transport a round's Sends — one per
                // site, mutually independent — overlap on the wire
                // instead of paying one round trip each, in series.
                // Replies are still *processed* in emission order, so
                // the coordinator state machine sees exactly the serial
                // schedule. Paxos rounds stay serial: registration and
                // vote replication interleave with the sends.
                let mut prefetched: BTreeMap<usize, AmcResult<Payload>> = BTreeMap::new();
                if paxos.is_none() && self.transport.supports_pipelining() {
                    let sends: Vec<(usize, SiteId, Payload)> = actions
                        .iter()
                        .enumerate()
                        .filter_map(|(i, a)| match a {
                            CoordAction::Send { site, payload } => {
                                Some((i, *site, payload.clone()))
                            }
                            _ => None,
                        })
                        .collect();
                    if sends.len() > 1 {
                        for (_, site, payload) in &sends {
                            if matches!(
                                payload,
                                Payload::Submit { .. } | Payload::SubmitPrepare { .. }
                            ) {
                                submit_started.insert(*site, Instant::now());
                            }
                        }
                        std::thread::scope(|scope| {
                            let handles: Vec<_> = sends
                                .iter()
                                .map(|(i, site, payload)| {
                                    let (i, site, payload) = (*i, *site, payload.clone());
                                    (i, scope.spawn(move || self.dispatch(site, payload)))
                                })
                                .collect();
                            for (i, h) in handles {
                                let r = h.join().expect("fan-out dispatch panicked");
                                prefetched.insert(i, r);
                            }
                        });
                    }
                }
                for (action_idx, action) in actions.into_iter().enumerate() {
                    match action {
                        CoordAction::Send { site, payload } => {
                            // Replicated coordination opens the instance
                            // set between the work and prepare rounds:
                            // prepare-round votes (and only those) then
                            // double as ballot-0 accepts.
                            if let (Some(px), Payload::Prepare { .. }) = (paxos, &payload) {
                                if !registration_done {
                                    registration_done = true;
                                    registered_at =
                                        self.paxos_register(gtx, &participants, px, &mut messages)?;
                                    if registered_at.len() < majority(px.acceptors.len()) {
                                        // The instances cannot be opened
                                        // durably; abort before any site
                                        // prepares (a pre-prepare abort
                                        // is unilateral-safe: no acceptor
                                        // can ever choose Prepared).
                                        override_verdict = Some(GlobalVerdict::Abort);
                                        break 'drive;
                                    }
                                }
                            }
                            let is_submit = matches!(
                                payload,
                                Payload::Submit { .. } | Payload::SubmitPrepare { .. }
                            );
                            // A prefetched submit already stamped its
                            // start when the fan-out launched it.
                            if is_submit && !prefetched.contains_key(&action_idx) {
                                submit_started.insert(site, Instant::now());
                            }
                            let was_prepare = matches!(payload, Payload::Prepare { .. });
                            let vote_phase = matches!(
                                payload,
                                Payload::Submit { .. }
                                    | Payload::SubmitPrepare { .. }
                                    | Payload::Prepare { .. }
                            );
                            messages += 2; // request + reply
                            let dispatched = match prefetched.remove(&action_idx) {
                                Some(r) => r,
                                None => self.dispatch(site, payload.clone()),
                            };
                            let reply = match dispatched {
                                Ok(reply) => reply,
                                Err(AmcError::SiteDown(_)) | Err(AmcError::TransientIo(_)) => {
                                    if vote_phase {
                                        // An unreachable site cannot promise
                                        // anything: count it as a no vote and
                                        // reconcile after the verdict (§3.3's
                                        // crash race: it may in fact have
                                        // committed locally before dying).
                                        crashed_voters.push(site);
                                        queue.push_back(CoordEvent::Vote {
                                            site,
                                            vote: LocalVote::Aborted,
                                        });
                                    } else {
                                        // The decision stands; the site learns
                                        // it through the inquiry path when it
                                        // comes back (resolve_pending).
                                        deferred.push((site, payload));
                                        queue.push_back(CoordEvent::Finished { site });
                                    }
                                    continue;
                                }
                                Err(e) => return Err(e),
                            };
                            // L0 release points: commit-before releases at
                            // local commit (submit reply); the others at the
                            // decision/redo/undo reply.
                            match (&reply, self.cfg.protocol) {
                                (Payload::Vote { .. }, ProtocolKind::CommitBefore) => {
                                    l0_released.insert(site, Instant::now());
                                }
                                (Payload::Finished { .. }, _) => {
                                    l0_released.insert(site, Instant::now());
                                }
                                _ => {}
                            }
                            match reply {
                                Payload::Vote { vote, .. } => {
                                    if vote.is_yes() && self.record_history {
                                        self.record_site_ops(gtx, site, per_site);
                                    }
                                    if let Some(px) = paxos {
                                        if was_prepare && registration_done {
                                            self.paxos_replicate_vote(
                                                gtx,
                                                site,
                                                vote.is_yes(),
                                                px,
                                                &registered_at,
                                                &mut ledger,
                                                &mut messages,
                                            );
                                            if self.paxos_crash_due() {
                                                return Err(AmcError::InvalidState(format!(
                                                    "injected coordinator crash: {gtx} left in doubt"
                                                )));
                                            }
                                        }
                                    }
                                    queue.push_back(CoordEvent::Vote { site, vote });
                                }
                                Payload::Finished { .. } => {
                                    queue.push_back(CoordEvent::Finished { site });
                                }
                                other => {
                                    return Err(AmcError::Protocol(format!(
                                        "unexpected reply {other}"
                                    )))
                                }
                            }
                        }
                        CoordAction::Decided(v) => {
                            let Some(px) = paxos else { continue };
                            if !registration_done {
                                // Work-round abort: nothing was ever
                                // registered, no acceptor can choose
                                // Prepared — unilateral abort is safe.
                                continue;
                            }
                            let fast_commit = v == GlobalVerdict::Commit
                                && ledger.all_chosen(&participants, px.acceptors.len());
                            if fast_commit {
                                // Every instance chose Prepared at a
                                // majority at ballot 0: the commit is
                                // already the replicated, durable fact.
                                continue;
                            }
                            // Anything else after registration — an abort,
                            // or a commit whose ballot-0 replication fell
                            // short — must be run through a recovery
                            // ballot: a unilateral decision could
                            // contradict what a standby reads from the
                            // acceptor logs.
                            messages +=
                                2 * px.acceptors.len() as u64 * (1 + participants.len() as u64);
                            let driver = ReplicaDriver::new(
                                &*self.transport,
                                px.acceptors.clone(),
                                px.replica,
                            );
                            let (verdict, _) = driver.decide(gtx, &participants)?;
                            if verdict != v {
                                // The replicated verdict departs from the
                                // coordinator's local one (e.g. a crashed
                                // voter whose durable Prepared survived
                                // it): the acceptors win — abandon the
                                // state machine and deliver their verdict.
                                override_verdict = Some(verdict);
                                break 'drive;
                            }
                        }
                        CoordAction::Done(v) => final_verdict = Some(v),
                    }
                }
            }
            // The replicated decision departs from (or pre-empts) the
            // coordinator's: deliver it ourselves, with the usual
            // down-site deferral.
            if let Some(v) = override_verdict {
                for &s in per_site.keys() {
                    messages += 2;
                    let payload = Payload::Decision { gtx, verdict: v };
                    match self.dispatch(s, payload.clone()) {
                        Ok(_) => {}
                        Err(AmcError::SiteDown(_)) | Err(AmcError::TransientIo(_)) => {
                            deferred.push((s, payload));
                        }
                        Err(e) => return Err(e),
                    }
                }
                // Every crashed voter was just re-driven (or queued as an
                // obligation) with the *replicated* verdict; drop the
                // synthesized-abort bookkeeping.
                crashed_voters.clear();
                final_verdict = Some(v);
            }
            Ok(())
        })();

        let has_obligations = !crashed_voters.is_empty() || !deferred.is_empty();
        // Strict L1 2PL: release only after every obligation (redo/undo)
        // has been discharged. A transaction that still owes a crashed
        // site its final state keeps its L1 locks until resolve_pending
        // delivers it (§4.3: the obligation is part of the transaction).
        if self.cfg.protocol != ProtocolKind::TwoPhaseCommit && !(result.is_ok() && has_obligations)
        {
            self.l1.release_all(gtx);
        }
        result?;

        let verdict =
            final_verdict.ok_or_else(|| AmcError::Protocol("coordinator never finished".into()))?;
        // Close the instances at acceptors that are not participants —
        // participants' co-located acceptors noted the decision when the
        // `Decision` payload passed through them. Best-effort: a missed
        // note keeps the transaction "open" there, and re-finishing an
        // already-decided transaction is idempotent.
        if let Some(px) = paxos {
            if registration_done {
                for a in &px.acceptors {
                    if !per_site.contains_key(a) {
                        messages += 2;
                        let _ = self.dispatch(*a, Payload::PaxosDecided { gtx, verdict });
                    }
                }
            }
        }
        if has_obligations {
            self.queue_obligations(gtx, verdict, per_site, &crashed_voters, deferred);
        }
        if self.record_history {
            self.history.lock().set_outcome(gtx, verdict);
        }

        // 2PC and commit-after hold L0 locks until the decision round; the
        // sites that never saw a finish (commit-before commit path) already
        // released at their vote.
        let l0_holds = if verdict == GlobalVerdict::Commit {
            submit_started
                .iter()
                .filter_map(|(site, t0)| l0_released.get(site).map(|t1| t1.duration_since(*t0)))
                .collect()
        } else {
            Vec::new()
        };

        Ok(TxnReport {
            gtx,
            outcome: match verdict {
                GlobalVerdict::Commit => TxnOutcome::Committed,
                GlobalVerdict::Abort => TxnOutcome::Aborted,
            },
            latency: start.elapsed(),
            l0_holds,
            messages,
        })
    }

    fn record_site_ops(
        &self,
        gtx: GlobalTxnId,
        site: SiteId,
        per_site: &BTreeMap<SiteId, Vec<Operation>>,
    ) {
        if let Some(ops) = per_site.get(&site) {
            let mut history = self.history.lock();
            // An inquiry retry can re-fetch a site's cached yes vote;
            // recording its ops twice would fabricate conflict edges.
            if history.has_events_for(gtx, site) {
                return;
            }
            for op in ops {
                let seq = self.seq.fetch_add(1, Ordering::Relaxed);
                history.record_op(OpEvent {
                    gtx,
                    site,
                    seq,
                    op: *op,
                });
            }
        }
    }

    /// Run a batch of programs on `threads` worker threads. Each program is
    /// `(per-site ops, intends_abort)`; erroneous global rejections *and*
    /// erroneous global aborts (an abort of a program that did not intend
    /// one) are retried (bounded); intended aborts are not.
    pub fn run_concurrent(
        self: &Arc<Self>,
        programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)>,
        threads: usize,
    ) -> RunMetrics {
        let mut metrics = RunMetrics::new(self.cfg.protocol);
        // FIFO: workers take programs in submission order (a `Vec::pop`
        // here once drained the batch back-to-front, starving early
        // submissions under bounded drivers).
        let queue = Arc::new(Mutex::new(
            programs
                .into_iter()
                .collect::<std::collections::VecDeque<_>>(),
        ));
        let results: Arc<Mutex<Vec<(TxnReport, bool)>>> = Arc::new(Mutex::new(Vec::new()));
        let sheds_before = self.transport.load_sheds();
        let start = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..threads.max(1) {
                let fed = Arc::clone(self);
                let queue = Arc::clone(&queue);
                let results = Arc::clone(&results);
                scope.spawn(move || loop {
                    let Some((program, intends_abort)) = queue.lock().pop_front() else {
                        return;
                    };
                    let mut attempts = 0;
                    loop {
                        attempts += 1;
                        match fed.run_transaction(&program) {
                            Ok(report) => {
                                let erroneous_abort =
                                    report.outcome == TxnOutcome::Aborted && !intends_abort;
                                let retry = (matches!(report.outcome, TxnOutcome::L1Rejected(_))
                                    || erroneous_abort)
                                    && attempts < 10;
                                results.lock().push((report, intends_abort));
                                if retry {
                                    continue;
                                }
                            }
                            Err(e) => panic!("federation error: {e}"),
                        }
                        break;
                    }
                });
            }
        });
        metrics.wall = start.elapsed();
        metrics.load_sheds = self.transport.load_sheds().saturating_sub(sheds_before);
        for (report, intends_abort) in results.lock().drain(..) {
            metrics.messages += report.messages;
            match report.outcome {
                TxnOutcome::Committed => {
                    metrics.committed += 1;
                    metrics.total_commit_latency += report.latency;
                    metrics.latency_us.record(report.latency.as_micros() as u64);
                    for h in &report.l0_holds {
                        metrics.total_l0_hold += *h;
                        metrics.l0_hold_count += 1;
                        metrics.l0_hold_us.record(h.as_micros() as u64);
                    }
                }
                TxnOutcome::Aborted => {
                    if intends_abort {
                        metrics.aborted_intended += 1;
                    } else {
                        metrics.aborted_erroneous += 1;
                    }
                }
                TxnOutcome::L1Rejected(_) => metrics.l1_rejections += 1,
            }
        }
        let comm = self.comm_stats();
        metrics.redo_runs = comm.redo_runs;
        metrics.undo_runs = comm.undo_runs;
        metrics.pre_vote_retries = comm.pre_vote_retries;
        let log = self.log_stats();
        metrics.log_forces = log.forces;
        metrics.log_bytes = log.stable_bytes;
        metrics.group_forces = log.group_forces;
        metrics.batched_commits = log.batched_commits;
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_net::marker::is_marker;
    use amc_verify::history::ConflictDefinition;

    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }
    fn obj(site_n: u32, idx: u64) -> ObjectId {
        // Mirror the workload naming scheme without depending on it.
        ObjectId::new(u64::from(site_n) * (1 << 32) + idx)
    }
    fn v(n: i64) -> Value {
        Value::counter(n)
    }

    fn loaded(protocol: ProtocolKind, sites: u32) -> Arc<Federation> {
        let fed = Federation::new(FederationConfig::uniform(sites, protocol));
        for s in 1..=sites {
            let data: Vec<(ObjectId, Value)> = (0..50).map(|i| (obj(s, i), v(100))).collect();
            fed.load_site(site(s), &data).unwrap();
        }
        Arc::new(fed)
    }

    fn transfer(from_site: u32, to_site: u32, amount: i64) -> BTreeMap<SiteId, Vec<Operation>> {
        BTreeMap::from([
            (
                site(from_site),
                vec![Operation::Increment {
                    obj: obj(from_site, 0),
                    delta: -amount,
                }],
            ),
            (
                site(to_site),
                vec![Operation::Increment {
                    obj: obj(to_site, 0),
                    delta: amount,
                }],
            ),
        ])
    }

    fn user_sum(fed: &Federation) -> i64 {
        fed.dumps()
            .unwrap()
            .values()
            .flat_map(|d| d.iter())
            .filter(|(o, _)| !is_marker(**o))
            .map(|(_, val)| val.counter)
            .sum()
    }

    #[test]
    fn all_protocols_commit_a_simple_transfer() {
        for protocol in ProtocolKind::ALL {
            let fed = loaded(protocol, 2);
            let report = fed.run_transaction(&transfer(1, 2, 30)).unwrap();
            assert_eq!(report.outcome, TxnOutcome::Committed, "{protocol}");
            let dumps = fed.dumps().unwrap();
            assert_eq!(dumps[&site(1)][&obj(1, 0)], v(70), "{protocol}");
            assert_eq!(dumps[&site(2)][&obj(2, 0)], v(130), "{protocol}");
            assert!(report.messages >= 4);
        }
    }

    #[test]
    fn intended_abort_leaves_no_net_effect_under_all_protocols() {
        for protocol in ProtocolKind::ALL {
            let fed = loaded(protocol, 2);
            let mut program = transfer(1, 2, 30);
            // Site 2's program additionally reads a missing object: the
            // transaction logic fails there.
            program.get_mut(&site(2)).unwrap().push(Operation::Read {
                obj: obj(2, 999_999),
            });
            let report = fed.run_transaction(&program).unwrap();
            assert_eq!(report.outcome, TxnOutcome::Aborted, "{protocol}");
            // Atomicity: no site shows any effect (commit-before undid
            // site 1 via the inverse transaction).
            assert_eq!(user_sum(&fed), 100 * 2 * 50, "{protocol}");
            let dumps = fed.dumps().unwrap();
            assert_eq!(dumps[&site(1)][&obj(1, 0)], v(100), "{protocol}");
        }
    }

    /// An in-process transport whose sites can be taken "down": calls to a
    /// down site fail like a dead TCP peer, while admin (used by
    /// `load_site`/`dumps`) keeps working so tests can observe state.
    struct FlakyTransport {
        inner: InProcessTransport,
        down: Mutex<std::collections::BTreeSet<SiteId>>,
        fail_finish_for: Mutex<Option<SiteId>>,
    }

    impl FederationTransport for FlakyTransport {
        fn sites(&self) -> Vec<SiteId> {
            self.inner.sites()
        }
        fn call(&self, site: SiteId, payload: Payload) -> AmcResult<Payload> {
            if self.down.lock().contains(&site) {
                return Err(AmcError::SiteDown(site));
            }
            let finish = matches!(
                payload,
                Payload::Decision { .. } | Payload::Redo { .. } | Payload::Undo { .. }
            );
            if finish && *self.fail_finish_for.lock() == Some(site) {
                return Err(AmcError::SiteDown(site));
            }
            self.inner.call(site, payload)
        }
        fn admin(&self, site: SiteId, request: AdminRequest) -> AmcResult<AdminReply> {
            self.inner.admin(site, request)
        }
    }

    fn flaky(protocol: ProtocolKind, sites: u32) -> (Arc<Federation>, Arc<FlakyTransport>) {
        flaky_with(FederationConfig::uniform(sites, protocol))
    }

    fn flaky_with(cfg: FederationConfig) -> (Arc<Federation>, Arc<FlakyTransport>) {
        let sites = cfg.site_count();
        let protocol = cfg.protocol;
        let managers: BTreeMap<SiteId, Arc<LocalCommManager>> = cfg
            .build_managers()
            .into_iter()
            .map(|m| (m.site(), m))
            .collect();
        let transport = Arc::new(FlakyTransport {
            inner: InProcessTransport::new(managers, submit_mode_for(protocol), cfg.message_delay),
            down: Mutex::new(Default::default()),
            fail_finish_for: Mutex::new(None),
        });
        let fed = Federation::with_transport(cfg, transport.clone());
        for s in 1..=sites {
            let data: Vec<(ObjectId, Value)> = (0..50).map(|i| (obj(s, i), v(100))).collect();
            fed.load_site(site(s), &data).unwrap();
        }
        (Arc::new(fed), transport)
    }

    #[test]
    fn down_site_during_votes_forces_abort_and_queues_an_obligation() {
        for protocol in ProtocolKind::ALL {
            let (fed, transport) = flaky(protocol, 2);
            transport.down.lock().insert(site(2));
            let report = fed.run_transaction(&transfer(1, 2, 30)).unwrap();
            assert_eq!(report.outcome, TxnOutcome::Aborted, "{protocol}");
            // The crashed voter is owed the abort it never heard.
            assert_eq!(fed.pending_obligations(), 1, "{protocol}");
            // While it stays down the obligation stays queued.
            assert_eq!(fed.resolve_pending().unwrap(), 0, "{protocol}");
            assert_eq!(fed.pending_obligations(), 1, "{protocol}");
            // Recovery: the site answers again, the abort lands, locks free.
            transport.down.lock().remove(&site(2));
            assert_eq!(fed.resolve_pending().unwrap(), 1, "{protocol}");
            assert_eq!(fed.pending_obligations(), 0, "{protocol}");
            assert_eq!(user_sum(&fed), 100 * 2 * 50, "{protocol}");
            // The released L1 locks admit new transactions on the same set.
            let report = fed.run_transaction(&transfer(1, 2, 30)).unwrap();
            assert_eq!(report.outcome, TxnOutcome::Committed, "{protocol}");
            assert_eq!(user_sum(&fed), 100 * 2 * 50, "{protocol}");
        }
    }

    #[test]
    fn down_site_during_finish_defers_the_decision_and_resolves_on_recovery() {
        for protocol in ProtocolKind::ALL {
            let (fed, transport) = flaky(protocol, 2);
            *transport.fail_finish_for.lock() = Some(site(2));
            let report = fed.run_transaction(&transfer(1, 2, 30)).unwrap();
            // Every vote was yes before the crash: the decision stands.
            assert_eq!(report.outcome, TxnOutcome::Committed, "{protocol}");
            let expect_pending = match protocol {
                // Commit-before's commit path sends no finish message to
                // make idempotent later — the site already committed at
                // submit, so the deferred ack (if any) still counts.
                ProtocolKind::CommitBefore => fed.pending_obligations(),
                _ => 1,
            };
            assert_eq!(fed.pending_obligations(), expect_pending, "{protocol}");
            *transport.fail_finish_for.lock() = None;
            fed.resolve_pending().unwrap();
            assert_eq!(fed.pending_obligations(), 0, "{protocol}");
            // Exactly-once: the transfer shows on both sides, once.
            let dumps = fed.dumps().unwrap();
            assert_eq!(dumps[&site(1)][&obj(1, 0)], v(70), "{protocol}");
            assert_eq!(dumps[&site(2)][&obj(2, 0)], v(130), "{protocol}");
            assert_eq!(user_sum(&fed), 100 * 2 * 50, "{protocol}");
        }
    }

    /// A 2PC federation with Paxos Commit: `acceptors` durable acceptors
    /// co-located with the first sites, logs under a per-test temp dir.
    fn paxos_loaded(sites: u32, acceptors: u32, tag: &str) -> Arc<Federation> {
        let dir = std::env::temp_dir().join(format!("amc-fed-paxos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = FederationConfig::uniform(sites, ProtocolKind::TwoPhaseCommit)
            .with_paxos_commit(acceptors, &dir);
        let fed = Federation::new(cfg);
        for s in 1..=sites {
            let data: Vec<(ObjectId, Value)> = (0..50).map(|i| (obj(s, i), v(100))).collect();
            fed.load_site(site(s), &data).unwrap();
        }
        Arc::new(fed)
    }

    #[test]
    fn paxos_commit_happy_path_replicates_and_commits() {
        let fed = paxos_loaded(3, 3, "happy");
        let report = fed.run_transaction(&transfer(1, 2, 30)).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed);
        let dumps = fed.dumps().unwrap();
        assert_eq!(dumps[&site(1)][&obj(1, 0)], v(70));
        assert_eq!(dumps[&site(2)][&obj(2, 0)], v(130));
        // Every acceptor — the participants' co-located ones (which saw
        // the Decision pass through) and the bystander at site 3 (which
        // got an explicit PaxosDecided) — holds the commit durably and
        // reports no open instances.
        let transport = fed.paxos_transport().unwrap();
        for a in 1..=3 {
            let host = transport.host(site(a)).unwrap();
            host.with_acceptor(|acc| {
                assert_eq!(
                    acc.state().decision(report.gtx),
                    Some(GlobalVerdict::Commit),
                    "acceptor {a}"
                );
                assert!(acc.state().open_entries().is_empty(), "acceptor {a}");
                assert!(acc.frame_count() > 0, "acceptor {a} must have logged");
            });
        }
        // The prepare votes of the two participants were accepted at a
        // majority at ballot 0, so the commit took the fast path — but it
        // still paid for registration and cross-replication.
        assert!(report.messages > 8, "{}", report.messages);
    }

    #[test]
    fn paxos_registration_minority_aborts_before_any_prepare() {
        // Acceptors at sites 1–3; two of them unreachable means the
        // instance set cannot be opened durably at a majority, and the
        // transaction (on the disjoint sites 4 and 5) aborts cleanly
        // before any site prepares.
        let fed = paxos_loaded(5, 3, "minority");
        let transport = fed.paxos_transport().unwrap();
        transport.set_down(site(2), true);
        transport.set_down(site(3), true);
        let report = fed.run_transaction(&transfer(4, 5, 30)).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Aborted);
        transport.set_down(site(2), false);
        transport.set_down(site(3), false);
        assert_eq!(user_sum(&fed), 100 * 5 * 50);
        // With the acceptor majority back, the same program commits.
        let report = fed.run_transaction(&transfer(4, 5, 30)).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed);
        assert_eq!(user_sum(&fed), 100 * 5 * 50);
    }

    #[test]
    fn standby_replica_aborts_a_partially_prepared_in_doubt_transaction() {
        // The incumbent dies right after replicating the FIRST prepare
        // vote: site 1 is prepared and in doubt, site 2 never saw a
        // prepare. A standby surveys the acceptors — instance 2 is free,
        // so presume-abort — and finishes the transaction itself.
        let fed = paxos_loaded(3, 3, "standby-abort");
        fed.inject_coordinator_crash_after_votes(1);
        let err = fed.run_transaction(&transfer(1, 2, 30)).unwrap_err();
        assert!(matches!(err, AmcError::InvalidState(_)), "{err}");
        let finished = fed.replica_driver(7).run_once().unwrap();
        assert_eq!(finished, vec![(GlobalTxnId::new(1), GlobalVerdict::Abort)]);
        assert_eq!(user_sum(&fed), 100 * 3 * 50);
        // Nothing stays wedged: the prepared site released its locks, so
        // the same accounts accept the next transfer.
        let report = fed.run_transaction(&transfer(1, 2, 30)).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed);
        assert_eq!(user_sum(&fed), 100 * 3 * 50);
    }

    #[test]
    fn standby_replica_commits_a_fully_replicated_in_doubt_transaction() {
        // The incumbent dies after BOTH prepare votes were replicated:
        // every instance already chose Prepared at a majority, so the
        // standby must conclude commit — aborting here would contradict
        // the replicated decision.
        let fed = paxos_loaded(3, 3, "standby-commit");
        fed.inject_coordinator_crash_after_votes(2);
        let err = fed.run_transaction(&transfer(1, 2, 30)).unwrap_err();
        assert!(matches!(err, AmcError::InvalidState(_)), "{err}");
        let finished = fed.replica_driver(7).run_once().unwrap();
        assert_eq!(finished, vec![(GlobalTxnId::new(1), GlobalVerdict::Commit)]);
        // Exactly-once: the transfer shows on both sides, once.
        let dumps = fed.dumps().unwrap();
        assert_eq!(dumps[&site(1)][&obj(1, 0)], v(70));
        assert_eq!(dumps[&site(2)][&obj(2, 0)], v(130));
        assert_eq!(user_sum(&fed), 100 * 3 * 50);
        // And the group remembers: a second standby sweep finds nothing.
        assert!(fed.replica_driver(8).run_once().unwrap().is_empty());
    }

    fn fast_loaded(sites: u32) -> Arc<Federation> {
        let cfg = FederationConfig::uniform(sites, ProtocolKind::TwoPhaseCommit).with_fast_path();
        let fed = Federation::new(cfg);
        for s in 1..=sites {
            let data: Vec<(ObjectId, Value)> = (0..50).map(|i| (obj(s, i), v(100))).collect();
            fed.load_site(site(s), &data).unwrap();
        }
        Arc::new(fed)
    }

    #[test]
    fn fast_path_piggyback_saves_the_prepare_round() {
        let classic = loaded(ProtocolKind::TwoPhaseCommit, 2);
        let classic_report = classic.run_transaction(&transfer(1, 2, 30)).unwrap();
        let fast = fast_loaded(2);
        let fast_report = fast.run_transaction(&transfer(1, 2, 30)).unwrap();
        assert_eq!(fast_report.outcome, TxnOutcome::Committed);
        let dumps = fast.dumps().unwrap();
        assert_eq!(dumps[&site(1)][&obj(1, 0)], v(70));
        assert_eq!(dumps[&site(2)][&obj(2, 0)], v(130));
        // Classic 2PC: work + prepare + decision = 3 rounds × 2 sites × 2
        // legs = 12. Piggyback folds prepare into work: 8 — one round trip
        // per site saved.
        assert_eq!(classic_report.messages, 12);
        assert_eq!(fast_report.messages, 8);
    }

    #[test]
    fn fast_path_single_site_commits_with_no_global_round() {
        let classic = loaded(ProtocolKind::TwoPhaseCommit, 1);
        let program = BTreeMap::from([(
            site(1),
            vec![Operation::Increment {
                obj: obj(1, 0),
                delta: 5,
            }],
        )]);
        let classic_report = classic.run_transaction(&program).unwrap();
        let fast = fast_loaded(1);
        let report = fast.run_transaction(&program).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed);
        assert_eq!(fast.dumps().unwrap()[&site(1)][&obj(1, 0)], v(105));
        // One exchange total: the combined dispatch and its vote-reply.
        assert_eq!(report.messages, 2);
        assert_eq!(classic_report.messages, 6);
    }

    #[test]
    fn fast_path_abort_vote_leaves_no_net_effect() {
        let fed = fast_loaded(2);
        let mut program = transfer(1, 2, 30);
        program.get_mut(&site(2)).unwrap().push(Operation::Read {
            obj: obj(2, 999_999),
        });
        let report = fed.run_transaction(&program).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Aborted);
        // Site 1's piggybacked prepare must have seen the abort decision.
        assert_eq!(user_sum(&fed), 100 * 2 * 50);
        assert_eq!(fed.dumps().unwrap()[&site(1)][&obj(1, 0)], v(100));
    }

    #[test]
    fn fast_path_single_site_lost_reply_presumes_abort_and_owes_an_undo() {
        let cfg = FederationConfig::uniform(2, ProtocolKind::TwoPhaseCommit).with_fast_path();
        let (fed, transport) = flaky_with(cfg);
        transport.down.lock().insert(site(1));
        let program = BTreeMap::from([(
            site(1),
            vec![Operation::Increment {
                obj: obj(1, 0),
                delta: 5,
            }],
        )]);
        let report = fed.run_transaction(&program).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Aborted);
        assert_eq!(fed.pending_obligations(), 1);
        // The site recovers; the undo obligation lands and the presumed
        // abort becomes fact (the site never committed, so the undo is a
        // no-op guarded by its journal).
        transport.down.lock().remove(&site(1));
        assert_eq!(fed.resolve_pending().unwrap(), 1);
        assert_eq!(user_sum(&fed), 100 * 2 * 50);
        // The same program now commits in one exchange.
        let report = fed.run_transaction(&program).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed);
        assert_eq!(report.messages, 2);
        assert_eq!(fed.dumps().unwrap()[&site(1)][&obj(1, 0)], v(105));
    }

    #[test]
    fn fast_path_down_voter_forces_abort_and_the_prepared_site_learns_it() {
        let cfg = FederationConfig::uniform(2, ProtocolKind::TwoPhaseCommit).with_fast_path();
        let (fed, transport) = flaky_with(cfg);
        transport.down.lock().insert(site(2));
        let report = fed.run_transaction(&transfer(1, 2, 30)).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Aborted);
        // Site 1 holds a piggybacked prepare and was told to abort in the
        // decision round; site 2 is owed the abort it never heard.
        assert_eq!(fed.pending_obligations(), 1);
        transport.down.lock().remove(&site(2));
        assert_eq!(fed.resolve_pending().unwrap(), 1);
        assert_eq!(user_sum(&fed), 100 * 2 * 50);
        let report = fed.run_transaction(&transfer(1, 2, 30)).unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed);
    }

    #[test]
    fn fast_path_concurrent_transfers_preserve_the_invariant() {
        let fed = fast_loaded(3);
        let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> = (0..60)
            .map(|i| {
                if i % 2 == 0 {
                    // Single-site: exercises the bypass under concurrency.
                    let s = 1 + (i % 3) as u32;
                    (
                        BTreeMap::from([(
                            site(s),
                            vec![Operation::Increment {
                                obj: obj(s, 1),
                                delta: 0,
                            }],
                        )]),
                        false,
                    )
                } else {
                    let a = 1 + (i % 3) as u32;
                    let b = 1 + ((i + 1) % 3) as u32;
                    (transfer(a, b, 1 + (i % 7) as i64), false)
                }
            })
            .collect();
        let metrics = fed.run_concurrent(programs, 4);
        assert_eq!(metrics.committed, 60, "{metrics:?}");
        assert_eq!(user_sum(&fed), 100 * 3 * 50);
        fed.history()
            .check_serializable(amc_verify::history::ConflictDefinition::Commutativity)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    #[test]
    fn commit_before_uses_fewest_messages_on_the_commit_path() {
        let mut counts = BTreeMap::new();
        for protocol in ProtocolKind::ALL {
            let fed = loaded(protocol, 2);
            let report = fed.run_transaction(&transfer(1, 2, 5)).unwrap();
            counts.insert(protocol.label(), report.messages);
        }
        // E4's shape: commit-before (4: 2×submit/vote) < commit-after (8)
        // < 2PC (12: work + prepare + decision rounds).
        assert!(counts["commit-before"] < counts["commit-after"]);
        assert!(counts["commit-after"] < counts["2pc"]);
    }

    #[test]
    fn concurrent_transfers_preserve_the_invariant() {
        for protocol in ProtocolKind::ALL {
            let fed = loaded(protocol, 3);
            let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> = (0..60)
                .map(|i| {
                    let a = 1 + (i % 3) as u32;
                    let b = 1 + ((i + 1) % 3) as u32;
                    (transfer(a, b, 1 + (i % 7) as i64), false)
                })
                .collect();
            let metrics = fed.run_concurrent(programs, 4);
            assert_eq!(metrics.committed, 60, "{protocol}: {metrics:?}");
            // Money conservation across the federation.
            assert_eq!(user_sum(&fed), 100 * 3 * 50, "{protocol}");
            // Oracle: conflict-serializable.
            fed.history()
                .check_serializable(ConflictDefinition::Commutativity)
                .unwrap_or_else(|e| panic!("{protocol}: {e}"));
        }
    }

    #[test]
    fn history_and_equivalence_oracle_pass_end_to_end() {
        let fed = loaded(ProtocolKind::CommitBefore, 2);
        let initial: BTreeMap<ObjectId, Value> = (1..=2u32)
            .flat_map(|s| (0..50).map(move |i| (obj(s, i), v(100))))
            .collect();
        let mut programs_by_gtx: BTreeMap<GlobalTxnId, Vec<Operation>> = BTreeMap::new();
        for i in 0..20 {
            let p = transfer(1, 2, i % 5);
            let report = fed.run_transaction(&p).unwrap();
            assert_eq!(report.outcome, TxnOutcome::Committed);
            let gtx = GlobalTxnId::new(i as u64 + 1);
            programs_by_gtx.insert(gtx, p.values().flatten().copied().collect());
        }
        let history = fed.history();
        let order = history
            .check_serializable(ConflictDefinition::Commutativity)
            .unwrap();
        let merged: BTreeMap<ObjectId, Value> = fed
            .dumps()
            .unwrap()
            .into_values()
            .flat_map(|d| d.into_iter())
            .collect();
        let divergences =
            amc_verify::check_state_equivalence(&initial, &order, &programs_by_gtx, &merged);
        assert!(divergences.is_empty(), "{divergences:?}");
    }

    #[test]
    fn fig8_interleaving_commits_under_commit_before_semantic_locks() {
        // Two global increments on the same objects, concurrently: must
        // both commit without L1 rejections under the semantic policy.
        let fed = loaded(ProtocolKind::CommitBefore, 2);
        let programs = vec![(transfer(1, 2, 3), false); 20];
        let metrics = fed.run_concurrent(programs, 8);
        assert_eq!(metrics.committed, 20);
        assert_eq!(metrics.l1_rejections, 0, "increments never conflict at L1");
    }

    #[test]
    fn run_concurrent_drains_programs_in_submission_order() {
        // Regression: the work queue was drained LIFO (`Vec::pop`), so the
        // last-submitted program ran first. With one worker thread the
        // execution order is exactly the drain order; make each program
        // overwrite the same object and require the *last submitted* write
        // to be the survivor.
        let fed = loaded(ProtocolKind::CommitBefore, 1);
        let n = 12i64;
        let programs: Vec<(BTreeMap<SiteId, Vec<Operation>>, bool)> = (0..n)
            .map(|i| {
                (
                    BTreeMap::from([(
                        site(1),
                        vec![Operation::Write {
                            obj: obj(1, 0),
                            value: v(1000 + i),
                        }],
                    )]),
                    false,
                )
            })
            .collect();
        let metrics = fed.run_concurrent(programs, 1);
        assert_eq!(metrics.committed, n as u64);
        assert_eq!(
            fed.dumps().unwrap()[&site(1)][&obj(1, 0)],
            v(1000 + n - 1),
            "FIFO: the last-submitted write must win"
        );
    }

    #[test]
    fn message_delay_applies_to_both_legs() {
        // Regression: only the request leg slept, so a transaction of n
        // modelled hops cost n/2 delays. Every hop must pay.
        let delay = Duration::from_millis(4);
        let mut cfg = FederationConfig::uniform(1, ProtocolKind::CommitBefore);
        cfg.message_delay = delay;
        let fed = Federation::new(cfg);
        fed.load_site(site(1), &[(obj(1, 0), v(100))]).unwrap();
        let report = fed
            .run_transaction(&BTreeMap::from([(
                site(1),
                vec![Operation::Increment {
                    obj: obj(1, 0),
                    delta: 1,
                }],
            )]))
            .unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed);
        assert!(
            report.latency >= delay * report.messages as u32,
            "latency {:?} must cover {} hops × {:?}",
            report.latency,
            report.messages,
            delay
        );
    }

    #[test]
    fn trace_respects_star_topology() {
        let fed = loaded(ProtocolKind::CommitAfter, 2);
        fed.run_transaction(&transfer(1, 2, 1)).unwrap();
        for entry in fed.trace().entries() {
            assert!(entry.envelope.respects_star_topology());
        }
    }

    #[test]
    #[should_panic(expected = "2PC cannot run")]
    fn two_pc_panics_on_heterogeneous_federation() {
        Federation::new(FederationConfig::heterogeneous(
            2,
            ProtocolKind::TwoPhaseCommit,
        ));
    }

    #[test]
    fn heterogeneous_federation_works_under_portable_protocols() {
        for protocol in [ProtocolKind::CommitAfter, ProtocolKind::CommitBefore] {
            let cfg = FederationConfig::heterogeneous(2, protocol);
            let fed = Federation::new(cfg);
            for s in 1..=2u32 {
                let data: Vec<(ObjectId, Value)> = (0..10).map(|i| (obj(s, i), v(100))).collect();
                fed.load_site(site(s), &data).unwrap();
            }
            let fed = Arc::new(fed);
            let report = fed.run_transaction(&transfer(1, 2, 9)).unwrap();
            assert_eq!(report.outcome, TxnOutcome::Committed, "{protocol}");
            let dumps = fed.dumps().unwrap();
            assert_eq!(dumps[&site(2)][&obj(2, 0)], v(109));
        }
    }
}
