//! Database values.
//!
//! The paper's semantic-conflict machinery (Fig. 8, §4.1) is built around
//! *commuting increments* on counter objects. [`Value`] therefore carries a
//! signed 64-bit counter as its primary payload, plus an optional small tag
//! that workloads use to stamp records (customer ids, flight numbers, ...).
//! The tag takes part in equality but not in arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A stored database value: a counter plus an opaque tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Value {
    /// Counter payload; the target of `Increment` operations.
    pub counter: i64,
    /// Opaque record tag (0 when unused). Overwritten by `Write`/`Insert`,
    /// untouched by `Increment`.
    pub tag: u32,
}

impl Value {
    /// A zero counter with no tag.
    pub const ZERO: Value = Value { counter: 0, tag: 0 };

    /// A plain counter value.
    #[inline]
    pub const fn counter(counter: i64) -> Self {
        Value { counter, tag: 0 }
    }

    /// A tagged record value.
    #[inline]
    pub const fn tagged(counter: i64, tag: u32) -> Self {
        Value { counter, tag }
    }

    /// The value after applying an increment of `delta`.
    ///
    /// Uses wrapping arithmetic: increments must stay total so that the
    /// inverse action (`Increment(-delta)`) is always an exact undo, which is
    /// the property the commit-before protocol leans on (§3.3).
    #[inline]
    #[must_use]
    pub fn incremented(self, delta: i64) -> Self {
        Value {
            counter: self.counter.wrapping_add(delta),
            tag: self.tag,
        }
    }

    /// Serialize to a fixed 12-byte little-endian representation.
    ///
    /// The storage engine stores values inside page slots; a fixed layout
    /// keeps slot bookkeeping trivial and checksums stable.
    #[inline]
    pub fn to_bytes(self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[..8].copy_from_slice(&self.counter.to_le_bytes());
        out[8..].copy_from_slice(&self.tag.to_le_bytes());
        out
    }

    /// Deserialize from the fixed 12-byte representation.
    #[inline]
    pub fn from_bytes(bytes: &[u8; 12]) -> Self {
        let mut c = [0u8; 8];
        c.copy_from_slice(&bytes[..8]);
        let mut t = [0u8; 4];
        t.copy_from_slice(&bytes[8..]);
        Value {
            counter: i64::from_le_bytes(c),
            tag: u32::from_le_bytes(t),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::ZERO
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tag == 0 {
            write!(f, "{}", self.counter)
        } else {
            write!(f, "{}#{}", self.counter, self.tag)
        }
    }
}

impl From<i64> for Value {
    fn from(counter: i64) -> Self {
        Value::counter(counter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn increment_touches_counter_only() {
        let v = Value::tagged(10, 77);
        let w = v.incremented(-3);
        assert_eq!(w.counter, 7);
        assert_eq!(w.tag, 77);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::counter(5).to_string(), "5");
        assert_eq!(Value::tagged(5, 9).to_string(), "5#9");
    }

    #[test]
    fn byte_roundtrip_fixed_cases() {
        for v in [
            Value::ZERO,
            Value::counter(i64::MAX),
            Value::counter(i64::MIN),
            Value::tagged(-1, u32::MAX),
        ] {
            assert_eq!(Value::from_bytes(&v.to_bytes()), v);
        }
    }

    proptest! {
        #[test]
        fn byte_roundtrip(counter in any::<i64>(), tag in any::<u32>()) {
            let v = Value { counter, tag };
            prop_assert_eq!(Value::from_bytes(&v.to_bytes()), v);
        }

        /// Increment followed by its inverse is the identity — the algebraic
        /// heart of commit-before undo (§3.3).
        #[test]
        fn increment_has_exact_inverse(counter in any::<i64>(), tag in any::<u32>(), delta in any::<i64>()) {
            let v = Value { counter, tag };
            prop_assert_eq!(v.incremented(delta).incremented(delta.wrapping_neg()), v);
        }

        /// Increments commute — the Fig. 8 property that makes the L1
        /// increment lock mode compatible with itself.
        #[test]
        fn increments_commute(counter in any::<i64>(), a in any::<i64>(), b in any::<i64>()) {
            let v = Value::counter(counter);
            prop_assert_eq!(v.incremented(a).incremented(b), v.incremented(b).incremented(a));
        }
    }
}
