//! # amc-types
//!
//! Shared vocabulary for the AMC federation — the reproduction of
//! Muth & Rakow, *Atomic Commitment for Integrated Database Systems*
//! (ICDE 1991).
//!
//! Every other crate in the workspace builds on the identifiers, values,
//! operations, error taxonomy and transaction-state enums defined here.
//! The crate is deliberately dependency-light (only `serde`) so that it can
//! sit at the bottom of the layering described in `DESIGN.md`:
//!
//! ```text
//! types → {storage, lock, sim} → wal → engine → {net, mlt} → core → ...
//! ```
//!
//! ## Conventions
//!
//! * All identifiers are **newtypes** over integers ([`SiteId`],
//!   [`GlobalTxnId`], [`LocalTxnId`], [`ObjectId`], [`PageId`], [`Lsn`]).
//!   They never implicitly convert into one another; mixing up a local and a
//!   global transaction id is a compile error, not a 3 a.m. debugging
//!   session.
//! * Database values are modelled as [`Value`] — a signed 64-bit counter plus
//!   a small tag payload. Counters are what the paper's running example
//!   (commuting increments, Fig. 8) needs, and the tag lets workloads store
//!   record-ish data without dragging a full type system into every crate.
//! * Time inside the deterministic simulator is [`SimTime`] /
//!   [`SimDuration`]: logical microseconds, fully ordered, no wall clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod op;
pub mod state;
pub mod time;
pub mod value;

pub use error::{AbortReason, AmcError, AmcResult};
pub use ids::{GlobalTxnId, LocalTxnId, Lsn, ObjectId, PageId, SiteId};
pub use op::{OpResult, Operation};
pub use state::{GlobalPhase, GlobalVerdict, LocalRunState, LocalVote, ProtocolKind};
pub use time::{SimDuration, SimTime};
pub use value::Value;
