//! Transaction state enums shared between the protocol state machines and
//! the trace/verification tooling.
//!
//! These mirror the state diagrams of Figs. 2, 4 and 6 in the paper. The
//! actual transition logic lives in `amc-core`; keeping the state names here
//! lets `amc-verify` and the golden-trace tests speak the same language
//! without depending on the protocol implementations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which commit protocol a federation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Classic two-phase commit — requires *modified* local transaction
    /// managers exposing a ready state (§3.1). Baseline.
    TwoPhaseCommit,
    /// Local commitment **after** the global decision (§3.2): redo-log +
    /// additional global concurrency control.
    CommitAfter,
    /// Local commitment **before** the global decision (§3.3): undo via
    /// inverse transactions; pairs with multi-level transactions (§4).
    CommitBefore,
}

impl ProtocolKind {
    /// All protocols, in paper order. Handy for sweeps.
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::TwoPhaseCommit,
        ProtocolKind::CommitAfter,
        ProtocolKind::CommitBefore,
    ];

    /// Short label used in reports and bench ids.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::TwoPhaseCommit => "2pc",
            ProtocolKind::CommitAfter => "commit-after",
            ProtocolKind::CommitBefore => "commit-before",
        }
    }

    /// Whether the protocol requires local engines to expose a ready state
    /// (i.e. requires *modifying* existing transaction managers — the thing
    /// the paper says is infeasible for integration).
    pub fn requires_ready_state(&self) -> bool {
        matches!(self, ProtocolKind::TwoPhaseCommit)
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Phase of a *global* transaction, superset of the global states in
/// Figs. 2, 4 and 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlobalPhase {
    /// Executing its decomposed local transactions.
    Running,
    /// Sent `prepare`, collecting votes ("inquire" in the figures).
    Inquiring,
    /// Decision made: commit; waiting for locals to finish committing
    /// ("waiting to commit", Figs. 2/4).
    WaitingToCommit,
    /// Decision made: abort; waiting for locals to finish aborting/undoing
    /// ("waiting to abort", Fig. 6).
    WaitingToAbort,
    /// Terminal: globally committed.
    Committed,
    /// Terminal: globally aborted.
    Aborted,
}

impl GlobalPhase {
    /// True for the two terminal phases.
    pub fn is_terminal(&self) -> bool {
        matches!(self, GlobalPhase::Committed | GlobalPhase::Aborted)
    }
}

impl fmt::Display for GlobalPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GlobalPhase::Running => "running",
            GlobalPhase::Inquiring => "inquiring",
            GlobalPhase::WaitingToCommit => "waiting-to-commit",
            GlobalPhase::WaitingToAbort => "waiting-to-abort",
            GlobalPhase::Committed => "committed",
            GlobalPhase::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

/// The global decision, once made.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GlobalVerdict {
    /// All votes were yes: commit everywhere.
    Commit,
    /// At least one no/abort: abort everywhere.
    Abort,
}

impl fmt::Display for GlobalVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            GlobalVerdict::Commit => "commit",
            GlobalVerdict::Abort => "abort",
        })
    }
}

/// A participant's vote on `prepare`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalVote {
    /// Ready to follow either global decision (2PC: in the ready state;
    /// commit-after: finished all actions but still *running*;
    /// commit-before: already locally **committed**).
    Ready,
    /// Ready, and the local transaction performed no updates: the classic
    /// read-only optimization — the participant commits immediately and
    /// drops out of the rest of the protocol (cf. the derived 2PC
    /// protocols the paper surveys in §5).
    ReadyReadOnly,
    /// Locally aborted / unable to commit.
    Aborted,
}

impl LocalVote {
    /// Whether the vote lets the global transaction proceed to commit.
    pub fn is_yes(&self) -> bool {
        !matches!(self, LocalVote::Aborted)
    }

    /// Whether the participant has dropped out of the decision round.
    pub fn is_read_only(&self) -> bool {
        matches!(self, LocalVote::ReadyReadOnly)
    }
}

/// Run-state of one local execution attempt, as observed through the
/// unmodifiable `begin/commit/abort` interface (plus `ready` for the 2PC
/// baseline's modified engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalRunState {
    /// Actions are executing (or done, but commit not yet requested).
    Running,
    /// 2PC only: prepared, changes on stable storage, can go either way.
    Ready,
    /// Terminal for the attempt: committed.
    Committed,
    /// Terminal for the attempt: aborted.
    Aborted,
}

impl LocalRunState {
    /// Legal transitions of the *unmodified* engine interface: Running may
    /// go to Committed or Aborted, and nothing leaves a terminal state.
    /// `Ready` is reachable only on preparable (modified) engines.
    pub fn can_transition_to(&self, next: LocalRunState) -> bool {
        use LocalRunState::*;
        matches!(
            (self, next),
            (Running, Ready)
                | (Running, Committed)
                | (Running, Aborted)
                | (Ready, Committed)
                | (Ready, Aborted)
        )
    }
}

impl fmt::Display for LocalRunState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocalRunState::Running => "running",
            LocalRunState::Ready => "ready",
            LocalRunState::Committed => "committed",
            LocalRunState::Aborted => "aborted",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_labels_are_stable() {
        assert_eq!(ProtocolKind::TwoPhaseCommit.label(), "2pc");
        assert_eq!(ProtocolKind::CommitAfter.label(), "commit-after");
        assert_eq!(ProtocolKind::CommitBefore.label(), "commit-before");
    }

    #[test]
    fn only_2pc_needs_ready_state() {
        assert!(ProtocolKind::TwoPhaseCommit.requires_ready_state());
        assert!(!ProtocolKind::CommitAfter.requires_ready_state());
        assert!(!ProtocolKind::CommitBefore.requires_ready_state());
    }

    #[test]
    fn terminal_phases() {
        assert!(GlobalPhase::Committed.is_terminal());
        assert!(GlobalPhase::Aborted.is_terminal());
        assert!(!GlobalPhase::Inquiring.is_terminal());
        assert!(!GlobalPhase::WaitingToAbort.is_terminal());
    }

    #[test]
    fn local_state_machine_shape() {
        use LocalRunState::*;
        // Atomic running→committed transition of unmodified engines (§3.1:
        // "the state transition from running to committed is atomic").
        assert!(Running.can_transition_to(Committed));
        assert!(Running.can_transition_to(Aborted));
        // 2PC's interruptible commit path.
        assert!(Running.can_transition_to(Ready));
        assert!(Ready.can_transition_to(Committed));
        assert!(Ready.can_transition_to(Aborted));
        // Terminal states are terminal.
        assert!(!Committed.can_transition_to(Running));
        assert!(!Committed.can_transition_to(Aborted));
        assert!(!Aborted.can_transition_to(Committed));
        // No skipping backwards.
        assert!(!Ready.can_transition_to(Running));
    }
}
