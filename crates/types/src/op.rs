//! Logical operations — the L1 action algebra.
//!
//! A global transaction is decomposed into per-site lists of [`Operation`]s
//! (§2 of the paper). The same enum doubles as the vocabulary of the
//! multi-level transaction model (§4.1): `amc-mlt` assigns each variant an L1
//! lock mode and an inverse action.

use crate::ids::ObjectId;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single logical action against one database object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operation {
    /// Read the object's current value. Fails if the object does not exist.
    Read {
        /// Target object.
        obj: ObjectId,
    },
    /// Overwrite the object's value. Fails if the object does not exist.
    Write {
        /// Target object.
        obj: ObjectId,
        /// New value.
        value: Value,
    },
    /// Add `delta` to the object's counter (Fig. 8's `Incr`). Commutes with
    /// other increments on the same object. Fails if the object does not
    /// exist.
    Increment {
        /// Target object.
        obj: ObjectId,
        /// Signed amount to add.
        delta: i64,
    },
    /// Create the object with an initial value. Fails if it already exists.
    Insert {
        /// Target object.
        obj: ObjectId,
        /// Initial value.
        value: Value,
    },
    /// Remove the object. Fails if it does not exist.
    Delete {
        /// Target object.
        obj: ObjectId,
    },
    /// Escrow-style conditional decrement (VODAK-style method semantics,
    /// §4.1/§6: "less restrictive conflict relations between operations
    /// than read/write conflicts"): subtract `amount` from the counter,
    /// failing if the counter would drop below zero. Reserves commute with
    /// reserves: every *successful* pair yields the same state in either
    /// order, and the bound check is enforced atomically by the engine.
    Reserve {
        /// Target object.
        obj: ObjectId,
        /// Units to take from escrow (must be > 0).
        amount: u64,
    },
}

impl Operation {
    /// The object this operation touches.
    #[inline]
    pub fn object(&self) -> ObjectId {
        match *self {
            Operation::Read { obj }
            | Operation::Write { obj, .. }
            | Operation::Increment { obj, .. }
            | Operation::Insert { obj, .. }
            | Operation::Delete { obj }
            | Operation::Reserve { obj, .. } => obj,
        }
    }

    /// Whether the operation can change database state.
    #[inline]
    pub fn is_update(&self) -> bool {
        !matches!(self, Operation::Read { .. })
    }

    /// Whether two operations *generally commute* in the paper's sense
    /// (§4.1): they commute iff for **every** database state, applying them
    /// in either order yields the same state *and* the same results.
    ///
    /// The table is conservative and purely syntactic:
    ///
    /// * operations on different objects always commute;
    /// * `Read`/`Read` commute;
    /// * `Increment`/`Increment` commute (wrapping addition is commutative
    ///   and neither observes the value);
    /// * everything else on the same object conflicts.
    pub fn commutes_with(&self, other: &Operation) -> bool {
        if self.object() != other.object() {
            return true;
        }
        matches!(
            (self, other),
            (Operation::Read { .. }, Operation::Read { .. })
                | (Operation::Increment { .. }, Operation::Increment { .. })
                | (Operation::Reserve { .. }, Operation::Reserve { .. })
        )
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Read { obj } => write!(f, "R({obj})"),
            Operation::Write { obj, value } => write!(f, "W({obj},{value})"),
            Operation::Increment { obj, delta } => write!(f, "Incr({obj},{delta:+})"),
            Operation::Insert { obj, value } => write!(f, "Ins({obj},{value})"),
            Operation::Delete { obj } => write!(f, "Del({obj})"),
            Operation::Reserve { obj, amount } => write!(f, "Rsv({obj},{amount})"),
        }
    }
}

/// The result of executing one [`Operation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpResult {
    /// `Read` returning the observed value.
    Value(Value),
    /// An update that succeeded without producing a value.
    Done,
}

impl OpResult {
    /// The value carried by a `Read` result, if any.
    #[inline]
    pub fn value(&self) -> Option<Value> {
        match self {
            OpResult::Value(v) => Some(*v),
            OpResult::Done => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }

    #[test]
    fn different_objects_always_commute() {
        let a = Operation::Write {
            obj: obj(1),
            value: Value::counter(1),
        };
        let b = Operation::Delete { obj: obj(2) };
        assert!(a.commutes_with(&b));
        assert!(b.commutes_with(&a));
    }

    #[test]
    fn increments_commute_on_same_object() {
        let a = Operation::Increment {
            obj: obj(1),
            delta: 3,
        };
        let b = Operation::Increment {
            obj: obj(1),
            delta: -5,
        };
        assert!(a.commutes_with(&b));
    }

    #[test]
    fn reads_commute_writes_do_not() {
        let r1 = Operation::Read { obj: obj(1) };
        let r2 = Operation::Read { obj: obj(1) };
        let w = Operation::Write {
            obj: obj(1),
            value: Value::ZERO,
        };
        assert!(r1.commutes_with(&r2));
        assert!(!r1.commutes_with(&w));
        assert!(!w.commutes_with(&r1));
    }

    #[test]
    fn increment_conflicts_with_read_and_write() {
        let i = Operation::Increment {
            obj: obj(1),
            delta: 1,
        };
        let r = Operation::Read { obj: obj(1) };
        let w = Operation::Write {
            obj: obj(1),
            value: Value::ZERO,
        };
        assert!(!i.commutes_with(&r));
        assert!(!i.commutes_with(&w));
    }

    #[test]
    fn reserves_commute_with_reserves_only() {
        let r1 = Operation::Reserve {
            obj: obj(1),
            amount: 2,
        };
        let r2 = Operation::Reserve {
            obj: obj(1),
            amount: 5,
        };
        let i = Operation::Increment {
            obj: obj(1),
            delta: 1,
        };
        let rd = Operation::Read { obj: obj(1) };
        assert!(r1.commutes_with(&r2));
        assert!(!r1.commutes_with(&i), "restock sees/changes the bound");
        assert!(!r1.commutes_with(&rd));
        assert!(r1.is_update());
        assert_eq!(r1.to_string(), "Rsv(obj-1,2)");
    }

    #[test]
    fn insert_delete_conflict() {
        let ins = Operation::Insert {
            obj: obj(1),
            value: Value::ZERO,
        };
        let del = Operation::Delete { obj: obj(1) };
        assert!(!ins.commutes_with(&del));
    }

    #[test]
    fn commutativity_is_symmetric_over_table() {
        let ops = [
            Operation::Read { obj: obj(1) },
            Operation::Write {
                obj: obj(1),
                value: Value::ZERO,
            },
            Operation::Increment {
                obj: obj(1),
                delta: 2,
            },
            Operation::Insert {
                obj: obj(1),
                value: Value::ZERO,
            },
            Operation::Delete { obj: obj(1) },
            Operation::Reserve {
                obj: obj(1),
                amount: 1,
            },
        ];
        for a in &ops {
            for b in &ops {
                assert_eq!(
                    a.commutes_with(b),
                    b.commutes_with(a),
                    "asymmetry between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            Operation::Increment {
                obj: obj(3),
                delta: 1
            }
            .to_string(),
            "Incr(obj-3,+1)"
        );
        assert_eq!(Operation::Read { obj: obj(3) }.to_string(), "R(obj-3)");
    }

    #[test]
    fn is_update_classification() {
        assert!(!Operation::Read { obj: obj(1) }.is_update());
        assert!(Operation::Delete { obj: obj(1) }.is_update());
    }
}
