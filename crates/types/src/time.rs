//! Logical time for the deterministic simulator.
//!
//! The discrete-event kernel (`amc-sim`) advances a virtual clock measured
//! in **logical microseconds**. Nothing in the workspace reads the wall
//! clock during simulation; determinism of protocol traces and crash
//! schedules depends on it.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulator's virtual clock (logical microseconds since
/// simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimTime(pub u64);

/// A span of virtual time (logical microseconds).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw microsecond count.
    #[inline]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Saturating distance to an earlier instant.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Raw microsecond count.
    #[inline]
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds (for reports).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::ZERO + SimDuration::from_millis(2);
        assert_eq!(t.micros(), 2_000);
        assert_eq!(t - SimTime(500), SimDuration(1_500));
        assert_eq!(t.since(SimTime(500)).micros(), 1_500);
        // Saturation rather than wraparound when subtracting a later time.
        assert_eq!(SimTime(5).since(SimTime(10)), SimDuration::ZERO);
    }

    #[test]
    fn duration_accumulates() {
        let mut d = SimDuration::ZERO;
        d += SimDuration::from_micros(250);
        d += SimDuration::from_micros(750);
        assert_eq!(d.micros(), 1_000);
        assert!((d.as_millis_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn displays() {
        assert_eq!(SimTime(42).to_string(), "t+42us");
        assert_eq!(SimDuration(7).to_string(), "7us");
    }
}
