//! Newtype identifiers used across the federation.
//!
//! Each id is a transparent wrapper over an unsigned integer with `Display`,
//! ordering and hashing. The `raw` accessor is provided for indexing into
//! dense arrays; arithmetic between different id spaces is intentionally
//! impossible.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub $inner);

        impl $name {
            /// Construct from the raw integer.
            #[inline]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// The raw integer, e.g. for indexing dense per-id tables.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// A participating site. Site `0` is conventionally the central system
    /// (Fig. 1 of the paper); local database systems are `1..=n`.
    SiteId,
    u32,
    "site-"
);

define_id!(
    /// A global (level L1) transaction, issued by the central system.
    GlobalTxnId,
    u64,
    "G"
);

define_id!(
    /// A local (level L0) transaction, executed by one existing database
    /// system. Every execution attempt gets a fresh id: a *repetition*
    /// (commit-after redo) or an *inverse transaction* (commit-before undo)
    /// is a new `LocalTxnId` in the same [`GlobalTxnId`].
    LocalTxnId,
    u64,
    "L"
);

define_id!(
    /// A logical database object (the unit of L1 conflict detection, e.g.
    /// a counter `x` in Fig. 8). Objects map many-to-one onto pages.
    ObjectId,
    u64,
    "obj-"
);

define_id!(
    /// A storage page (the unit of L0 physical access and buffering).
    PageId,
    u32,
    "page-"
);

define_id!(
    /// Log sequence number within one site's write-ahead log.
    Lsn,
    u64,
    "lsn-"
);

impl Lsn {
    /// The LSN before any record has been written.
    pub const ZERO: Lsn = Lsn(0);

    /// The next LSN in sequence.
    #[inline]
    pub const fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl SiteId {
    /// The central (global) system's site id.
    pub const CENTRAL: SiteId = SiteId(0);

    /// True for the central coordinator site.
    #[inline]
    pub const fn is_central(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(SiteId::new(3).to_string(), "site-3");
        assert_eq!(GlobalTxnId::new(7).to_string(), "G7");
        assert_eq!(LocalTxnId::new(9).to_string(), "L9");
        assert_eq!(ObjectId::new(1).to_string(), "obj-1");
        assert_eq!(PageId::new(2).to_string(), "page-2");
        assert_eq!(Lsn::new(4).to_string(), "lsn-4");
    }

    #[test]
    fn ids_roundtrip_raw() {
        assert_eq!(SiteId::from(5).raw(), 5);
        assert_eq!(GlobalTxnId::from(12).raw(), 12);
    }

    #[test]
    fn ids_order_and_hash() {
        assert!(Lsn::new(1) < Lsn::new(2));
        let set: HashSet<ObjectId> = [ObjectId::new(1), ObjectId::new(1), ObjectId::new(2)]
            .into_iter()
            .collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn lsn_next_is_monotone() {
        let l = Lsn::ZERO;
        assert_eq!(l.next(), Lsn::new(1));
        assert_eq!(l.next().next(), Lsn::new(2));
    }

    #[test]
    fn central_site_is_zero() {
        assert!(SiteId::CENTRAL.is_central());
        assert!(!SiteId::new(1).is_central());
    }
}
