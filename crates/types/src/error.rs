//! Error taxonomy.
//!
//! The protocols in `amc-core` care a great deal about *why* a local
//! transaction aborted: an **intended** abort (transaction logic, e.g. an
//! application `abort` call or a failed existence check) must propagate to a
//! global abort, while an **erroneous** abort (deadlock victim, lock
//! timeout, OCC validation failure, site crash — §3.2's list) is repaired by
//! repetition under commit-after. [`AbortReason::is_erroneous`] encodes that
//! split.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a local transaction aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// The transaction's own logic requested the abort (e.g. a business rule
    /// failed). Deterministic: repeating the transaction would abort again.
    Intended,
    /// Chosen as a deadlock victim by the local lock manager.
    Deadlock,
    /// A lock request timed out.
    LockTimeout,
    /// An optimistic scheduler's validation phase failed.
    ValidationFailed,
    /// The site crashed while the transaction was active; local restart
    /// recovery rolled it back.
    SiteCrash,
    /// The global coordinator decided to abort (only meaningful for global
    /// transactions).
    GlobalDecision,
    /// Injected by a failure schedule in the simulator.
    Injected,
}

impl AbortReason {
    /// True when the abort is *erroneous* in the paper's sense (§3.2): not
    /// caused by transaction logic, so a repetition can be expected to
    /// eventually commit.
    #[inline]
    pub fn is_erroneous(&self) -> bool {
        !matches!(self, AbortReason::Intended | AbortReason::GlobalDecision)
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::Intended => "intended",
            AbortReason::Deadlock => "deadlock",
            AbortReason::LockTimeout => "lock-timeout",
            AbortReason::ValidationFailed => "validation-failed",
            AbortReason::SiteCrash => "site-crash",
            AbortReason::GlobalDecision => "global-decision",
            AbortReason::Injected => "injected",
        };
        f.write_str(s)
    }
}

/// Workspace-wide error type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AmcError {
    /// A local or global transaction was aborted.
    Aborted(AbortReason),
    /// Object not found where one was required.
    NotFound(crate::ids::ObjectId),
    /// Object already exists where absence was required.
    AlreadyExists(crate::ids::ObjectId),
    /// An escrow reserve would overdraw the counter (transaction logic
    /// failure — an *intended* abort cause).
    InsufficientStock {
        /// The escrow object.
        obj: crate::ids::ObjectId,
        /// Units available.
        have: i64,
        /// Units requested.
        want: u64,
    },
    /// The referenced transaction id is unknown or already terminated.
    UnknownTxn,
    /// The site is crashed; no operations are accepted until recovery.
    SiteDown(crate::ids::SiteId),
    /// Page checksum mismatch or other stable-storage corruption.
    Corruption(String),
    /// A transient I/O failure (e.g. an injected disk read error). Unlike
    /// [`AmcError::Corruption`] the operation may succeed if retried.
    TransientIo(String),
    /// Buffer pool exhausted: all frames pinned.
    BufferExhausted,
    /// A protocol invariant was violated (bug or byzantine input).
    Protocol(String),
    /// The operation is illegal in the current state (e.g. operating on a
    /// transaction that already voted).
    InvalidState(String),
}

impl AmcError {
    /// Shorthand for an intended abort.
    pub fn intended_abort() -> Self {
        AmcError::Aborted(AbortReason::Intended)
    }

    /// The abort reason, if this error represents an abort.
    pub fn abort_reason(&self) -> Option<&AbortReason> {
        match self {
            AmcError::Aborted(r) => Some(r),
            _ => None,
        }
    }

    /// True if the error is an *erroneous* abort that commit-after would
    /// repair by repetition.
    pub fn is_erroneous_abort(&self) -> bool {
        self.abort_reason().is_some_and(AbortReason::is_erroneous)
    }
}

impl fmt::Display for AmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmcError::Aborted(r) => write!(f, "transaction aborted ({r})"),
            AmcError::NotFound(o) => write!(f, "object {o} not found"),
            AmcError::AlreadyExists(o) => write!(f, "object {o} already exists"),
            AmcError::InsufficientStock { obj, have, want } => {
                write!(f, "insufficient stock on {obj}: have {have}, want {want}")
            }
            AmcError::UnknownTxn => write!(f, "unknown or terminated transaction"),
            AmcError::SiteDown(s) => write!(f, "{s} is down"),
            AmcError::Corruption(m) => write!(f, "storage corruption: {m}"),
            AmcError::TransientIo(m) => write!(f, "transient i/o failure: {m}"),
            AmcError::BufferExhausted => write!(f, "buffer pool exhausted"),
            AmcError::Protocol(m) => write!(f, "protocol violation: {m}"),
            AmcError::InvalidState(m) => write!(f, "invalid state: {m}"),
        }
    }
}

impl std::error::Error for AmcError {}

/// Convenience alias used across the workspace.
pub type AmcResult<T> = Result<T, AmcError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{ObjectId, SiteId};

    #[test]
    fn erroneous_classification_follows_section_3_2() {
        // §3.2: "aborted by the local transaction manager, e.g. because of
        // time out, by an optimistic scheduler ... or by a system crash" —
        // all erroneous, all repaired by repetition.
        assert!(AbortReason::Deadlock.is_erroneous());
        assert!(AbortReason::LockTimeout.is_erroneous());
        assert!(AbortReason::ValidationFailed.is_erroneous());
        assert!(AbortReason::SiteCrash.is_erroneous());
        assert!(AbortReason::Injected.is_erroneous());
        // Intended aborts and coordinator decisions are not.
        assert!(!AbortReason::Intended.is_erroneous());
        assert!(!AbortReason::GlobalDecision.is_erroneous());
    }

    #[test]
    fn error_displays_are_informative() {
        assert_eq!(
            AmcError::Aborted(AbortReason::Deadlock).to_string(),
            "transaction aborted (deadlock)"
        );
        assert_eq!(
            AmcError::NotFound(ObjectId::new(4)).to_string(),
            "object obj-4 not found"
        );
        assert_eq!(
            AmcError::SiteDown(SiteId::new(2)).to_string(),
            "site-2 is down"
        );
    }

    #[test]
    fn erroneous_abort_helper() {
        assert!(AmcError::Aborted(AbortReason::SiteCrash).is_erroneous_abort());
        assert!(!AmcError::intended_abort().is_erroneous_abort());
        assert!(!AmcError::UnknownTxn.is_erroneous_abort());
    }
}
