//! Restart recovery.
//!
//! Three passes over the durable log, in the spirit of ARIES but simplified
//! by value logging (every step idempotent):
//!
//! 1. **Analysis** — find the last checkpoint; classify every transaction
//!    seen since (plus those active at the checkpoint) as *finished*
//!    (commit or abort record present), **in-doubt** (a forced `Prepare`
//!    but no decision — 2PC's ready state surviving the crash) or *loser*.
//! 2. **Redo** — forward from the checkpoint, re-apply every `Update` of a
//!    finished transaction (aborted ones included: their compensating
//!    updates come later in the log and net out the rollback).
//! 3. **Undo** — backward over the whole log, restore the `before` image of
//!    every update belonging to a loser.
//!
//! The caller supplies an `apply` callback (`obj`, `image`) so the module is
//! independent of the concrete store; `amc-engine` wires it to its
//! `PageStore`.
//!
//! Before the analysis pass, recovery inspects the durable prefix for a
//! **torn tail**: a crash in the middle of a `force()` can leave exactly one
//! checksum-corrupt frame at the end of the log. That frame was never
//! acknowledged to anyone (the force did not return), so dropping it is
//! correct — recovery truncates it and proceeds over the intact prefix.
//! Corruption anywhere *earlier* means committed history was damaged and
//! stays fatal.

use crate::log::LogManager;
use crate::record::LogRecord;
use amc_obs::EventKind;
use amc_types::{AmcResult, LocalTxnId, ObjectId, Value};
use std::collections::{BTreeMap, BTreeSet};

/// What recovery found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Transactions with a durable commit record.
    pub committed: BTreeSet<LocalTxnId>,
    /// Transactions with a durable abort record (rollback already logged).
    pub aborted: BTreeSet<LocalTxnId>,
    /// In-doubt: prepared but undecided (2PC ready state). Their updates
    /// are redone and must stay isolated until the coordinator decides.
    pub in_doubt: BTreeSet<LocalTxnId>,
    /// Losers: active at the crash, rolled back by the undo pass.
    pub losers: BTreeSet<LocalTxnId>,
    /// Number of redo applications performed.
    pub redo_applied: u64,
    /// Number of undo applications performed.
    pub undo_applied: u64,
    /// True when a torn (checksum-corrupt) final frame was truncated before
    /// the analysis pass — evidence of a crash mid-`force()`.
    pub torn_tail_truncated: bool,
}

/// Run restart recovery over `log`, applying images through `apply`.
///
/// `apply(obj, Some(v))` must set the object to `v`; `apply(obj, None)` must
/// delete it. Both must be idempotent — trivially true for a store keyed by
/// object id.
pub fn recover(
    log: &mut LogManager,
    mut apply: impl FnMut(ObjectId, Option<Value>) -> AmcResult<()>,
) -> AmcResult<RecoveryOutcome> {
    // A torn final frame is the unacknowledged victim of a crash during
    // force(): truncate it. Mid-log corruption propagates as a fatal error.
    // A durable log may already have truncated a torn frame at open; that
    // counts as the same crash evidence and is consumed here exactly once.
    let torn_tail_truncated = log.truncate_torn_tail()? | log.take_torn_at_open();
    let records = log.stable_records()?;
    log.emit(EventKind::RecoveryStart {
        records: records.len() as u64,
    });

    // --- Analysis ---------------------------------------------------------
    // Find the last checkpoint and the transactions active across it.
    let mut ckpt_idx = 0usize;
    let mut ckpt_active: BTreeSet<LocalTxnId> = BTreeSet::new();
    for (i, (_, r)) in records.iter().enumerate() {
        if let LogRecord::Checkpoint { active } = r {
            ckpt_idx = i + 1; // redo starts after the checkpoint record
            ckpt_active = active.iter().copied().collect();
        }
    }

    let mut outcome = RecoveryOutcome {
        torn_tail_truncated,
        ..RecoveryOutcome::default()
    };
    let mut seen: BTreeSet<LocalTxnId> = ckpt_active;
    let mut prepared: BTreeSet<LocalTxnId> = BTreeSet::new();
    for (_, r) in &records {
        if let Some(t) = r.txn() {
            seen.insert(t);
        }
        match r {
            LogRecord::Prepare { txn } => {
                prepared.insert(*txn);
            }
            LogRecord::Commit { txn } => {
                outcome.committed.insert(*txn);
            }
            LogRecord::Abort { txn } => {
                outcome.aborted.insert(*txn);
            }
            _ => {}
        }
    }
    outcome.in_doubt = prepared
        .iter()
        .copied()
        .filter(|t| !outcome.committed.contains(t) && !outcome.aborted.contains(t))
        .collect();
    outcome.losers = seen
        .iter()
        .copied()
        .filter(|t| {
            !outcome.committed.contains(t)
                && !outcome.aborted.contains(t)
                && !outcome.in_doubt.contains(t)
        })
        .collect();

    // --- Redo -------------------------------------------------------------
    // Forward from the checkpoint: re-apply updates of finished txns.
    for (lsn, r) in &records[ckpt_idx.min(records.len())..] {
        if let LogRecord::Update {
            txn, obj, after, ..
        } = r
        {
            if outcome.committed.contains(txn)
                || outcome.aborted.contains(txn)
                || outcome.in_doubt.contains(txn)
            {
                apply(*obj, *after)?;
                outcome.redo_applied += 1;
                log.emit(EventKind::ReplayedRecord { lsn: lsn.raw() });
            }
        }
    }

    // --- Undo -------------------------------------------------------------
    // Backward over the whole log: restore before-images of losers.
    for (lsn, r) in records.iter().rev() {
        if let LogRecord::Update {
            txn, obj, before, ..
        } = r
        {
            if outcome.losers.contains(txn) {
                apply(*obj, *before)?;
                outcome.undo_applied += 1;
                log.emit(EventKind::ReplayedRecord { lsn: lsn.raw() });
            }
        }
    }

    Ok(outcome)
}

/// Convenience for tests and small tools: recover into a [`BTreeMap`] model.
pub fn recover_into_map(
    log: &mut LogManager,
    state: &mut BTreeMap<ObjectId, Value>,
) -> AmcResult<RecoveryOutcome> {
    recover(log, |obj, img| {
        match img {
            Some(v) => {
                state.insert(obj, v);
            }
            None => {
                state.remove(&obj);
            }
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ltx(n: u64) -> LocalTxnId {
        LocalTxnId::new(n)
    }
    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn v(n: i64) -> Value {
        Value::counter(n)
    }

    fn update(t: u64, o: u64, before: Option<i64>, after: Option<i64>) -> LogRecord {
        LogRecord::Update {
            txn: ltx(t),
            obj: obj(o),
            before: before.map(v),
            after: after.map(v),
        }
    }

    #[test]
    fn committed_transaction_is_redone() {
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, None, Some(5)));
        log.append(&LogRecord::Commit { txn: ltx(1) });
        log.force();

        let mut state = BTreeMap::new();
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert!(out.committed.contains(&ltx(1)));
        assert!(out.losers.is_empty());
        assert_eq!(state.get(&obj(10)), Some(&v(5)));
        assert_eq!(out.redo_applied, 1);
    }

    #[test]
    fn loser_is_undone_even_if_its_writes_hit_disk() {
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, Some(1), Some(99)));
        log.force(); // durable update record, no commit -> loser

        // Simulate the dirty page having been evicted pre-crash.
        let mut state = BTreeMap::from([(obj(10), v(99))]);
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert!(out.losers.contains(&ltx(1)));
        assert_eq!(state.get(&obj(10)), Some(&v(1)), "before image restored");
        assert_eq!(out.undo_applied, 1);
    }

    #[test]
    fn loser_insert_is_deleted_on_undo() {
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, None, Some(7)));
        log.force();

        let mut state = BTreeMap::from([(obj(10), v(7))]);
        recover_into_map(&mut log, &mut state).unwrap();
        assert!(!state.contains_key(&obj(10)));
    }

    #[test]
    fn cleanly_aborted_transaction_nets_out() {
        // Abort path: forward update then compensating update then Abort.
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, Some(1), Some(50)));
        log.append(&update(1, 10, Some(50), Some(1))); // compensation
        log.append(&LogRecord::Abort { txn: ltx(1) });
        log.force();

        let mut state = BTreeMap::from([(obj(10), v(1))]);
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert!(out.aborted.contains(&ltx(1)));
        assert!(out.losers.is_empty());
        assert_eq!(state.get(&obj(10)), Some(&v(1)));
    }

    #[test]
    fn unforced_commit_means_loser() {
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, Some(1), Some(2)));
        log.force();
        log.append(&LogRecord::Commit { txn: ltx(1) }); // never forced
        log.crash();

        let mut state = BTreeMap::from([(obj(10), v(2))]);
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert!(out.losers.contains(&ltx(1)));
        assert_eq!(state.get(&obj(10)), Some(&v(1)));
    }

    #[test]
    fn undo_runs_in_reverse_order() {
        // Loser wrote the same object twice; the *first* before-image must
        // win.
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, Some(1), Some(2)));
        log.append(&update(1, 10, Some(2), Some(3)));
        log.force();

        let mut state = BTreeMap::from([(obj(10), v(3))]);
        recover_into_map(&mut log, &mut state).unwrap();
        assert_eq!(state.get(&obj(10)), Some(&v(1)));
    }

    #[test]
    fn checkpoint_bounds_redo_but_not_undo() {
        let mut log = LogManager::new();
        // T1 commits before the checkpoint; its pages are on disk by the
        // checkpoint contract, so redo must skip it.
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, None, Some(1)));
        log.append(&LogRecord::Commit { txn: ltx(1) });
        // T2 is active across the checkpoint.
        log.append(&LogRecord::Begin { txn: ltx(2) });
        log.append(&update(2, 20, Some(5), Some(6)));
        log.append(&LogRecord::Checkpoint {
            active: vec![ltx(2)],
        });
        log.force();

        // Disk state at checkpoint: both updates flushed.
        let mut state = BTreeMap::from([(obj(10), v(1)), (obj(20), v(6))]);
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert_eq!(out.redo_applied, 0, "checkpoint bounds redo");
        assert!(out.losers.contains(&ltx(2)));
        assert_eq!(
            state.get(&obj(20)),
            Some(&v(5)),
            "pre-checkpoint update of a loser must still be undone"
        );
        assert_eq!(state.get(&obj(10)), Some(&v(1)));
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, Some(0), Some(5)));
        log.append(&LogRecord::Commit { txn: ltx(1) });
        log.append(&LogRecord::Begin { txn: ltx(2) });
        log.append(&update(2, 11, Some(9), Some(100)));
        log.force();

        let mut s1 = BTreeMap::from([(obj(10), v(0)), (obj(11), v(100))]);
        recover_into_map(&mut log, &mut s1).unwrap();
        let snapshot = s1.clone();
        // Crash during recovery, recover again: same result (E8).
        recover_into_map(&mut log, &mut s1).unwrap();
        assert_eq!(s1, snapshot);
        assert_eq!(s1.get(&obj(10)), Some(&v(5)));
        assert_eq!(s1.get(&obj(11)), Some(&v(9)));
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let mut log = LogManager::new();
        let mut state = BTreeMap::new();
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert_eq!(out, RecoveryOutcome::default());
        assert!(state.is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_recovers() {
        // T1 commits durably; crash strikes mid-force of T2's records,
        // tearing the first in-flight frame. Recovery must truncate the torn
        // frame and recover T1 exactly as if the force never started.
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, Some(0), Some(5)));
        log.append(&LogRecord::Commit { txn: ltx(1) });
        log.force();
        log.append(&LogRecord::Begin { txn: ltx(2) });
        log.append(&update(2, 11, Some(9), Some(100)));
        log.crash_during_force(0, true);

        let mut state = BTreeMap::from([(obj(10), v(0)), (obj(11), v(9))]);
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert!(out.torn_tail_truncated);
        assert!(out.committed.contains(&ltx(1)));
        assert!(!out.losers.contains(&ltx(2)), "T2 left no durable trace");
        assert_eq!(state.get(&obj(10)), Some(&v(5)));
        assert_eq!(state.get(&obj(11)), Some(&v(9)));

        // Replaying recovery is idempotent (E8): same state, no torn flag.
        let snapshot = state.clone();
        let again = recover_into_map(&mut log, &mut state).unwrap();
        assert!(!again.torn_tail_truncated);
        assert_eq!(state, snapshot);
    }

    #[test]
    fn torn_commit_record_demotes_txn_to_loser() {
        // The commit record itself is the torn frame: the commit was never
        // acknowledged, so the transaction must roll back as a loser.
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, Some(1), Some(2)));
        log.force();
        log.append(&LogRecord::Commit { txn: ltx(1) });
        log.crash_during_force(0, true);

        let mut state = BTreeMap::from([(obj(10), v(2))]);
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert!(out.torn_tail_truncated);
        assert!(out.losers.contains(&ltx(1)));
        assert_eq!(state.get(&obj(10)), Some(&v(1)), "update undone");
    }

    #[test]
    fn mid_log_corruption_fails_recovery() {
        let mut log = LogManager::new();
        log.append(&LogRecord::Begin { txn: ltx(1) });
        log.append(&update(1, 10, Some(1), Some(2)));
        log.append(&LogRecord::Commit { txn: ltx(1) });
        log.force();
        log.corrupt_stable(1); // damage committed history, not the tail
        let mut state = BTreeMap::new();
        let err = recover_into_map(&mut log, &mut state).unwrap_err();
        assert!(matches!(err, amc_types::AmcError::Corruption(_)), "{err:?}");
        assert!(state.is_empty(), "no partial recovery happened");
    }
}
