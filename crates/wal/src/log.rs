//! The append-only log manager.
//!
//! Records are appended to a **volatile tail** and become durable when the
//! tail is *forced* (the WAL rule: force up to a transaction's commit record
//! before acknowledging the commit). A crash discards the tail; the stable
//! prefix survives as encoded, checksummed frames.
//!
//! Force counts are tracked for experiment E4 (log-write complexity per
//! protocol, cf. [ML 83] in the paper's related work).

use crate::durable::DurableFile;
use crate::record::LogRecord;
use amc_obs::{EventKind, ObsSink};
use amc_types::{AmcResult, Lsn, SiteId};
use std::path::Path;

/// Log I/O accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended (volatile).
    pub appends: u64,
    /// Force (fsync-equivalent) operations that actually wrote something.
    pub forces: u64,
    /// Records made durable.
    pub stable_records: u64,
    /// Bytes made durable.
    pub stable_bytes: u64,
    /// Forces issued by a group-commit leader on behalf of a batch.
    pub group_forces: u64,
    /// Commit acknowledgements amortized over those group forces. When
    /// `batched_commits > group_forces`, at least one force carried more
    /// than one commit — the group-commit win E9 measures.
    pub batched_commits: u64,
}

/// An append-only write-ahead log with a volatile tail.
///
/// By default the "stable" prefix lives only in memory (the simulator's
/// model of a disk). [`LogManager::open_durable`] attaches an on-disk
/// [`DurableFile`] sink: every force then also appends the drained frames
/// to the file and pays one `fsync`, and every stable-prefix mutation
/// (torn-tail truncation, prefix reclamation, the simulated-crash test
/// hooks) is mirrored to the file, so a killed process finds its full
/// stable prefix at the next [`LogManager::open_durable`].
#[derive(Debug, Default)]
pub struct LogManager {
    /// Durable frames, in LSN order; the first frame has LSN `truncated + 1`.
    stable: Vec<Vec<u8>>,
    /// Volatile frames not yet forced.
    tail: Vec<Vec<u8>>,
    /// Records reclaimed from the front (see [`LogManager::truncate_before`]).
    truncated: u64,
    stats: LogStats,
    /// Observability sink; disabled (free) unless a driver attaches one.
    obs: ObsSink,
    /// The site this log belongs to, for event attribution.
    obs_site: Option<SiteId>,
    /// On-disk mirror of the stable prefix, when the log is durable.
    sink: Option<DurableFile>,
    /// Whether [`LogManager::open_durable`] truncated a torn final frame
    /// off the file; folded into the recovery outcome.
    torn_at_open: bool,
}

impl LogManager {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a durable log backed by the frame file at `path`, loading the
    /// surviving stable prefix. A torn final frame is truncated (and
    /// reported via [`LogManager::torn_at_open`]); corruption anywhere
    /// earlier is fatal.
    ///
    /// `Checkpoint` records from the previous process are dropped (and the
    /// file compacted): a checkpoint's redo-bounding contract says "updates
    /// before me reached stable *page* storage", but the page store is
    /// volatile across process restarts, so redo must run from the log's
    /// origin.
    pub fn open_durable(path: impl AsRef<Path>) -> AmcResult<Self> {
        let opened = DurableFile::open(path)?;
        let mut frames = opened.frames;
        let had = frames.len();
        frames.retain(|f| !matches!(LogRecord::decode(f), Ok(LogRecord::Checkpoint { .. })));
        let dropped_checkpoints = frames.len() != had;
        let mut log = LogManager {
            torn_at_open: opened.torn_truncated,
            sink: Some(opened.file),
            ..LogManager::default()
        };
        for frame in &frames {
            log.stats.stable_records += 1;
            log.stats.stable_bytes += frame.len() as u64;
        }
        log.stable = frames;
        if dropped_checkpoints {
            // Keep the file frame-for-frame identical to the in-memory
            // stable prefix (torn-tail truncation indexes rely on it).
            log.mirror_stable();
        }
        Ok(log)
    }

    /// Whether this log persists its stable prefix to disk.
    pub fn is_durable(&self) -> bool {
        self.sink.is_some()
    }

    /// Whether [`LogManager::open_durable`] truncated a torn final frame.
    pub fn torn_at_open(&self) -> bool {
        self.torn_at_open
    }

    /// Consume the torn-at-open flag (recovery folds it into its outcome
    /// once; replaying recovery afterwards reports a clean open).
    pub(crate) fn take_torn_at_open(&mut self) -> bool {
        std::mem::take(&mut self.torn_at_open)
    }

    /// Emit an event through the attached sink, attributed to this log's
    /// site. Free when no sink is attached.
    pub(crate) fn emit(&self, kind: EventKind) {
        if self.obs.is_enabled() {
            self.obs
                .emit(None, self.obs_site.unwrap_or(SiteId::new(0)), kind);
        }
    }

    /// Append a record to the volatile tail, returning its LSN.
    pub fn append(&mut self, record: &LogRecord) -> Lsn {
        self.tail.push(record.encode());
        self.stats.appends += 1;
        self.head()
    }

    /// LSN of the most recently appended record (0 when empty).
    pub fn head(&self) -> Lsn {
        Lsn::new(self.truncated + (self.stable.len() + self.tail.len()) as u64)
    }

    /// LSN up to which the log is durable.
    pub fn durable(&self) -> Lsn {
        Lsn::new(self.truncated + self.stable.len() as u64)
    }

    /// Force the whole tail to stable storage.
    pub fn force(&mut self) {
        let head = self.head();
        self.force_upto(head);
    }

    /// Force the tail up to (and including) `upto`; later frames stay
    /// volatile. One physical write — counts as a single force when it
    /// moves at least one frame. Returns the number of frames forced.
    pub fn force_upto(&mut self, upto: Lsn) -> u64 {
        let durable = self.truncated + self.stable.len() as u64;
        let target = upto.raw().min(self.head().raw());
        if target <= durable {
            return 0;
        }
        let n = (target - durable) as usize;
        self.stats.forces += 1;
        let mut bytes = 0u64;
        for frame in self.tail.drain(..n) {
            self.stats.stable_records += 1;
            self.stats.stable_bytes += frame.len() as u64;
            bytes += frame.len() as u64;
            if let Some(sink) = self.sink.as_mut() {
                sink.append(&frame);
            }
            self.stable.push(frame);
        }
        // One physical fsync per acknowledged force, however many frames
        // it carried — the cost group commit amortizes.
        if let Some(sink) = self.sink.as_mut() {
            sink.sync();
        }
        if self.obs.is_enabled() {
            self.obs.emit(
                None,
                self.obs_site.unwrap_or(SiteId::new(0)),
                EventKind::LogForce {
                    records: n as u64,
                    bytes,
                },
            );
        }
        n as u64
    }

    /// Record that a group-commit leader's force covered `commits` commit
    /// acknowledgements and `records` frames of `bytes` total. Bumps the
    /// group counters and emits [`EventKind::GroupForce`] when a sink is
    /// attached (the physical write was already accounted by
    /// [`LogManager::force_upto`]).
    pub fn note_group_batch(&mut self, commits: u64, records: u64, bytes: u64) {
        self.stats.group_forces += 1;
        self.stats.batched_commits += commits;
        if self.obs.is_enabled() {
            self.obs.emit(
                None,
                self.obs_site.unwrap_or(SiteId::new(0)),
                EventKind::GroupForce {
                    commits,
                    records,
                    bytes,
                },
            );
        }
    }

    /// Attach an observability sink; subsequent [`LogManager::force`] calls
    /// emit [`EventKind::LogForce`] attributed to `site`.
    pub fn attach_obs(&mut self, sink: ObsSink, site: SiteId) {
        self.obs = sink;
        self.obs_site = Some(site);
    }

    /// Append and immediately force — the commit-record fast path.
    pub fn append_forced(&mut self, record: &LogRecord) -> Lsn {
        let lsn = self.append(record);
        self.force();
        lsn
    }

    /// Crash: the volatile tail is lost.
    pub fn crash(&mut self) {
        self.tail.clear();
    }

    /// Crash **in the middle of a `force()`**: a prefix of the volatile tail
    /// reaches stable storage, the rest is lost, and — if `torn` is set and
    /// at least one more frame was in flight — the next frame lands
    /// checksum-corrupt (a torn write, the crash mode the per-frame FNV-1a
    /// checksums exist to catch).
    ///
    /// `keep_frames` is the number of tail frames that became fully durable
    /// (clamped to the tail length). No force is ever acknowledged here, so
    /// [`LogStats::forces`] is not incremented; the surviving frames do count
    /// toward `stable_records`/`stable_bytes` because they physically hit the
    /// medium.
    pub fn crash_during_force(&mut self, keep_frames: usize, torn: bool) {
        let keep = keep_frames.min(self.tail.len());
        for frame in self.tail.drain(..keep) {
            self.stats.stable_records += 1;
            self.stats.stable_bytes += frame.len() as u64;
            self.stable.push(frame);
        }
        if torn {
            if let Some(mut frame) = self.tail.first().cloned() {
                // Flip the last payload byte: length header stays intact,
                // the checksum no longer matches — a classic torn frame.
                if let Some(last) = frame.last_mut() {
                    *last ^= 0xFF;
                }
                self.stats.stable_bytes += frame.len() as u64;
                self.stable.push(frame);
            }
        }
        self.tail.clear();
        // A durable sink must reflect what physically hit the medium.
        self.mirror_stable();
    }

    /// Rewrite the durable sink (if any) from the current stable prefix —
    /// used by the simulated-crash test hooks, which edit `stable`
    /// directly instead of going through appends.
    fn mirror_stable(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            sink.rewrite(&self.stable);
        }
    }

    /// Drop a torn final frame from the durable prefix, if present.
    ///
    /// Returns `Ok(true)` when exactly the *last* stable frame failed to
    /// decode and was truncated, `Ok(false)` when every frame is intact.
    /// A corrupt frame anywhere **before** the end is not a torn tail — it
    /// is mid-log corruption, and recovery must not silently drop committed
    /// history — so that stays a fatal [`amc_types::AmcError::Corruption`].
    pub fn truncate_torn_tail(&mut self) -> AmcResult<bool> {
        let mut first_bad = None;
        for (i, frame) in self.stable.iter().enumerate() {
            if LogRecord::decode(frame).is_err() {
                first_bad = Some(i);
                break;
            }
        }
        match first_bad {
            None => Ok(false),
            Some(i) if i + 1 == self.stable.len() => {
                self.stable.pop();
                if let Some(sink) = self.sink.as_mut() {
                    sink.truncate_frames(i);
                }
                Ok(true)
            }
            Some(i) => Err(amc_types::AmcError::Corruption(format!(
                "mid-log corruption at LSN {} (not a torn tail; {} frames follow)",
                self.truncated + i as u64 + 1,
                self.stable.len() - i - 1
            ))),
        }
    }

    /// Test hook: corrupt the durable frame at `idx` (0-based into the
    /// current stable prefix) by flipping its final byte. Used to exercise
    /// the mid-log-corruption-is-fatal path.
    pub fn corrupt_stable(&mut self, idx: usize) {
        if let Some(frame) = self.stable.get_mut(idx) {
            if let Some(last) = frame.last_mut() {
                *last ^= 0xFF;
            }
            self.mirror_stable();
        }
    }

    /// Decode and return all durable records in LSN order.
    pub fn stable_records(&self) -> AmcResult<Vec<(Lsn, LogRecord)>> {
        self.stable
            .iter()
            .enumerate()
            .map(|(i, frame)| {
                Ok((
                    Lsn::new(self.truncated + i as u64 + 1),
                    LogRecord::decode(frame)?,
                ))
            })
            .collect()
    }

    /// Accounting so far.
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    /// Reset accounting (between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = LogStats::default();
    }

    /// Truncate the durable prefix before `lsn` (log reclamation after a
    /// checkpoint). Records with LSN < `lsn` are discarded; LSNs are **not**
    /// renumbered — subsequent reads simply start later.
    ///
    /// Only safe when recovery will never need the truncated records, i.e.
    /// after a checkpoint with no transaction active across it.
    pub fn truncate_before(&mut self, lsn: Lsn) {
        let keep_from = lsn.raw().saturating_sub(self.truncated + 1) as usize;
        if keep_from == 0 || self.stable.is_empty() {
            return;
        }
        let keep_from = keep_from.min(self.stable.len());
        self.truncated += keep_from as u64;
        self.stable.drain(..keep_from);
        self.mirror_stable();
    }

    /// Number of records truncated from the front (LSN offset).
    pub fn truncated(&self) -> u64 {
        self.truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::LocalTxnId;

    fn begin(n: u64) -> LogRecord {
        LogRecord::Begin {
            txn: LocalTxnId::new(n),
        }
    }

    #[test]
    fn lsns_are_sequential() {
        let mut log = LogManager::new();
        assert_eq!(log.append(&begin(1)), Lsn::new(1));
        assert_eq!(log.append(&begin(2)), Lsn::new(2));
        assert_eq!(log.head(), Lsn::new(2));
        assert_eq!(log.durable(), Lsn::ZERO);
    }

    #[test]
    fn force_makes_tail_durable() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.append(&begin(2));
        log.force();
        assert_eq!(log.durable(), Lsn::new(2));
        let records = log.stable_records().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].1, begin(1));
        assert_eq!(records[1].1, begin(2));
    }

    #[test]
    fn crash_drops_unforced_tail_only() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.force();
        log.append(&begin(2));
        log.crash();
        let records = log.stable_records().unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].1, begin(1));
        // Head restarts from the durable point.
        assert_eq!(log.head(), Lsn::new(1));
    }

    #[test]
    fn empty_force_is_free() {
        let mut log = LogManager::new();
        log.force();
        log.force();
        assert_eq!(log.stats().forces, 0);
        log.append(&begin(1));
        log.force();
        assert_eq!(log.stats().forces, 1);
    }

    #[test]
    fn append_forced_is_durable_immediately() {
        let mut log = LogManager::new();
        log.append_forced(&begin(9));
        log.crash();
        assert_eq!(log.stable_records().unwrap().len(), 1);
    }

    #[test]
    fn truncation_preserves_lsns_and_tail_reads() {
        let mut log = LogManager::new();
        for i in 1..=6u64 {
            log.append(&begin(i));
        }
        log.force();
        assert_eq!(log.head(), Lsn::new(6));
        // Reclaim everything before LSN 4.
        log.truncate_before(Lsn::new(4));
        assert_eq!(log.truncated(), 3);
        let records = log.stable_records().unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].0, Lsn::new(4), "LSNs are not renumbered");
        assert_eq!(records[0].1, begin(4));
        // Appends continue from the same sequence.
        assert_eq!(log.append(&begin(7)), Lsn::new(7));
        log.force();
        assert_eq!(log.durable(), Lsn::new(7));
    }

    #[test]
    fn truncate_before_is_idempotent_and_clamped() {
        let mut log = LogManager::new();
        for i in 1..=3u64 {
            log.append(&begin(i));
        }
        log.force();
        log.truncate_before(Lsn::new(2));
        log.truncate_before(Lsn::new(2)); // repeat: no-op
        assert_eq!(log.truncated(), 1);
        // Truncating past the end clamps to the durable prefix.
        log.truncate_before(Lsn::new(100));
        assert_eq!(log.truncated(), 3);
        assert!(log.stable_records().unwrap().is_empty());
        assert_eq!(log.head(), Lsn::new(3));
    }

    #[test]
    fn checkpoint_truncate_recover_cycle() {
        use crate::recovery::recover_into_map;
        use amc_types::{ObjectId, Value};
        use std::collections::BTreeMap;

        let mut log = LogManager::new();
        let mut state: BTreeMap<ObjectId, Value> = BTreeMap::new();
        // Transaction 1 commits; state is "flushed" (our map plays the
        // disk); checkpoint with no active transactions; truncate.
        log.append(&LogRecord::Begin {
            txn: LocalTxnId::new(1),
        });
        log.append(&LogRecord::Update {
            txn: LocalTxnId::new(1),
            obj: ObjectId::new(9),
            before: None,
            after: Some(Value::counter(5)),
        });
        log.append(&LogRecord::Commit {
            txn: LocalTxnId::new(1),
        });
        log.force();
        state.insert(ObjectId::new(9), Value::counter(5)); // flushed
        log.append_forced(&LogRecord::Checkpoint { active: vec![] });
        log.truncate_before(log.durable());
        // A post-checkpoint transaction commits.
        log.append(&LogRecord::Begin {
            txn: LocalTxnId::new(2),
        });
        log.append(&LogRecord::Update {
            txn: LocalTxnId::new(2),
            obj: ObjectId::new(9),
            before: Some(Value::counter(5)),
            after: Some(Value::counter(6)),
        });
        log.append(&LogRecord::Commit {
            txn: LocalTxnId::new(2),
        });
        log.force();
        // Crash + recover over the truncated log: only txn 2 replays, and
        // the final state is correct.
        let out = recover_into_map(&mut log, &mut state).unwrap();
        assert!(out.committed.contains(&LocalTxnId::new(2)));
        assert!(!out.committed.contains(&LocalTxnId::new(1)), "reclaimed");
        assert_eq!(state[&ObjectId::new(9)], Value::counter(6));
    }

    #[test]
    fn crash_during_force_keeps_a_prefix() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.append(&begin(2));
        log.append(&begin(3));
        log.crash_during_force(2, false);
        let records = log.stable_records().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].1, begin(1));
        assert_eq!(records[1].1, begin(2));
        assert_eq!(log.head(), Lsn::new(2), "unforced frame 3 is gone");
        assert!(!log.truncate_torn_tail().unwrap(), "no torn frame written");
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.force();
        log.append(&begin(2));
        log.append(&begin(3));
        // Crash mid-force: frame 2 lands intact, frame 3 lands torn.
        log.crash_during_force(1, true);
        assert!(
            log.stable_records().is_err(),
            "raw read still sees the torn frame"
        );
        assert!(log.truncate_torn_tail().unwrap());
        let records = log.stable_records().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].1, begin(2));
        // Idempotent: a second pass finds nothing to do.
        assert!(!log.truncate_torn_tail().unwrap());
    }

    #[test]
    fn torn_frame_with_no_durable_prefix() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.crash_during_force(0, true);
        assert!(log.truncate_torn_tail().unwrap());
        assert!(log.stable_records().unwrap().is_empty());
        assert_eq!(log.head(), Lsn::ZERO);
    }

    #[test]
    fn mid_log_corruption_stays_fatal() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.append(&begin(2));
        log.append(&begin(3));
        log.force();
        log.corrupt_stable(1); // middle frame: committed history damaged
        let err = log.truncate_torn_tail().unwrap_err();
        assert!(
            matches!(err, amc_types::AmcError::Corruption(ref m) if m.contains("mid-log")),
            "{err:?}"
        );
        // Nothing was dropped.
        assert!(log.stable_records().is_err());
    }

    #[test]
    fn corrupt_final_frame_via_hook_is_a_torn_tail() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.append(&begin(2));
        log.force();
        log.corrupt_stable(1);
        assert!(log.truncate_torn_tail().unwrap());
        assert_eq!(log.stable_records().unwrap().len(), 1);
    }

    #[test]
    fn crash_during_force_clamps_keep_frames() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.crash_during_force(10, true);
        // Everything fit; no frame was left to tear.
        assert_eq!(log.stable_records().unwrap().len(), 1);
        assert!(!log.truncate_torn_tail().unwrap());
    }

    #[test]
    fn attached_obs_sees_acknowledged_forces_only() {
        let sink = amc_obs::ObsSink::enabled(16);
        let mut log = LogManager::new();
        log.attach_obs(sink.clone(), SiteId::new(3));
        log.append_forced(&begin(1));
        log.force(); // empty tail: no force, no event
        log.append(&begin(2));
        log.crash_during_force(1, false); // unacknowledged: no event
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 1);
        let e = snap.events().next().unwrap();
        assert_eq!(e.site, SiteId::new(3));
        assert!(
            matches!(e.kind, EventKind::LogForce { records: 1, .. }),
            "{:?}",
            e.kind
        );
    }

    #[test]
    fn stats_count_bytes_and_records() {
        let mut log = LogManager::new();
        log.append(&begin(1));
        log.append(&begin(2));
        log.force();
        let s = log.stats();
        assert_eq!(s.appends, 2);
        assert_eq!(s.stable_records, 2);
        assert!(s.stable_bytes > 0);
    }
}
