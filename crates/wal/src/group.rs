//! Group commit: amortize one physical log force over many committers.
//!
//! The paper's §5 complexity argument is counted in *forced log writes per
//! committed transaction*. On the threaded runtime each commit used to pay
//! one synchronous `force()`; [`GroupCommitter`] instead lets concurrent
//! committers enqueue their commit records and elects one **leader** per
//! batch to force the shared tail for everyone queued behind it — the
//! standard production amortization (DeWitt et al.'s group commit, also the
//! reason the logless protocols in PAPERS.md treat the forced write as the
//! unit of commit cost).
//!
//! Semantics:
//!
//! * [`GroupCommitter::append_durable`] returns only once the record is on
//!   stable storage — the WAL rule is never weakened, only batched.
//! * The leader snapshots the tail head, **releases the log mutex** for the
//!   modelled fsync latency, then publishes the batch. Followers appending
//!   during that window queue up for the *next* leader, which is what makes
//!   batch size track concurrency.
//! * A crash while committers are parked bumps an epoch; those committers
//!   return "not durable" and their transactions fail with `SiteDown`, so a
//!   commit is acknowledged iff its record survived the crash.
//!
//! With a zero `force_latency` and zero `max_wait` (the defaults) the whole
//! path degenerates to `append_forced` under one mutex acquisition — the
//! deterministic simulator and single-threaded tests observe behavior
//! identical to the unbatched log.

use crate::log::{LogManager, LogStats};
use crate::record::LogRecord;
use amc_types::Lsn;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Tuning for [`GroupCommitter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupCommitConfig {
    /// Stop lingering for followers once this many commits are pending.
    pub max_batch: usize,
    /// How long a leader lingers for followers before forcing. Zero (the
    /// default) means "force whatever is queued right now" — batching then
    /// comes purely from commits that arrive while a force is in flight.
    pub max_wait: Duration,
    /// Modelled latency of one physical force (the fsync the batch
    /// amortizes). The leader sleeps this long **without** holding the log
    /// mutex, so concurrent committers can append and queue meanwhile.
    pub force_latency: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 64,
            max_wait: Duration::ZERO,
            force_latency: Duration::ZERO,
        }
    }
}

struct GcInner {
    log: LogManager,
    /// Bumped on every crash. A committer whose epoch moved while it was
    /// parked was never acknowledged — its record may be gone.
    epoch: u64,
    /// A leader is currently forcing; followers park instead of competing.
    forcing: bool,
    /// LSNs of durable-append requests awaiting acknowledgement.
    pending: Vec<Lsn>,
}

/// A [`LogManager`] wrapped with leader/follower group commit.
///
/// With the default config (zero linger, zero modelled fsync latency) the
/// committer behaves exactly like an unbatched forced append — one force
/// per durable record — which makes single-threaded use easy to reason
/// about:
///
/// ```
/// use amc_types::LocalTxnId;
/// use amc_wal::{GroupCommitConfig, GroupCommitter, LogManager, LogRecord};
///
/// let gc = GroupCommitter::new(LogManager::new(), GroupCommitConfig::default());
/// let txn = LocalTxnId::new(7);
/// gc.append(&LogRecord::Begin { txn });          // buffered, not yet stable
/// assert!(gc.append_durable(&LogRecord::Commit { txn })); // true = on stable storage
///
/// let stats = gc.stats();
/// assert_eq!(stats.forces, 1);          // the commit forced the tail...
/// assert_eq!(stats.stable_records, 2);  // ...carrying the begin with it
/// ```
///
/// Under concurrency the interesting number is `batched_commits /
/// group_forces` — how many acknowledgements each physical force paid for
/// (experiment E11b sweeps it against the linger window).
pub struct GroupCommitter {
    inner: Mutex<GcInner>,
    cv: Condvar,
    cfg: GroupCommitConfig,
}

impl GroupCommitter {
    /// Wrap `log` with the given batching config.
    pub fn new(log: LogManager, cfg: GroupCommitConfig) -> Self {
        GroupCommitter {
            inner: Mutex::new(GcInner {
                log,
                epoch: 0,
                forcing: false,
                pending: Vec::new(),
            }),
            cv: Condvar::new(),
            cfg,
        }
    }

    /// The active batching config.
    pub fn config(&self) -> GroupCommitConfig {
        self.cfg
    }

    /// Run `f` with exclusive access to the wrapped log (stats, recovery,
    /// checkpointing, crash hooks). Blocks every committer for the
    /// duration — keep it short, and never nest it.
    pub fn with_log<R>(&self, f: impl FnOnce(&mut LogManager) -> R) -> R {
        f(&mut self.inner.lock().log)
    }

    /// Append a record to the volatile tail (no durability).
    pub fn append(&self, record: &LogRecord) -> Lsn {
        self.inner.lock().log.append(record)
    }

    /// Append `record` and return once it is durable — the group-commit
    /// path for commit (and prepare) records. Returns `false` iff a crash
    /// intervened before the record was forced: the record is gone and the
    /// caller must not acknowledge its transaction.
    pub fn append_durable(&self, record: &LogRecord) -> bool {
        let mut inner = self.inner.lock();
        let epoch = inner.epoch;
        let lsn = inner.log.append(record);
        inner.pending.push(lsn);
        let mut lingered = false;
        loop {
            if inner.epoch != epoch {
                return false;
            }
            if inner.log.durable() >= lsn {
                return true;
            }
            if inner.forcing {
                // A leader is writing a batch that may or may not cover us;
                // park until it publishes, then re-check.
                self.cv.wait(&mut inner);
                continue;
            }
            // We are the leader-elect for everything queued so far.
            if !lingered && !self.cfg.max_wait.is_zero() && inner.pending.len() < self.cfg.max_batch
            {
                // Linger briefly so followers can join this batch.
                lingered = true;
                self.cv.wait_for(&mut inner, self.cfg.max_wait);
                continue;
            }
            inner.forcing = true;
            let target = inner.log.head();
            if !self.cfg.force_latency.is_zero() {
                // Modelled fsync: release the mutex so committers arriving
                // during the write queue up for the next batch.
                drop(inner);
                std::thread::sleep(self.cfg.force_latency);
                inner = self.inner.lock();
            }
            if inner.epoch != epoch {
                // Crashed while "the disk was writing": nothing in this
                // batch became durable and nobody gets acknowledged.
                inner.forcing = false;
                self.cv.notify_all();
                return false;
            }
            let (records, bytes_before) = {
                let b = inner.log.stats().stable_bytes;
                (inner.log.force_upto(target), b)
            };
            let bytes = inner.log.stats().stable_bytes - bytes_before;
            let acked = inner.pending.iter().filter(|l| **l <= target).count() as u64;
            inner.pending.retain(|l| *l > target);
            if acked > 0 {
                inner.log.note_group_batch(acked, records, bytes);
            }
            inner.forcing = false;
            self.cv.notify_all();
            // Our own record is ≤ target by construction.
            return true;
        }
    }

    /// Crash: the volatile tail is lost and every parked committer is
    /// released unacknowledged.
    pub fn crash(&self) {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        inner.pending.clear();
        inner.forcing = false;
        inner.log.crash();
        self.cv.notify_all();
    }

    /// Crash mid-force (see [`LogManager::crash_during_force`]): a prefix
    /// of the tail survives, but **no** parked committer is acknowledged —
    /// exactly like a real fsync that never returned.
    pub fn crash_during_force(&self, keep_frames: usize, torn: bool) {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        inner.pending.clear();
        inner.forcing = false;
        inner.log.crash_during_force(keep_frames, torn);
        self.cv.notify_all();
    }

    /// Counter snapshot of the wrapped log.
    pub fn stats(&self) -> LogStats {
        self.inner.lock().log.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::LocalTxnId;
    use std::sync::Arc;

    fn commit(n: u64) -> LogRecord {
        LogRecord::Commit {
            txn: LocalTxnId::new(n),
        }
    }

    fn committed_txns(gc: &GroupCommitter) -> Vec<LocalTxnId> {
        gc.with_log(|log| {
            log.stable_records()
                .unwrap()
                .into_iter()
                .filter_map(|(_, r)| match r {
                    LogRecord::Commit { txn } => Some(txn),
                    _ => None,
                })
                .collect()
        })
    }

    #[test]
    fn serial_append_durable_matches_append_forced() {
        let gc = GroupCommitter::new(LogManager::new(), GroupCommitConfig::default());
        assert!(gc.append_durable(&commit(1)));
        assert!(gc.append_durable(&commit(2)));
        let s = gc.stats();
        assert_eq!(s.forces, 2, "no concurrency, no batching");
        assert_eq!(s.group_forces, 2);
        assert_eq!(s.batched_commits, 2);
        assert_eq!(committed_txns(&gc).len(), 2);
    }

    #[test]
    fn concurrent_committers_batch_behind_one_force() {
        let cfg = GroupCommitConfig {
            force_latency: Duration::from_millis(3),
            ..GroupCommitConfig::default()
        };
        let gc = Arc::new(GroupCommitter::new(LogManager::new(), cfg));
        let threads = 8;
        let per_thread = 6;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let gc = Arc::clone(&gc);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        assert!(gc.append_durable(&commit(t * 100 + i)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = gc.stats();
        let total = threads * per_thread;
        assert_eq!(s.batched_commits, total);
        assert_eq!(committed_txns(&gc).len(), total as usize);
        assert!(
            s.batched_commits > s.group_forces,
            "at least one batch must carry >1 commit ({} commits / {} forces)",
            s.batched_commits,
            s.group_forces
        );
    }

    #[test]
    fn lingering_leader_collects_followers() {
        let cfg = GroupCommitConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(10),
            force_latency: Duration::ZERO,
        };
        let gc = Arc::new(GroupCommitter::new(LogManager::new(), cfg));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let gc = Arc::clone(&gc);
                std::thread::spawn(move || assert!(gc.append_durable(&commit(t))))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = gc.stats();
        assert_eq!(s.batched_commits, 4);
        assert!(s.group_forces <= 4);
    }

    #[test]
    fn crash_releases_parked_committers_unacknowledged() {
        let cfg = GroupCommitConfig {
            force_latency: Duration::from_millis(50),
            ..GroupCommitConfig::default()
        };
        let gc = Arc::new(GroupCommitter::new(LogManager::new(), cfg));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let gc = Arc::clone(&gc);
                std::thread::spawn(move || (t, gc.append_durable(&commit(t))))
            })
            .collect();
        // Let the leader start its (long) force, then crash mid-write.
        std::thread::sleep(Duration::from_millis(10));
        gc.crash();
        let stable: Vec<LocalTxnId> = committed_txns(&gc);
        for h in handles {
            let (t, acked) = h.join().unwrap();
            if acked {
                assert!(
                    stable.contains(&LocalTxnId::new(t)),
                    "acknowledged commit {t} must be durable"
                );
            }
        }
        // The crash hit while the leader slept, so in fact nobody was acked.
        assert_eq!(gc.stats().batched_commits, 0);
    }

    #[test]
    fn acknowledged_commits_survive_partial_crash() {
        // Deterministic mid-batch loss: one commit fully acknowledged, two
        // more appended but never forced; a partial crash keeps only the
        // first unforced frame. Only unacknowledged commits may be lost.
        let gc = GroupCommitter::new(LogManager::new(), GroupCommitConfig::default());
        assert!(gc.append_durable(&commit(1)));
        gc.append(&commit(2));
        gc.append(&commit(3));
        gc.crash_during_force(1, false);
        let stable = committed_txns(&gc);
        assert!(stable.contains(&LocalTxnId::new(1)), "acked commit kept");
        assert!(stable.contains(&LocalTxnId::new(2)), "partially flushed");
        assert!(
            !stable.contains(&LocalTxnId::new(3)),
            "unacknowledged, unforced commit is lost"
        );
    }

    #[test]
    fn zero_latency_config_is_deterministic_single_thread() {
        let gc = GroupCommitter::new(LogManager::new(), GroupCommitConfig::default());
        for i in 0..10 {
            assert!(gc.append_durable(&commit(i)));
            assert_eq!(gc.with_log(|log| log.durable()), Lsn::new(i + 1));
        }
        let s = gc.stats();
        assert_eq!(s.forces, 10);
        assert_eq!(s.group_forces, 10);
    }
}
