//! Log record types and their checksummed binary encoding.
//!
//! Frame layout (little-endian):
//!
//! ```text
//! 0    4   payload length n
//! 4    8   FNV-1a checksum of the payload
//! 12   n   payload: tag byte + fields
//! ```
//!
//! `Option<Value>` fields encode as a presence byte followed by the value's
//! fixed 12-byte form. `None` before-images mean "object did not exist";
//! `None` after-images mean "object deleted".

use amc_storage::checksum::fnv1a;
use amc_types::{AmcError, AmcResult, LocalTxnId, ObjectId, Value};

const TAG_BEGIN: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;
const TAG_PREPARE: u8 = 6;

/// One write-ahead-log record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// A local transaction started.
    Begin {
        /// The transaction.
        txn: LocalTxnId,
    },
    /// A state transition of one object: `before -> after`.
    ///
    /// Rollback writes (compensations) are logged as ordinary `Update`s of
    /// the same transaction with the images swapped; forward replay then
    /// reproduces the rollback naturally.
    Update {
        /// The transaction.
        txn: LocalTxnId,
        /// Object touched.
        obj: ObjectId,
        /// Image before the update (`None` = absent).
        before: Option<Value>,
        /// Image after the update (`None` = deleted).
        after: Option<Value>,
    },
    /// 2PC only: the transaction reached the *ready* state; its updates
    /// are durable and it must survive a crash as an in-doubt transaction
    /// awaiting the coordinator's decision (§3.1).
    Prepare {
        /// The transaction.
        txn: LocalTxnId,
    },
    /// The transaction committed (durability point once forced).
    Commit {
        /// The transaction.
        txn: LocalTxnId,
    },
    /// The transaction aborted after rolling back (its compensating
    /// `Update`s precede this record).
    Abort {
        /// The transaction.
        txn: LocalTxnId,
    },
    /// Fuzzy checkpoint: every update strictly before this record has been
    /// forced to stable page storage; `active` lists transactions in flight.
    Checkpoint {
        /// Transactions active at checkpoint time.
        active: Vec<LocalTxnId>,
    },
}

impl LogRecord {
    /// The transaction a record belongs to, if any.
    pub fn txn(&self) -> Option<LocalTxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Update { txn, .. }
            | LogRecord::Prepare { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        fn put_opt_value(out: &mut Vec<u8>, v: &Option<Value>) {
            match v {
                Some(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_bytes());
                }
                None => {
                    out.push(0);
                    out.extend_from_slice(&[0u8; 12]);
                }
            }
        }
        match self {
            LogRecord::Begin { txn } => {
                out.push(TAG_BEGIN);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            LogRecord::Update {
                txn,
                obj,
                before,
                after,
            } => {
                out.push(TAG_UPDATE);
                out.extend_from_slice(&txn.raw().to_le_bytes());
                out.extend_from_slice(&obj.raw().to_le_bytes());
                put_opt_value(out, before);
                put_opt_value(out, after);
            }
            LogRecord::Prepare { txn } => {
                out.push(TAG_PREPARE);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            LogRecord::Commit { txn } => {
                out.push(TAG_COMMIT);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            LogRecord::Abort { txn } => {
                out.push(TAG_ABORT);
                out.extend_from_slice(&txn.raw().to_le_bytes());
            }
            LogRecord::Checkpoint { active } => {
                out.push(TAG_CHECKPOINT);
                out.extend_from_slice(&(active.len() as u32).to_le_bytes());
                for t in active {
                    out.extend_from_slice(&t.raw().to_le_bytes());
                }
            }
        }
    }

    /// Encode into a checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64);
        self.encode_payload(&mut payload);
        let sum = fnv1a(&payload);
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&sum.to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decode one frame, verifying length and checksum.
    pub fn decode(frame: &[u8]) -> AmcResult<Self> {
        if frame.len() < 13 {
            return Err(AmcError::Corruption("log frame too short".into()));
        }
        let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
        if frame.len() != 12 + len {
            return Err(AmcError::Corruption(format!(
                "log frame length mismatch: header says {len}, frame has {}",
                frame.len() - 12
            )));
        }
        let stored = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
        let payload = &frame[12..];
        if fnv1a(payload) != stored {
            return Err(AmcError::Corruption("log frame checksum mismatch".into()));
        }
        Self::decode_payload(payload)
    }

    fn decode_payload(p: &[u8]) -> AmcResult<Self> {
        fn get_u64(p: &[u8], off: usize) -> AmcResult<u64> {
            p.get(off..off + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or_else(|| AmcError::Corruption("truncated log payload".into()))
        }
        fn get_opt_value(p: &[u8], off: usize) -> AmcResult<Option<Value>> {
            let flag = *p
                .get(off)
                .ok_or_else(|| AmcError::Corruption("truncated log payload".into()))?;
            let bytes: &[u8; 12] = p
                .get(off + 1..off + 13)
                .and_then(|s| s.try_into().ok())
                .ok_or_else(|| AmcError::Corruption("truncated log payload".into()))?;
            Ok(match flag {
                0 => None,
                1 => Some(Value::from_bytes(bytes)),
                f => {
                    return Err(AmcError::Corruption(format!(
                        "bad option flag {f} in log payload"
                    )))
                }
            })
        }
        let tag = *p
            .first()
            .ok_or_else(|| AmcError::Corruption("empty log payload".into()))?;
        match tag {
            TAG_BEGIN => Ok(LogRecord::Begin {
                txn: LocalTxnId::new(get_u64(p, 1)?),
            }),
            TAG_UPDATE => Ok(LogRecord::Update {
                txn: LocalTxnId::new(get_u64(p, 1)?),
                obj: ObjectId::new(get_u64(p, 9)?),
                before: get_opt_value(p, 17)?,
                after: get_opt_value(p, 30)?,
            }),
            TAG_PREPARE => Ok(LogRecord::Prepare {
                txn: LocalTxnId::new(get_u64(p, 1)?),
            }),
            TAG_COMMIT => Ok(LogRecord::Commit {
                txn: LocalTxnId::new(get_u64(p, 1)?),
            }),
            TAG_ABORT => Ok(LogRecord::Abort {
                txn: LocalTxnId::new(get_u64(p, 1)?),
            }),
            TAG_CHECKPOINT => {
                let n = p
                    .get(1..5)
                    .and_then(|s| s.try_into().ok())
                    .map(u32::from_le_bytes)
                    .ok_or_else(|| AmcError::Corruption("truncated checkpoint".into()))?
                    as usize;
                let mut active = Vec::with_capacity(n);
                for i in 0..n {
                    active.push(LocalTxnId::new(get_u64(p, 5 + 8 * i)?));
                }
                Ok(LogRecord::Checkpoint { active })
            }
            t => Err(AmcError::Corruption(format!("unknown log tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ltx(n: u64) -> LocalTxnId {
        LocalTxnId::new(n)
    }

    #[test]
    fn roundtrip_all_variants() {
        let records = vec![
            LogRecord::Begin { txn: ltx(1) },
            LogRecord::Update {
                txn: ltx(1),
                obj: ObjectId::new(9),
                before: None,
                after: Some(Value::counter(5)),
            },
            LogRecord::Update {
                txn: ltx(1),
                obj: ObjectId::new(9),
                before: Some(Value::counter(5)),
                after: None,
            },
            LogRecord::Prepare { txn: ltx(1) },
            LogRecord::Commit { txn: ltx(1) },
            LogRecord::Abort { txn: ltx(2) },
            LogRecord::Checkpoint { active: vec![] },
            LogRecord::Checkpoint {
                active: vec![ltx(3), ltx(4), ltx(5)],
            },
        ];
        for r in records {
            assert_eq!(LogRecord::decode(&r.encode()).unwrap(), r, "{r:?}");
        }
    }

    #[test]
    fn corrupted_frames_are_rejected() {
        let r = LogRecord::Commit { txn: ltx(7) };
        let mut frame = r.encode();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(LogRecord::decode(&frame).is_err());
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let r = LogRecord::Begin { txn: ltx(7) };
        let frame = r.encode();
        assert!(LogRecord::decode(&frame[..frame.len() - 1]).is_err());
        assert!(LogRecord::decode(&[]).is_err());
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::Begin { txn: ltx(3) }.txn(), Some(ltx(3)));
        assert_eq!(LogRecord::Checkpoint { active: vec![] }.txn(), None);
    }

    proptest! {
        #[test]
        fn roundtrip_random_updates(
            txn in any::<u64>(),
            obj in any::<u64>(),
            before in proptest::option::of((any::<i64>(), any::<u32>())),
            after in proptest::option::of((any::<i64>(), any::<u32>())),
        ) {
            let r = LogRecord::Update {
                txn: ltx(txn),
                obj: ObjectId::new(obj),
                before: before.map(|(c, t)| Value::tagged(c, t)),
                after: after.map(|(c, t)| Value::tagged(c, t)),
            };
            prop_assert_eq!(LogRecord::decode(&r.encode()).unwrap(), r);
        }

        #[test]
        fn roundtrip_random_checkpoints(active in proptest::collection::vec(any::<u64>(), 0..50)) {
            let r = LogRecord::Checkpoint {
                active: active.into_iter().map(ltx).collect(),
            };
            prop_assert_eq!(LogRecord::decode(&r.encode()).unwrap(), r);
        }
    }
}
