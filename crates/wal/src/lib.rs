//! # amc-wal
//!
//! Write-ahead logging and restart recovery for the local database engines.
//!
//! The design is deliberately the one a well-built 1991 engine would carry:
//! **value logging** (full before/after images) under strict two-phase
//! locking, which makes both redo and undo **idempotent** — exactly the
//! property §3.2/§3.3 of the paper lean on when they demand that redo/undo
//! operations tolerate crashes between a commit and its propagation
//! (experiment E8).
//!
//! * [`record::LogRecord`] — begin/update/commit/abort/checkpoint records
//!   with a checksummed binary encoding.
//! * [`log::LogManager`] — an append-only log with a volatile tail and a
//!   stable prefix; `force()` is the durability barrier, and a crash drops
//!   the tail.
//! * [`durable::DurableFile`] — an on-disk mirror of the stable prefix:
//!   checksum-framed appends, one `fsync` per acknowledged force, torn-tail
//!   classification at open. [`LogManager::open_durable`] wires it in so a
//!   killed process recovers its stable prefix from the file.
//! * [`recovery`] — restart recovery: forward replay of finished
//!   transactions from the last checkpoint, backward undo of losers.
//!
//! Correctness argument for the replay scheme: under strict 2PL, conflicting
//! updates are ordered by the log, and value (state) logging makes every
//! replay step idempotent, so "redo finished transactions forward, undo
//! losers backward" restores exactly the committed state regardless of which
//! buffer pages happened to reach disk before the crash.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod durable;
pub mod group;
pub mod log;
pub mod record;
pub mod recovery;

pub use durable::{DurableFile, Opened};
pub use group::{GroupCommitConfig, GroupCommitter};
pub use log::{LogManager, LogStats};
pub use record::LogRecord;
pub use recovery::{recover, RecoveryOutcome};
