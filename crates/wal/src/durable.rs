//! The on-disk frame store behind a durable [`LogManager`](crate::LogManager).
//!
//! A [`DurableFile`] persists the log's stable prefix to one append-only
//! file. The file is a plain concatenation of frames in the exact layout
//! [`LogRecord::encode`](crate::LogRecord::encode) already produces:
//!
//! ```text
//! 0    4   payload length n (little-endian u32)
//! 4    8   FNV-1a checksum of the payload (amc-storage::checksum)
//! 12   n   payload
//! ```
//!
//! so WAL frames are written to disk byte-for-byte as they exist in
//! memory, and the file format is shared with the communication manager's
//! work journal (whose payloads are not [`LogRecord`](crate::LogRecord)s — the framing is
//! payload-agnostic).
//!
//! ## Crash contract
//!
//! [`DurableFile::open`] scans the file front to back and classifies it
//! exactly as [`LogManager::truncate_torn_tail`](crate::LogManager::truncate_torn_tail)
//! classifies the in-memory stable prefix:
//!
//! * a final frame whose header or payload runs past end-of-file, or whose
//!   checksum does not match, is a **torn write** — the crash struck
//!   mid-append, nothing after it can have been acknowledged, and the
//!   frame is silently truncated;
//! * a checksum failure anywhere **before** the last frame is **mid-log
//!   corruption** — committed history is damaged, recovery must not
//!   silently drop it, and `open` fails with
//!   [`AmcError::Corruption`].
//!
//! ## Failure model for writes
//!
//! Appends and fsyncs happen on the commit path, whose in-memory
//! signatures are infallible (the group committer acknowledges commits on
//! the strength of a completed force). A write or fsync error here means
//! the medium is gone; continuing would acknowledge commits that are not
//! durable. These methods therefore **panic** on I/O failure — the
//! process dies and restart recovery replays the log, which is the
//! crash-consistent outcome.

use amc_storage::checksum::fnv1a;
use amc_types::{AmcError, AmcResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Length + checksum header preceding every frame payload.
pub const FRAME_HEADER: usize = 12;

/// Wrap `payload` in the `[len][fnv1a][payload]` frame layout.
///
/// [`LogRecord::encode`](crate::LogRecord::encode) produces exactly this
/// layout already; this helper exists for non-`LogRecord` users of the
/// file format (the work journal).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Verify a frame's header and checksum and return its payload.
pub fn unframe(frame: &[u8]) -> AmcResult<&[u8]> {
    if frame.len() < FRAME_HEADER {
        return Err(AmcError::Corruption("frame shorter than header".into()));
    }
    let len = u32::from_le_bytes(frame[0..4].try_into().expect("4 bytes")) as usize;
    if frame.len() != FRAME_HEADER + len {
        return Err(AmcError::Corruption(format!(
            "frame length mismatch: header says {len}, frame has {}",
            frame.len() - FRAME_HEADER
        )));
    }
    let stored = u64::from_le_bytes(frame[4..12].try_into().expect("8 bytes"));
    let payload = &frame[FRAME_HEADER..];
    if fnv1a(payload) != stored {
        return Err(AmcError::Corruption("frame checksum mismatch".into()));
    }
    Ok(payload)
}

/// What [`DurableFile::open`] found on disk.
#[derive(Debug)]
pub struct Opened {
    /// The file handle, positioned for appends.
    pub file: DurableFile,
    /// Every intact frame, front to back, as full frame bytes (header
    /// included) — the exact representation [`crate::LogManager`] keeps in
    /// its stable prefix.
    pub frames: Vec<Vec<u8>>,
    /// `true` when a torn final frame (incomplete bytes or a trailing
    /// checksum failure) was truncated away during the scan.
    pub torn_truncated: bool,
}

/// An append-only file of checksummed frames.
///
/// Tracks the byte offset of every frame so the in-memory log's
/// truncations ([`crate::LogManager::truncate_torn_tail`],
/// [`crate::LogManager::truncate_before`]) can be mirrored to disk.
#[derive(Debug)]
pub struct DurableFile {
    file: File,
    path: PathBuf,
    /// Byte offset where frame `i` starts; the file ends at `end`.
    offsets: Vec<u64>,
    end: u64,
}

impl DurableFile {
    /// Open (creating if absent) the frame file at `path`, scanning and
    /// validating its contents. See the module docs for the torn-tail /
    /// mid-log-corruption classification.
    pub fn open(path: impl AsRef<Path>) -> AmcResult<Opened> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| AmcError::TransientIo(format!("open {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| AmcError::TransientIo(format!("read {}: {e}", path.display())))?;

        // Pass 1: split into physically complete frames; anything after
        // the last complete frame is a torn append.
        let mut offsets = Vec::new();
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut pos = 0u64;
        let total = bytes.len() as u64;
        let mut torn = false;
        while pos < total {
            let rest = &bytes[pos as usize..];
            if rest.len() < FRAME_HEADER {
                torn = true;
                break;
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as u64;
            if pos + FRAME_HEADER as u64 + len > total {
                // The header (possibly itself garbage from a torn write)
                // promises more bytes than the file holds.
                torn = true;
                break;
            }
            let frame_len = FRAME_HEADER + len as usize;
            offsets.push(pos);
            frames.push(rest[..frame_len].to_vec());
            pos += frame_len as u64;
        }

        // Pass 2: checksum classification — trailing failure is a torn
        // write, anything earlier is fatal.
        let mut first_bad = None;
        for (i, f) in frames.iter().enumerate() {
            if unframe(f).is_err() {
                first_bad = Some(i);
                break;
            }
        }
        match first_bad {
            None => {}
            Some(i) if i + 1 == frames.len() => {
                frames.pop();
                pos = offsets.pop().expect("frame had an offset");
                torn = true;
            }
            Some(i) => {
                return Err(AmcError::Corruption(format!(
                    "mid-log corruption in {} at frame {i} (not a torn tail; {} frames follow)",
                    path.display(),
                    frames.len() - i - 1
                )));
            }
        }

        let mut durable = DurableFile {
            file,
            path,
            offsets,
            end: pos,
        };
        if torn && pos < total {
            durable.physically_truncate(pos)?;
        }
        Ok(Opened {
            file: durable,
            frames,
            torn_truncated: torn,
        })
    }

    /// The path this file lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of frames currently on disk.
    pub fn frame_count(&self) -> usize {
        self.offsets.len()
    }

    /// Append one already-framed record (no fsync — call
    /// [`DurableFile::sync`] at the durability barrier).
    ///
    /// # Panics
    /// On I/O failure (see the module docs' failure model).
    pub fn append(&mut self, frame: &[u8]) {
        self.file
            .seek(SeekFrom::Start(self.end))
            .and_then(|_| self.file.write_all(frame))
            .unwrap_or_else(|e| panic!("WAL append to {}: {e}", self.path.display()));
        self.offsets.push(self.end);
        self.end += frame.len() as u64;
    }

    /// Flush appended frames to the medium (`fsync`). This is the
    /// durability barrier a [`force`](crate::LogManager::force) pays for.
    ///
    /// # Panics
    /// On I/O failure (see the module docs' failure model).
    pub fn sync(&mut self) {
        self.file
            .sync_data()
            .unwrap_or_else(|e| panic!("WAL fsync of {}: {e}", self.path.display()));
    }

    /// A second handle to the same open file, for issuing `fsync` from
    /// another thread (a group-commit syncer) while this handle keeps
    /// appending. `sync_data` on the clone flushes every byte already
    /// written through either handle — file data is shared; only the seek
    /// cursor is per-handle, and [`DurableFile::append`] never relies on
    /// the cursor (it seeks explicitly on every write).
    pub fn sync_handle(&self) -> std::io::Result<File> {
        self.file.try_clone()
    }

    /// Truncate the file to its first `keep` frames (mirrors a torn-tail
    /// pop of the in-memory stable prefix).
    ///
    /// # Panics
    /// On I/O failure.
    pub fn truncate_frames(&mut self, keep: usize) {
        if keep >= self.offsets.len() {
            return;
        }
        let new_end = self.offsets[keep];
        self.offsets.truncate(keep);
        self.physically_truncate(new_end)
            .unwrap_or_else(|e| panic!("WAL truncate of {}: {e}", self.path.display()));
    }

    /// Replace the file's whole contents with `frames` (mirrors prefix
    /// reclamation or a simulated partial force). Syncs before returning.
    ///
    /// # Panics
    /// On I/O failure.
    pub fn rewrite(&mut self, frames: &[Vec<u8>]) {
        self.offsets.clear();
        self.end = 0;
        self.physically_truncate(0)
            .unwrap_or_else(|e| panic!("WAL rewrite of {}: {e}", self.path.display()));
        for f in frames {
            self.append(f);
        }
        self.sync();
    }

    fn physically_truncate(&mut self, len: u64) -> AmcResult<()> {
        self.end = len;
        self.file
            .set_len(len)
            .and_then(|_| self.file.sync_data())
            .map_err(|e| AmcError::TransientIo(format!("truncate {}: {e}", self.path.display())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use amc_types::LocalTxnId;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amc-wal-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn rec(n: u64) -> Vec<u8> {
        LogRecord::Begin {
            txn: LocalTxnId::new(n),
        }
        .encode()
    }

    #[test]
    fn roundtrips_frames_across_reopen() {
        let path = tmp("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let mut opened = DurableFile::open(&path).unwrap();
        assert!(opened.frames.is_empty());
        opened.file.append(&rec(1));
        opened.file.append(&rec(2));
        opened.file.sync();
        let reopened = DurableFile::open(&path).unwrap();
        assert_eq!(reopened.frames, vec![rec(1), rec(2)]);
        assert!(!reopened.torn_truncated);
    }

    #[test]
    fn torn_partial_append_is_truncated() {
        let path = tmp("torn-partial.wal");
        let _ = std::fs::remove_file(&path);
        let mut opened = DurableFile::open(&path).unwrap();
        opened.file.append(&rec(1));
        opened.file.sync();
        drop(opened);
        // Simulate a torn append: half of a second frame.
        let half = &rec(2)[..7];
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(half).unwrap();
        drop(f);
        let reopened = DurableFile::open(&path).unwrap();
        assert!(reopened.torn_truncated);
        assert_eq!(reopened.frames, vec![rec(1)]);
        // The file itself was repaired: a third open is clean.
        let again = DurableFile::open(&path).unwrap();
        assert!(!again.torn_truncated);
        assert_eq!(again.frames.len(), 1);
    }

    #[test]
    fn trailing_checksum_failure_is_a_torn_tail() {
        let path = tmp("torn-checksum.wal");
        let _ = std::fs::remove_file(&path);
        let mut opened = DurableFile::open(&path).unwrap();
        opened.file.append(&rec(1));
        let mut bad = rec(2);
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        opened.file.append(&bad);
        opened.file.sync();
        drop(opened);
        let reopened = DurableFile::open(&path).unwrap();
        assert!(reopened.torn_truncated);
        assert_eq!(reopened.frames, vec![rec(1)]);
    }

    #[test]
    fn mid_log_corruption_is_fatal() {
        let path = tmp("mid-corrupt.wal");
        let _ = std::fs::remove_file(&path);
        let mut opened = DurableFile::open(&path).unwrap();
        let mut bad = rec(1);
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        opened.file.append(&bad);
        opened.file.append(&rec(2));
        opened.file.sync();
        drop(opened);
        let err = DurableFile::open(&path).unwrap_err();
        assert!(
            matches!(err, AmcError::Corruption(ref m) if m.contains("mid-log")),
            "{err:?}"
        );
    }

    #[test]
    fn truncate_frames_mirrors_a_pop() {
        let path = tmp("truncate.wal");
        let _ = std::fs::remove_file(&path);
        let mut opened = DurableFile::open(&path).unwrap();
        opened.file.append(&rec(1));
        opened.file.append(&rec(2));
        opened.file.sync();
        opened.file.truncate_frames(1);
        drop(opened);
        let reopened = DurableFile::open(&path).unwrap();
        assert_eq!(reopened.frames, vec![rec(1)]);
    }

    #[test]
    fn rewrite_replaces_contents() {
        let path = tmp("rewrite.wal");
        let _ = std::fs::remove_file(&path);
        let mut opened = DurableFile::open(&path).unwrap();
        opened.file.append(&rec(1));
        opened.file.append(&rec(2));
        opened.file.sync();
        opened.file.rewrite(&[rec(9)]);
        drop(opened);
        let reopened = DurableFile::open(&path).unwrap();
        assert_eq!(reopened.frames, vec![rec(9)]);
    }

    #[test]
    fn frame_and_unframe_roundtrip() {
        let payload = b"not a log record at all";
        let f = frame(payload);
        assert_eq!(unframe(&f).unwrap(), payload);
        let mut torn = f.clone();
        torn.pop();
        assert!(unframe(&torn).is_err());
        let mut flipped = f;
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(unframe(&flipped).is_err());
    }
}
