//! Operation histories and the conflict-graph serializability check.
//!
//! The federation records every operation it executes as an [`OpEvent`]
//! with a per-site sequence number (the local execution order). Global
//! conflict-serializability then reduces to acyclicity of the graph with an
//! edge `Ti -> Tj` whenever an operation of `Ti` precedes a *non-commuting*
//! operation of `Tj` at some site — the multi-level L1 conflict definition
//! of §4.1 (use read/write conflicts instead and you get the classical
//! check; both are supported).

use amc_types::{GlobalTxnId, GlobalVerdict, Operation, SiteId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// One executed operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpEvent {
    /// Owning global transaction.
    pub gtx: GlobalTxnId,
    /// Site it ran on.
    pub site: SiteId,
    /// Per-site execution sequence number (monotone within a site).
    pub seq: u64,
    /// The operation.
    pub op: Operation,
}

/// Why a history is not serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerializabilityError {
    /// A cycle in the conflict graph, as a list of transactions.
    pub cycle: Vec<GlobalTxnId>,
}

impl std::fmt::Display for SerializabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "conflict cycle: ")?;
        for (i, t) in self.cycle.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// How conflicts are defined for the check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictDefinition {
    /// Semantic: non-commuting operations conflict (§4.1).
    Commutativity,
    /// Classical read/write conflicts (increments treated as writes).
    ReadWrite,
}

impl ConflictDefinition {
    fn conflicts(&self, a: &Operation, b: &Operation) -> bool {
        match self {
            ConflictDefinition::Commutativity => !a.commutes_with(b),
            ConflictDefinition::ReadWrite => {
                a.object() == b.object() && (a.is_update() || b.is_update())
            }
        }
    }
}

/// A recorded execution history.
#[derive(Debug, Clone, Default)]
pub struct History {
    events: Vec<OpEvent>,
    outcomes: HashMap<GlobalTxnId, GlobalVerdict>,
}

impl History {
    /// Empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an executed operation.
    pub fn record_op(&mut self, event: OpEvent) {
        self.events.push(event);
    }

    /// True when `gtx` already has recorded events at `site`.
    ///
    /// Vote replies are idempotent: a coordinator inquiry can re-fetch a
    /// site's cached yes vote, and recording the site's operations a
    /// second time (with fresh sequence numbers) would fabricate conflict
    /// edges in both directions — a phantom cycle the serializability
    /// oracle then reports. Recorders must check this before appending.
    pub fn has_events_for(&self, gtx: GlobalTxnId, site: SiteId) -> bool {
        self.events.iter().any(|e| e.gtx == gtx && e.site == site)
    }

    /// Record a global transaction's final verdict.
    pub fn set_outcome(&mut self, gtx: GlobalTxnId, verdict: GlobalVerdict) {
        self.outcomes.insert(gtx, verdict);
    }

    /// All events (record order).
    pub fn events(&self) -> &[OpEvent] {
        &self.events
    }

    /// Outcome of a transaction, if decided.
    pub fn outcome(&self, gtx: GlobalTxnId) -> Option<GlobalVerdict> {
        self.outcomes.get(&gtx).copied()
    }

    /// Committed transactions, ascending.
    pub fn committed(&self) -> Vec<GlobalTxnId> {
        let mut out: Vec<GlobalTxnId> = self
            .outcomes
            .iter()
            .filter(|(_, v)| **v == GlobalVerdict::Commit)
            .map(|(g, _)| *g)
            .collect();
        out.sort();
        out
    }

    /// Build the conflict graph over **committed** transactions.
    pub fn conflict_edges(&self, def: ConflictDefinition) -> BTreeSet<(GlobalTxnId, GlobalTxnId)> {
        let committed: BTreeSet<GlobalTxnId> = self.committed().into_iter().collect();
        // Group events per site, ordered by seq.
        let mut per_site: BTreeMap<SiteId, Vec<&OpEvent>> = BTreeMap::new();
        for e in &self.events {
            if committed.contains(&e.gtx) {
                per_site.entry(e.site).or_default().push(e);
            }
        }
        let mut edges = BTreeSet::new();
        for events in per_site.values_mut() {
            events.sort_by_key(|e| e.seq);
            for (i, a) in events.iter().enumerate() {
                for b in events.iter().skip(i + 1) {
                    if a.gtx != b.gtx && def.conflicts(&a.op, &b.op) {
                        edges.insert((a.gtx, b.gtx));
                    }
                }
            }
        }
        edges
    }

    /// Check conflict-serializability of the committed transactions.
    /// Returns a valid serialization order on success.
    pub fn check_serializable(
        &self,
        def: ConflictDefinition,
    ) -> Result<Vec<GlobalTxnId>, SerializabilityError> {
        let nodes = self.committed();
        let edges = self.conflict_edges(def);
        let mut adj: BTreeMap<GlobalTxnId, Vec<GlobalTxnId>> = BTreeMap::new();
        let mut indegree: BTreeMap<GlobalTxnId, usize> = nodes.iter().map(|n| (*n, 0)).collect();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
            *indegree.entry(*b).or_insert(0) += 1;
        }
        // Kahn's algorithm; deterministic by picking the smallest id first.
        let mut order = Vec::with_capacity(nodes.len());
        let mut ready: BTreeSet<GlobalTxnId> = indegree
            .iter()
            .filter(|(_, d)| **d == 0)
            .map(|(n, _)| *n)
            .collect();
        while let Some(&n) = ready.iter().next() {
            ready.remove(&n);
            order.push(n);
            for m in adj.get(&n).cloned().unwrap_or_default() {
                let d = indegree.get_mut(&m).expect("edge endpoint is a node");
                *d -= 1;
                if *d == 0 {
                    ready.insert(m);
                }
            }
        }
        if order.len() == nodes.len() {
            Ok(order)
        } else {
            // Extract one cycle for the report: walk successors among the
            // unresolved nodes.
            let stuck: BTreeSet<GlobalTxnId> = nodes
                .iter()
                .copied()
                .filter(|n| !order.contains(n))
                .collect();
            let mut cycle = Vec::new();
            if let Some(&start) = stuck.iter().next() {
                let mut cur = start;
                loop {
                    cycle.push(cur);
                    let next = adj
                        .get(&cur)
                        .into_iter()
                        .flatten()
                        .copied()
                        .find(|m| stuck.contains(m));
                    match next {
                        Some(n) if cycle.contains(&n) => break,
                        Some(n) => cur = n,
                        None => break,
                    }
                }
            }
            Err(SerializabilityError { cycle })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::Value;

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }
    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }
    fn obj(n: u64) -> amc_types::ObjectId {
        amc_types::ObjectId::new(n)
    }

    fn ev(g: u64, s: u32, seq: u64, op: Operation) -> OpEvent {
        OpEvent {
            gtx: gtx(g),
            site: site(s),
            seq,
            op,
        }
    }

    fn read(o: u64) -> Operation {
        Operation::Read { obj: obj(o) }
    }
    fn write(o: u64) -> Operation {
        Operation::Write {
            obj: obj(o),
            value: Value::ZERO,
        }
    }
    fn incr(o: u64) -> Operation {
        Operation::Increment {
            obj: obj(o),
            delta: 1,
        }
    }

    fn committed_history(events: Vec<OpEvent>) -> History {
        let mut h = History::new();
        let mut seen = BTreeSet::new();
        for e in &events {
            seen.insert(e.gtx);
        }
        for e in events {
            h.record_op(e);
        }
        for g in seen {
            h.set_outcome(g, GlobalVerdict::Commit);
        }
        h
    }

    #[test]
    fn serial_history_is_serializable() {
        let h = committed_history(vec![
            ev(1, 1, 1, write(1)),
            ev(1, 2, 1, write(2)),
            ev(2, 1, 2, write(1)),
            ev(2, 2, 2, write(2)),
        ]);
        let order = h
            .check_serializable(ConflictDefinition::Commutativity)
            .unwrap();
        assert_eq!(order, vec![gtx(1), gtx(2)]);
    }

    #[test]
    fn crossed_order_across_sites_is_a_cycle() {
        // Site 1 orders T1 before T2 on x; site 2 orders T2 before T1 on y.
        let h = committed_history(vec![
            ev(1, 1, 1, write(1)),
            ev(2, 1, 2, write(1)),
            ev(2, 2, 1, write(2)),
            ev(1, 2, 2, write(2)),
        ]);
        let err = h
            .check_serializable(ConflictDefinition::Commutativity)
            .unwrap_err();
        assert!(
            err.cycle.contains(&gtx(1)) && err.cycle.contains(&gtx(2)),
            "{err}"
        );
    }

    #[test]
    fn commuting_increments_create_no_edges() {
        // The Fig. 8 interleaving: crossed increments commute, so the same
        // crossed pattern that fails for writes passes for increments.
        let h = committed_history(vec![
            ev(1, 1, 1, incr(1)),
            ev(2, 1, 2, incr(1)),
            ev(2, 2, 1, incr(2)),
            ev(1, 2, 2, incr(2)),
        ]);
        assert!(h
            .conflict_edges(ConflictDefinition::Commutativity)
            .is_empty());
        h.check_serializable(ConflictDefinition::Commutativity)
            .unwrap();
        // Under the classical definition the same history is rejected —
        // semantic conflicts strictly enlarge the admissible set (§4.1).
        assert!(h.check_serializable(ConflictDefinition::ReadWrite).is_err());
    }

    #[test]
    fn reads_do_not_conflict_with_reads() {
        let h = committed_history(vec![
            ev(1, 1, 1, read(1)),
            ev(2, 1, 2, read(1)),
            ev(2, 2, 1, read(2)),
            ev(1, 2, 2, read(2)),
        ]);
        assert!(h.conflict_edges(ConflictDefinition::ReadWrite).is_empty());
    }

    #[test]
    fn aborted_transactions_are_excluded() {
        let mut h = History::new();
        h.record_op(ev(1, 1, 1, write(1)));
        h.record_op(ev(2, 1, 2, write(1)));
        h.set_outcome(gtx(1), GlobalVerdict::Commit);
        h.set_outcome(gtx(2), GlobalVerdict::Abort);
        assert!(h
            .conflict_edges(ConflictDefinition::Commutativity)
            .is_empty());
        assert_eq!(h.committed(), vec![gtx(1)]);
        assert_eq!(h.outcome(gtx(2)), Some(GlobalVerdict::Abort));
    }

    #[test]
    fn three_cycle_detected() {
        let h = committed_history(vec![
            // T1 < T2 on site 1, T2 < T3 on site 2, T3 < T1 on site 3.
            ev(1, 1, 1, write(1)),
            ev(2, 1, 2, write(1)),
            ev(2, 2, 1, write(2)),
            ev(3, 2, 2, write(2)),
            ev(3, 3, 1, write(3)),
            ev(1, 3, 2, write(3)),
        ]);
        let err = h
            .check_serializable(ConflictDefinition::Commutativity)
            .unwrap_err();
        assert_eq!(err.cycle.len(), 3, "{err}");
    }

    #[test]
    fn empty_history_is_trivially_serializable() {
        let h = History::new();
        assert_eq!(
            h.check_serializable(ConflictDefinition::Commutativity)
                .unwrap(),
            Vec::<GlobalTxnId>::new()
        );
    }
}
