//! The all-or-nothing checker.
//!
//! Atomic commitment (§3): "a global transaction is atomically committed or
//! aborted if all its subtransactions in the local databases follow the
//! same global decision". The communication managers leave durable
//! evidence — forward and undo markers — at every site; this module audits
//! that evidence against the coordinator's verdicts.

use amc_net::marker::{forward_marker, undo_marker};
use amc_types::{GlobalTxnId, GlobalVerdict, ObjectId, SiteId, Value};
use std::collections::BTreeMap;

/// One detected atomicity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomicityViolation {
    /// A committed transaction's effects are missing at a participant.
    MissingCommit {
        /// The transaction.
        gtx: GlobalTxnId,
        /// The participant without a forward marker.
        site: SiteId,
    },
    /// An aborted transaction left a committed forward without an undo.
    DanglingForward {
        /// The transaction.
        gtx: GlobalTxnId,
        /// The participant with a forward marker but no undo marker.
        site: SiteId,
    },
    /// An undo marker exists for a transaction that committed globally.
    SpuriousUndo {
        /// The transaction.
        gtx: GlobalTxnId,
        /// The offending participant.
        site: SiteId,
    },
}

/// Audit marker evidence.
///
/// * `dumps` — final committed state per participant site (from
///   `LocalEngine::dump`), including marker objects;
/// * `verdicts` — the coordinator's decision per global transaction;
/// * `participants` — which sites each transaction performed **updates**
///   at (read-only participants use the read-only optimization and write
///   no markers — exclude them).
///
/// 2PC federations leave no markers; call this only for the two portable
/// protocols (whose managers write them).
pub fn check_atomicity(
    dumps: &BTreeMap<SiteId, BTreeMap<ObjectId, Value>>,
    verdicts: &BTreeMap<GlobalTxnId, GlobalVerdict>,
    participants: &BTreeMap<GlobalTxnId, Vec<SiteId>>,
) -> Vec<AtomicityViolation> {
    let mut violations = Vec::new();
    for (gtx, verdict) in verdicts {
        let empty = Vec::new();
        let sites = participants.get(gtx).unwrap_or(&empty);
        for site in sites {
            let Some(dump) = dumps.get(site) else {
                continue;
            };
            let fwd = dump.contains_key(&forward_marker(*gtx));
            let undo = dump.contains_key(&undo_marker(*gtx));
            match verdict {
                GlobalVerdict::Commit => {
                    if !fwd {
                        violations.push(AtomicityViolation::MissingCommit {
                            gtx: *gtx,
                            site: *site,
                        });
                    }
                    if undo {
                        violations.push(AtomicityViolation::SpuriousUndo {
                            gtx: *gtx,
                            site: *site,
                        });
                    }
                }
                GlobalVerdict::Abort => {
                    if fwd && !undo {
                        violations.push(AtomicityViolation::DanglingForward {
                            gtx: *gtx,
                            site: *site,
                        });
                    }
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }
    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }

    fn setup(
        fwd: &[(u64, u32)],
        undo: &[(u64, u32)],
    ) -> BTreeMap<SiteId, BTreeMap<ObjectId, Value>> {
        let mut dumps: BTreeMap<SiteId, BTreeMap<ObjectId, Value>> = BTreeMap::new();
        for s in 1..=3u32 {
            dumps.insert(site(s), BTreeMap::new());
        }
        for &(g, s) in fwd {
            dumps
                .get_mut(&site(s))
                .unwrap()
                .insert(forward_marker(gtx(g)), Value::ZERO);
        }
        for &(g, s) in undo {
            dumps
                .get_mut(&site(s))
                .unwrap()
                .insert(undo_marker(gtx(g)), Value::ZERO);
        }
        dumps
    }

    #[test]
    fn clean_commit_passes() {
        let dumps = setup(&[(1, 1), (1, 2)], &[]);
        let verdicts = BTreeMap::from([(gtx(1), GlobalVerdict::Commit)]);
        let participants = BTreeMap::from([(gtx(1), vec![site(1), site(2)])]);
        assert!(check_atomicity(&dumps, &verdicts, &participants).is_empty());
    }

    #[test]
    fn partial_commit_is_flagged() {
        let dumps = setup(&[(1, 1)], &[]); // site 2 missing
        let verdicts = BTreeMap::from([(gtx(1), GlobalVerdict::Commit)]);
        let participants = BTreeMap::from([(gtx(1), vec![site(1), site(2)])]);
        let v = check_atomicity(&dumps, &verdicts, &participants);
        assert_eq!(
            v,
            vec![AtomicityViolation::MissingCommit {
                gtx: gtx(1),
                site: site(2)
            }]
        );
    }

    #[test]
    fn clean_abort_with_undo_passes() {
        // Site 1 committed locally then undid; site 2 never committed.
        let dumps = setup(&[(1, 1)], &[(1, 1)]);
        let verdicts = BTreeMap::from([(gtx(1), GlobalVerdict::Abort)]);
        let participants = BTreeMap::from([(gtx(1), vec![site(1), site(2)])]);
        assert!(check_atomicity(&dumps, &verdicts, &participants).is_empty());
    }

    #[test]
    fn dangling_forward_after_abort_is_flagged() {
        let dumps = setup(&[(1, 1)], &[]);
        let verdicts = BTreeMap::from([(gtx(1), GlobalVerdict::Abort)]);
        let participants = BTreeMap::from([(gtx(1), vec![site(1)])]);
        let v = check_atomicity(&dumps, &verdicts, &participants);
        assert_eq!(
            v,
            vec![AtomicityViolation::DanglingForward {
                gtx: gtx(1),
                site: site(1)
            }]
        );
    }

    #[test]
    fn spurious_undo_after_commit_is_flagged() {
        let dumps = setup(&[(1, 1)], &[(1, 1)]);
        let verdicts = BTreeMap::from([(gtx(1), GlobalVerdict::Commit)]);
        let participants = BTreeMap::from([(gtx(1), vec![site(1)])]);
        let v = check_atomicity(&dumps, &verdicts, &participants);
        assert_eq!(
            v,
            vec![AtomicityViolation::SpuriousUndo {
                gtx: gtx(1),
                site: site(1)
            }]
        );
    }
}
