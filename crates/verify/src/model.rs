//! The reference interpreter.
//!
//! A plain in-memory map with exactly the operation semantics the engines
//! implement. Every correctness check ultimately reduces to "does the real
//! federation agree with this model under some serial order".

use amc_types::{AmcError, AmcResult, ObjectId, OpResult, Operation, Value};
use std::collections::BTreeMap;

/// Reference database state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ModelDb {
    state: BTreeMap<ObjectId, Value>,
}

impl ModelDb {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Model pre-loaded with data.
    pub fn with(data: impl IntoIterator<Item = (ObjectId, Value)>) -> Self {
        ModelDb {
            state: data.into_iter().collect(),
        }
    }

    /// Apply one operation with engine-identical semantics.
    pub fn apply(&mut self, op: &Operation) -> AmcResult<OpResult> {
        match *op {
            Operation::Read { obj } => self
                .state
                .get(&obj)
                .map(|v| OpResult::Value(*v))
                .ok_or(AmcError::NotFound(obj)),
            Operation::Write { obj, value } => {
                if !self.state.contains_key(&obj) {
                    return Err(AmcError::NotFound(obj));
                }
                self.state.insert(obj, value);
                Ok(OpResult::Done)
            }
            Operation::Increment { obj, delta } => {
                let v = self
                    .state
                    .get(&obj)
                    .copied()
                    .ok_or(AmcError::NotFound(obj))?;
                self.state.insert(obj, v.incremented(delta));
                Ok(OpResult::Done)
            }
            Operation::Insert { obj, value } => {
                if self.state.contains_key(&obj) {
                    return Err(AmcError::AlreadyExists(obj));
                }
                self.state.insert(obj, value);
                Ok(OpResult::Done)
            }
            Operation::Delete { obj } => self
                .state
                .remove(&obj)
                .map(|_| OpResult::Done)
                .ok_or(AmcError::NotFound(obj)),
            Operation::Reserve { obj, amount } => {
                let v = self
                    .state
                    .get(&obj)
                    .copied()
                    .ok_or(AmcError::NotFound(obj))?;
                if v.counter < amount as i64 {
                    return Err(AmcError::InsufficientStock {
                        obj,
                        have: v.counter,
                        want: amount,
                    });
                }
                self.state.insert(obj, v.incremented(-(amount as i64)));
                Ok(OpResult::Done)
            }
        }
    }

    /// Apply a whole program; stops at the first failing operation and
    /// rolls nothing back (callers model transactions themselves).
    pub fn apply_all(&mut self, ops: &[Operation]) -> AmcResult<()> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Apply a program transactionally: all ops or none.
    pub fn apply_atomic(&mut self, ops: &[Operation]) -> AmcResult<()> {
        let snapshot = self.state.clone();
        for op in ops {
            if let Err(e) = self.apply(op) {
                self.state = snapshot;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Current value of an object.
    pub fn get(&self, obj: ObjectId) -> Option<Value> {
        self.state.get(&obj).copied()
    }

    /// Set a value directly (test setup).
    pub fn set(&mut self, obj: ObjectId, value: Value) {
        self.state.insert(obj, value);
    }

    /// The full state (for equality checks).
    pub fn state(&self) -> &BTreeMap<ObjectId, Value> {
        &self.state
    }

    /// Consume into the state map.
    pub fn into_state(self) -> BTreeMap<ObjectId, Value> {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn v(n: i64) -> Value {
        Value::counter(n)
    }

    #[test]
    fn semantics_match_engine_contract() {
        let mut m = ModelDb::with([(obj(1), v(10))]);
        assert_eq!(
            m.apply(&Operation::Read { obj: obj(1) }).unwrap(),
            OpResult::Value(v(10))
        );
        assert!(matches!(
            m.apply(&Operation::Read { obj: obj(2) }),
            Err(AmcError::NotFound(_))
        ));
        m.apply(&Operation::Increment {
            obj: obj(1),
            delta: 5,
        })
        .unwrap();
        assert_eq!(m.get(obj(1)), Some(v(15)));
        assert!(matches!(
            m.apply(&Operation::Insert {
                obj: obj(1),
                value: v(0)
            }),
            Err(AmcError::AlreadyExists(_))
        ));
        m.apply(&Operation::Delete { obj: obj(1) }).unwrap();
        assert!(matches!(
            m.apply(&Operation::Write {
                obj: obj(1),
                value: v(0)
            }),
            Err(AmcError::NotFound(_))
        ));
    }

    #[test]
    fn apply_atomic_rolls_back_on_failure() {
        let mut m = ModelDb::with([(obj(1), v(10))]);
        let before = m.clone();
        let err = m.apply_atomic(&[
            Operation::Write {
                obj: obj(1),
                value: v(99),
            },
            Operation::Read { obj: obj(404) }, // fails
        ]);
        assert!(err.is_err());
        assert_eq!(m, before);
    }

    #[test]
    fn apply_atomic_commits_on_success() {
        let mut m = ModelDb::with([(obj(1), v(10))]);
        m.apply_atomic(&[
            Operation::Increment {
                obj: obj(1),
                delta: 1,
            },
            Operation::Insert {
                obj: obj(2),
                value: v(2),
            },
        ])
        .unwrap();
        assert_eq!(m.get(obj(1)), Some(v(11)));
        assert_eq!(m.get(obj(2)), Some(v(2)));
    }
}
