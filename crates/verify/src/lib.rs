//! # amc-verify
//!
//! The testing oracle for experiment E6 and the integration suite. Nothing
//! here runs in the protocols' hot path — this crate exists to *check* what
//! the federation did:
//!
//! * [`model`] — a reference interpreter: apply operation programs to a
//!   plain map, the semantics every engine must agree with;
//! * [`history`] — a recorder of executed operations plus the conflict-
//!   graph serializability checker (cycle detection over non-commuting
//!   pairs, §2's "global serializability");
//! * [`atomicity`] — the all-or-nothing checker: a committed global
//!   transaction's effects are present at every participant, an aborted
//!   one's nowhere (§3's atomic commitment requirement);
//! * [`equivalence`] — the strongest check: replay the committed global
//!   transactions in a serialization order on the model and demand the
//!   result equals the federation's actual final state.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atomicity;
pub mod equivalence;
pub mod history;
pub mod model;

pub use atomicity::check_atomicity;
pub use equivalence::check_state_equivalence;
pub use history::{History, OpEvent, SerializabilityError};
pub use model::ModelDb;
