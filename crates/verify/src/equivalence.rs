//! Final-state equivalence: the strongest end-to-end check.
//!
//! Given the committed global transactions, a serialization order for them
//! (from [`crate::history::History::check_serializable`]), the initial
//! database state and each transaction's operation program, replay the
//! programs on the [`crate::model::ModelDb`] in that order and demand the
//! result equals the federation's actual final state (markers filtered
//! out). Passing this means the execution was not merely conflict-
//! serializable on paper — it *computed* the same answer as some serial
//! execution.

use crate::model::ModelDb;
use amc_net::marker::is_marker;
use amc_types::{GlobalTxnId, ObjectId, Operation, Value};
use std::collections::BTreeMap;

/// A detected divergence between the model and the federation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDivergence {
    /// The object that differs.
    pub obj: ObjectId,
    /// Model's value (`None` = absent).
    pub expected: Option<Value>,
    /// Federation's value (`None` = absent).
    pub actual: Option<Value>,
}

/// Replay `order` over `initial` and compare with `actual_state`.
///
/// `programs` maps each committed transaction to its full operation list
/// (all sites merged, in submit order). Marker objects in `actual_state`
/// are ignored. Returns every divergence (empty = equivalent).
pub fn check_state_equivalence(
    initial: &BTreeMap<ObjectId, Value>,
    order: &[GlobalTxnId],
    programs: &BTreeMap<GlobalTxnId, Vec<Operation>>,
    actual_state: &BTreeMap<ObjectId, Value>,
) -> Vec<StateDivergence> {
    let mut model = ModelDb::with(initial.clone());
    for gtx in order {
        if let Some(ops) = programs.get(gtx) {
            // Committed transactions must replay cleanly; a logical failure
            // here means the serialization order is wrong, which the
            // comparison below will expose as divergences.
            let _ = model.apply_atomic(ops);
        }
    }
    let expected = model.into_state();
    let mut divergences = Vec::new();
    let actual_filtered: BTreeMap<ObjectId, Value> = actual_state
        .iter()
        .filter(|(o, _)| !is_marker(**o))
        .map(|(o, v)| (*o, *v))
        .collect();
    for (obj, v) in &expected {
        match actual_filtered.get(obj) {
            Some(a) if a == v => {}
            other => divergences.push(StateDivergence {
                obj: *obj,
                expected: Some(*v),
                actual: other.copied(),
            }),
        }
    }
    for (obj, a) in &actual_filtered {
        if !expected.contains_key(obj) {
            divergences.push(StateDivergence {
                obj: *obj,
                expected: None,
                actual: Some(*a),
            });
        }
    }
    divergences
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_net::marker::forward_marker;

    fn obj(n: u64) -> ObjectId {
        ObjectId::new(n)
    }
    fn v(n: i64) -> Value {
        Value::counter(n)
    }
    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }

    #[test]
    fn matching_states_pass() {
        let initial = BTreeMap::from([(obj(1), v(10))]);
        let programs = BTreeMap::from([(
            gtx(1),
            vec![Operation::Increment {
                obj: obj(1),
                delta: 5,
            }],
        )]);
        let mut actual = BTreeMap::from([(obj(1), v(15))]);
        // Marker noise must be ignored.
        actual.insert(forward_marker(gtx(1)), v(0));
        assert!(check_state_equivalence(&initial, &[gtx(1)], &programs, &actual).is_empty());
    }

    #[test]
    fn divergence_is_reported() {
        let initial = BTreeMap::from([(obj(1), v(10))]);
        let programs = BTreeMap::from([(
            gtx(1),
            vec![Operation::Increment {
                obj: obj(1),
                delta: 5,
            }],
        )]);
        let actual = BTreeMap::from([(obj(1), v(14))]); // lost update
        let div = check_state_equivalence(&initial, &[gtx(1)], &programs, &actual);
        assert_eq!(
            div,
            vec![StateDivergence {
                obj: obj(1),
                expected: Some(v(15)),
                actual: Some(v(14)),
            }]
        );
    }

    #[test]
    fn extra_objects_are_divergences() {
        let initial = BTreeMap::new();
        let programs = BTreeMap::new();
        let actual = BTreeMap::from([(obj(9), v(1))]);
        let div = check_state_equivalence(&initial, &[], &programs, &actual);
        assert_eq!(div.len(), 1);
        assert_eq!(div[0].expected, None);
    }

    #[test]
    fn order_matters_for_non_commuting_programs() {
        let initial = BTreeMap::from([(obj(1), v(0))]);
        let programs = BTreeMap::from([
            (
                gtx(1),
                vec![Operation::Write {
                    obj: obj(1),
                    value: v(1),
                }],
            ),
            (
                gtx(2),
                vec![Operation::Write {
                    obj: obj(1),
                    value: v(2),
                }],
            ),
        ]);
        let actual_t2_last = BTreeMap::from([(obj(1), v(2))]);
        assert!(
            check_state_equivalence(&initial, &[gtx(1), gtx(2)], &programs, &actual_t2_last)
                .is_empty()
        );
        assert!(
            !check_state_equivalence(&initial, &[gtx(2), gtx(1)], &programs, &actual_t2_last)
                .is_empty()
        );
    }
}
