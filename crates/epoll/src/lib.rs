//! # amc-epoll
//!
//! The smallest readiness layer the event-loop runtime needs: a
//! level-triggered [`Poller`] over Linux `epoll(7)` and a cross-thread
//! [`Waker`] over `eventfd(2)`.
//!
//! The build environment has no registry access, so `mio` is not an
//! option; instead this crate binds the four syscall wrappers it needs
//! directly against the C library that `std` already links. The surface
//! mirrors the subset of mio's API the `amc-rpc` event loops use:
//! register/reregister/deregister an fd under a `u64` token, wait for
//! events, wake the loop from another thread.
//!
//! Everything is level-triggered on purpose: a reader that drains until
//! `WouldBlock` and a writer that flushes until `WouldBlock` need no
//! edge-tracking state, and a missed event is re-reported on the next
//! wait instead of being lost.

#![deny(missing_docs)]
#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

// The syscall wrappers, resolved at link time against the libc `std`
// already pulls in. Signatures match glibc exactly.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

// epoll interest/event bits (uapi/linux/eventpoll.h).
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0x8_0000;

const EFD_CLOEXEC: i32 = 0x8_0000;
const EFD_NONBLOCK: i32 = 0x800;

/// `struct epoll_event`. Packed: on x86-64 the kernel ABI has no padding
/// between `events` and `data`, and glibc declares the struct
/// `__attribute__((packed))` to match.
#[repr(C, packed)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// The fd is readable (or a peer hang-up is pending, which a read
    /// will surface as EOF).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// The fd is in an error/hang-up state; the owner should tear the
    /// connection down after draining what a read still returns.
    pub error: bool,
}

/// Which readiness a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report readable.
    pub readable: bool,
    /// Report writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP;
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// A level-triggered epoll instance.
pub struct Poller {
    epfd: RawFd,
}

// The fd is just an integer owned by this struct; epoll instances are
// documented thread-safe for concurrent ctl/wait.
unsafe impl Send for Poller {}
unsafe impl Sync for Poller {}

impl Poller {
    /// Create a poller.
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: Option<(u64, Interest)>) -> io::Result<()> {
        let mut ev = interest.map(|(token, i)| EpollEvent {
            events: i.bits(),
            data: token,
        });
        let ptr = ev
            .as_mut()
            .map(|e| e as *mut EpollEvent)
            .unwrap_or(std::ptr::null_mut());
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, ptr) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `fd` under `token`.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, Some((token, interest)))
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn reregister(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, Some((token, interest)))
    }

    /// Stop watching `fd`. Errors are swallowed: deregistering an
    /// already-closed fd is a no-op, not a failure.
    pub fn deregister(&self, fd: RawFd) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, None);
    }

    /// Block until at least one event is ready or `timeout` elapses
    /// (`None` blocks indefinitely). Fills `out` (cleared first) and
    /// returns the number of events. EINTR retries internally.
    pub fn wait(&self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        const CAP: usize = 256;
        let mut raw: [EpollEvent; CAP] = unsafe { std::mem::zeroed() };
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
        };
        loop {
            let n = unsafe { epoll_wait(self.epfd, raw.as_mut_ptr(), CAP as i32, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(err);
            }
            for ev in raw.iter().take(n as usize) {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            return Ok(n as usize);
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            close(self.epfd);
        }
    }
}

/// A cross-thread wake-up line for a [`Poller`]: an `eventfd` the owner
/// registers like any other fd. Any thread may [`Waker::wake`]; the loop
/// [`Waker::drain`]s on readiness.
pub struct Waker {
    fd: RawFd,
}

unsafe impl Send for Waker {}
unsafe impl Sync for Waker {}

impl Waker {
    /// Create a non-blocking eventfd.
    pub fn new() -> io::Result<Waker> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    /// The fd to register with the poller.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Make the poller's next (or current) wait return. Signal-safe,
    /// never blocks: the eventfd counter saturates rather than growing a
    /// queue.
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Consume pending wake-ups so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            read(self.fd, buf.as_mut_ptr(), 8);
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.fd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn reports_readability_on_a_socket_pair() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut a = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut b, _) = listener.accept().unwrap();
        b.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // Nothing written yet: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        a.write_all(b"hi").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 2);
    }

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new().unwrap());
        poller.register(waker.fd(), 1, Interest::READ).unwrap();

        let w = std::sync::Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake();
        });
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 1);
        waker.drain();
        t.join().unwrap();
        // Drained: the next wait is quiet again.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn write_interest_reports_writable_and_deregister_silences() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let s = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        s.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(s.as_raw_fd(), 3, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        poller.deregister(s.as_raw_fd());
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
