//! Leadership leases for standby coordinator replicas.
//!
//! The incumbent holds an implicit lease on every transaction it begins:
//! *a registered transaction must reach its decision within the lease
//! TTL*. A standby replica polls the acceptors' open-transaction reports;
//! an entry that stays open past the TTL means the incumbent missed its
//! lease (crashed, partitioned, or wedged) and the standby takes over
//! ballot leadership for exactly those transactions. Progress-based
//! leases need no extra heartbeat channel and are safe against false
//! positives by construction: a takeover on a *live* incumbent is
//! resolved by ballot ordering, never by the clock.

use amc_net::PaxosOpenEntry;
use amc_types::GlobalTxnId;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Tracks how long each open transaction has been open.
#[derive(Debug)]
pub struct StandbyMonitor {
    lease: Duration,
    first_seen: BTreeMap<GlobalTxnId, Instant>,
}

impl StandbyMonitor {
    /// A monitor that flags transactions open longer than `lease`.
    pub fn new(lease: Duration) -> Self {
        StandbyMonitor {
            lease,
            first_seen: BTreeMap::new(),
        }
    }

    /// Feed the latest open-transaction snapshot (from
    /// [`crate::ReplicaDriver::open_transactions`]) observed at `now`.
    /// Returns the entries whose lease has expired — the ones the standby
    /// must now finish. Entries that vanished from the snapshot (the
    /// incumbent finished them) are forgotten.
    pub fn observe(&mut self, open: &[PaxosOpenEntry], now: Instant) -> Vec<PaxosOpenEntry> {
        self.first_seen
            .retain(|g, _| open.iter().any(|e| e.gtx == *g));
        let mut expired = Vec::new();
        for e in open {
            let since = *self.first_seen.entry(e.gtx).or_insert(now);
            if now.duration_since(since) >= self.lease {
                expired.push(e.clone());
            }
        }
        expired
    }

    /// Number of transactions currently under observation.
    pub fn watched(&self) -> usize {
        self.first_seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::SiteId;

    fn entry(n: u64) -> PaxosOpenEntry {
        PaxosOpenEntry {
            gtx: GlobalTxnId::new(n),
            participants: vec![SiteId::new(1)],
        }
    }

    #[test]
    fn entries_expire_after_the_lease() {
        let mut m = StandbyMonitor::new(Duration::from_millis(100));
        let t0 = Instant::now();
        assert!(m.observe(&[entry(1)], t0).is_empty());
        // Still inside the lease.
        assert!(m
            .observe(&[entry(1)], t0 + Duration::from_millis(50))
            .is_empty());
        // Past it.
        let expired = m.observe(&[entry(1)], t0 + Duration::from_millis(150));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].gtx, GlobalTxnId::new(1));
    }

    #[test]
    fn finished_transactions_reset_their_clock() {
        let mut m = StandbyMonitor::new(Duration::from_millis(100));
        let t0 = Instant::now();
        m.observe(&[entry(1)], t0);
        // The incumbent finishes it; the id later reappears (a new run
        // reusing the id would be a bug elsewhere, but the monitor must
        // not carry the stale clock either way).
        m.observe(&[], t0 + Duration::from_millis(60));
        assert_eq!(m.watched(), 0);
        assert!(m
            .observe(&[entry(1)], t0 + Duration::from_millis(120))
            .is_empty());
    }

    #[test]
    fn expiry_is_per_transaction() {
        let mut m = StandbyMonitor::new(Duration::from_millis(100));
        let t0 = Instant::now();
        m.observe(&[entry(1)], t0);
        let expired = m.observe(&[entry(1), entry(2)], t0 + Duration::from_millis(110));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].gtx, GlobalTxnId::new(1));
    }
}
