//! Hosting a durable acceptor inside a site runtime.
//!
//! Co-location (Gray & Lamport §5): the 2f+1 acceptors are not separate
//! processes but live inside site servers. That buys the protocol's
//! signature message saving — a site's **vote reply doubles as the
//! ballot-0 phase-2a/2b exchange for its own instance**: the vote is
//! durably accepted in the co-located acceptor's log before the reply
//! leaves the process, so one round trip does both the 2PC vote and one
//! of the Paxos accepts.
//!
//! The host is runtime-agnostic. Both the TCP site server and the
//! in-process transport decorator wrap their normal dispatch like so:
//!
//! ```text
//! if let Some(reply) = host.pre_dispatch(&payload)? { return reply }
//! let reply = /* normal dispatch to the communication manager */;
//! host.post_dispatch(&reply)?;   // vote-as-accept; Err = superseded
//! ```

use crate::acceptor::DurableAcceptor;
use crate::ballot::Ballot;
use amc_net::{AdminReply, AdminRequest, Payload};
use amc_types::{AmcError, AmcResult, SiteId};
use parking_lot::Mutex;
use std::path::Path;

/// A durable acceptor mounted at one site.
pub struct AcceptorHost {
    site: SiteId,
    acceptor: Mutex<DurableAcceptor>,
}

impl AcceptorHost {
    /// Open the acceptor log at `path` (replaying any existing state) and
    /// mount it at `site`.
    pub fn open(site: SiteId, path: impl AsRef<Path>) -> AmcResult<AcceptorHost> {
        Ok(AcceptorHost {
            site,
            acceptor: Mutex::new(DurableAcceptor::open(path)?),
        })
    }

    /// The hosting site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Intercept a request before normal dispatch. `Ok(Some(reply))`
    /// means the message was fully handled by the acceptor; `Ok(None)`
    /// means it must continue to the communication manager.
    pub fn pre_dispatch(&self, payload: &Payload) -> AmcResult<Option<Payload>> {
        match payload {
            Payload::PaxosRegister { gtx, participants } => {
                self.acceptor.lock().register(*gtx, participants);
                Ok(Some(Payload::PaxosAck { gtx: *gtx }))
            }
            Payload::PaxosP1a { gtx, ballot } => {
                let out = self.acceptor.lock().promise(*gtx, Ballot(*ballot));
                Ok(Some(Payload::PaxosP1b {
                    gtx: *gtx,
                    ballot: *ballot,
                    promised: out.promised,
                    promised_up_to: out.promised_up_to.0,
                    participants: out.participants,
                    accepted: out
                        .accepted
                        .into_iter()
                        .map(|(s, b, v)| (s, b.0, v))
                        .collect(),
                }))
            }
            Payload::PaxosP2a {
                gtx,
                site,
                ballot,
                prepared,
            } => {
                let accepted = self
                    .acceptor
                    .lock()
                    .accept(*gtx, *site, Ballot(*ballot), *prepared);
                Ok(Some(Payload::PaxosP2b {
                    gtx: *gtx,
                    site: *site,
                    ballot: *ballot,
                    accepted,
                }))
            }
            Payload::PaxosDecided { gtx, verdict } => {
                self.acceptor.lock().note_decision(*gtx, *verdict);
                Ok(Some(Payload::PaxosAck { gtx: *gtx }))
            }
            Payload::Decision { gtx, verdict } => {
                // Piggyback: a participant's decision closes its
                // co-located acceptor's instances, no extra message.
                self.acceptor.lock().note_decision(*gtx, *verdict);
                Ok(None)
            }
            _ => Ok(None),
        }
    }

    /// Observe the reply produced by normal dispatch. A vote reply is
    /// durably accepted at ballot 0 for this site's own instance before
    /// it leaves the process; if a recovery ballot has already superseded
    /// ballot 0, the vote is refused and the site must NOT answer with a
    /// countable vote — the incumbent that receives the error falls into
    /// the recovery path instead of counting a vote the acceptors will
    /// ignore.
    ///
    /// The hook applies only to **registered** transactions: a 2PC
    /// work-round reply is also a `Vote`, and accepting it would durably
    /// record Prepared for a site that has not prepared. The incumbent
    /// registers between the work and prepare rounds, so exactly the
    /// prepare-round votes land here.
    pub fn post_dispatch(&self, reply: &Payload) -> AmcResult<()> {
        if let Payload::Vote { gtx, vote } = reply {
            let mut acceptor = self.acceptor.lock();
            if acceptor.state().participants(*gtx).is_none() {
                return Ok(());
            }
            let accepted = acceptor.accept(*gtx, self.site, Ballot::ZERO, vote.is_yes());
            if !accepted {
                return Err(AmcError::Protocol(format!(
                    "paxos: {gtx} vote at {} superseded by a recovery ballot",
                    self.site
                )));
            }
        }
        Ok(())
    }

    /// Intercept an admin request; `Some` when handled by the acceptor.
    pub fn admin_pre(&self, req: &AdminRequest) -> Option<AdminReply> {
        match req {
            AdminRequest::PaxosOpen => Some(AdminReply::PaxosOpen(
                self.acceptor.lock().state().open_entries(),
            )),
            _ => None,
        }
    }

    /// Inspect the underlying acceptor (tests and experiments).
    pub fn with_acceptor<R>(&self, f: impl FnOnce(&DurableAcceptor) -> R) -> R {
        f(&self.acceptor.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{GlobalTxnId, GlobalVerdict, LocalVote};

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }

    fn host(site: u32, tag: &str) -> AcceptorHost {
        let dir = std::env::temp_dir().join(format!("amc-paxos-host-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}-{site}.log"));
        let _ = std::fs::remove_file(&path);
        AcceptorHost::open(SiteId::new(site), path).unwrap()
    }

    #[test]
    fn register_then_vote_then_decision_closes_the_txn() {
        let h = host(1, "flow");
        let reply = h
            .pre_dispatch(&Payload::PaxosRegister {
                gtx: gtx(1),
                participants: vec![SiteId::new(1), SiteId::new(2)],
            })
            .unwrap()
            .unwrap();
        assert_eq!(reply, Payload::PaxosAck { gtx: gtx(1) });
        // The site's own vote reply is the ballot-0 accept.
        h.post_dispatch(&Payload::Vote {
            gtx: gtx(1),
            vote: LocalVote::Ready,
        })
        .unwrap();
        assert_eq!(
            h.with_acceptor(|a| a.state().accepted(gtx(1), SiteId::new(1))),
            Some((Ballot::ZERO, true))
        );
        assert_eq!(
            h.admin_pre(&AdminRequest::PaxosOpen),
            Some(AdminReply::PaxosOpen(vec![amc_net::PaxosOpenEntry {
                gtx: gtx(1),
                participants: vec![SiteId::new(1), SiteId::new(2)],
            }]))
        );
        // The ordinary decision payload both notes (pre) and continues to
        // the manager (None).
        let cont = h
            .pre_dispatch(&Payload::Decision {
                gtx: gtx(1),
                verdict: GlobalVerdict::Commit,
            })
            .unwrap();
        assert!(cont.is_none());
        assert_eq!(
            h.admin_pre(&AdminRequest::PaxosOpen),
            Some(AdminReply::PaxosOpen(vec![]))
        );
    }

    #[test]
    fn superseded_vote_is_refused() {
        let h = host(2, "superseded");
        h.pre_dispatch(&Payload::PaxosRegister {
            gtx: gtx(4),
            participants: vec![SiteId::new(2)],
        })
        .unwrap();
        // A recovery replica promised ballot (1, 9) before the vote landed.
        let p1b = h
            .pre_dispatch(&Payload::PaxosP1a {
                gtx: gtx(4),
                ballot: Ballot::new(1, 9).0,
            })
            .unwrap()
            .unwrap();
        assert!(matches!(p1b, Payload::PaxosP1b { promised: true, .. }));
        let err = h
            .post_dispatch(&Payload::Vote {
                gtx: gtx(4),
                vote: LocalVote::Ready,
            })
            .unwrap_err();
        assert!(matches!(err, AmcError::Protocol(_)));
    }

    #[test]
    fn unregistered_vote_is_not_treated_as_an_accept() {
        // 2PC's work-round submit reply is also a `Vote`; before the
        // incumbent registers the transaction it must pass through
        // without touching the acceptor log.
        let h = host(5, "work-round");
        h.post_dispatch(&Payload::Vote {
            gtx: gtx(8),
            vote: LocalVote::Ready,
        })
        .unwrap();
        assert_eq!(
            h.with_acceptor(|a| a.state().accepted(gtx(8), SiteId::new(5))),
            None
        );
        assert_eq!(h.with_acceptor(|a| a.frame_count()), 0);
    }

    #[test]
    fn non_paxos_payloads_pass_through() {
        let h = host(3, "pass");
        assert!(h
            .pre_dispatch(&Payload::Prepare { gtx: gtx(1) })
            .unwrap()
            .is_none());
        assert!(h.admin_pre(&AdminRequest::Ping).is_none());
        h.post_dispatch(&Payload::Finished { gtx: gtx(1) }).unwrap();
    }
}
