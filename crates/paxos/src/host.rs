//! Hosting a durable acceptor inside a site runtime.
//!
//! Co-location (Gray & Lamport §5): the 2f+1 acceptors are not separate
//! processes but live inside site servers. That buys the protocol's
//! signature message saving — a site's **vote reply doubles as the
//! ballot-0 phase-2a/2b exchange for its own instance**: the vote is
//! durably accepted in the co-located acceptor's log before the reply
//! leaves the process, so one round trip does both the 2PC vote and one
//! of the Paxos accepts.
//!
//! The host is runtime-agnostic. Both the TCP site server and the
//! in-process transport decorator wrap their normal dispatch like so:
//!
//! ```text
//! if let Some(reply) = host.pre_dispatch(&payload)? { return reply }
//! let reply = /* normal dispatch to the communication manager */;
//! host.post_dispatch(&reply)?;   // vote-as-accept; Err = superseded
//! ```

use crate::acceptor::DurableAcceptor;
use crate::ballot::Ballot;
use amc_net::{AdminReply, AdminRequest, Payload};
use amc_types::{AmcError, AmcResult, SiteId};
use parking_lot::{Condvar, Mutex};
use std::fs::File;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Group-commit for the acceptor log: concurrent appenders share one
/// fsync instead of paying one each (the `amc-wal` group-committer's
/// leader/follower pattern applied to the Paxos durability point).
///
/// Progress is measured in *frames appended*: a caller that appended
/// frame `n` waits until a completed fsync covers at least `n` frames.
/// The first waiter becomes the leader — it lingers briefly so followers
/// pile on, reads the high-water mark, fsyncs once on a cloned handle
/// (so appends under the acceptor lock continue concurrently), and
/// releases every waiter at or below the mark.
struct GroupSync {
    handle: File,
    linger: Duration,
    state: Mutex<SyncState>,
    cond: Condvar,
}

struct SyncState {
    /// Highest frame count any appender has announced.
    appended: usize,
    /// Frame count covered by a completed fsync.
    synced: usize,
    /// Whether a leader is currently lingering/fsyncing.
    syncing: bool,
    /// Completed group fsyncs (observability: batching factor is
    /// appends/fsyncs).
    fsyncs: u64,
}

impl GroupSync {
    fn new(handle: File, linger: Duration, already_durable: usize) -> GroupSync {
        GroupSync {
            handle,
            linger,
            state: Mutex::new(SyncState {
                appended: already_durable,
                synced: already_durable,
                syncing: false,
                fsyncs: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Block until a completed fsync covers at least `watermark` frames.
    fn wait_durable(&self, watermark: usize) {
        let mut st = self.state.lock();
        st.appended = st.appended.max(watermark);
        loop {
            if st.synced >= watermark {
                return;
            }
            if st.syncing {
                self.cond.wait(&mut st);
                continue;
            }
            // Leader: linger so concurrent appenders join the batch, then
            // pay one fsync for everything appended so far. The mark must
            // be read *before* the fsync — frames appended while the
            // fsync is in flight are not guaranteed covered by it.
            st.syncing = true;
            drop(st);
            if !self.linger.is_zero() {
                std::thread::sleep(self.linger);
            }
            let target = self.state.lock().appended;
            self.handle
                .sync_data()
                .expect("acceptor-log group fsync (medium gone; cannot ack accepts)");
            st = self.state.lock();
            st.synced = st.synced.max(target);
            st.syncing = false;
            st.fsyncs += 1;
            self.cond.notify_all();
        }
    }
}

/// A durable acceptor mounted at one site.
pub struct AcceptorHost {
    site: SiteId,
    acceptor: Mutex<DurableAcceptor>,
    group: Option<Arc<GroupSync>>,
}

impl AcceptorHost {
    /// Open the acceptor log at `path` (replaying any existing state) and
    /// mount it at `site`. Every record is fsynced individually.
    pub fn open(site: SiteId, path: impl AsRef<Path>) -> AmcResult<AcceptorHost> {
        Ok(AcceptorHost {
            site,
            acceptor: Mutex::new(DurableAcceptor::open(path)?),
            group: None,
        })
    }

    /// Like [`AcceptorHost::open`], but batch log fsyncs through a
    /// `linger`-long group-commit window: an accept's reply is still
    /// released only after its record is covered by a completed fsync,
    /// but concurrent accepts share that fsync. `None` keeps the
    /// sync-per-record behaviour.
    pub fn open_with_linger(
        site: SiteId,
        path: impl AsRef<Path>,
        linger: Option<Duration>,
    ) -> AmcResult<AcceptorHost> {
        let mut acceptor = DurableAcceptor::open(path)?;
        let group = match linger {
            Some(l) => {
                let handle = acceptor.sync_handle().map_err(|e| {
                    AmcError::TransientIo(format!("clone acceptor-log handle: {e}"))
                })?;
                let durable = acceptor.frame_count();
                acceptor.set_deferred_sync(true);
                Some(Arc::new(GroupSync::new(handle, l, durable)))
            }
            None => None,
        };
        Ok(AcceptorHost {
            site,
            acceptor: Mutex::new(acceptor),
            group,
        })
    }

    /// The hosting site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Completed group fsyncs (0 when the host syncs per record).
    pub fn group_fsyncs(&self) -> u64 {
        self.group.as_ref().map_or(0, |g| g.state.lock().fsyncs)
    }

    /// Frames appended to the acceptor log so far. With `group_fsyncs`
    /// this gives the group-commit batching factor (appends per fsync);
    /// in sync-per-record mode every frame paid its own fsync.
    pub fn log_frames(&self) -> usize {
        self.acceptor.lock().frame_count()
    }

    /// Run `f` under the acceptor lock, then — in group-commit mode —
    /// block outside the lock until the records it appended are covered
    /// by a completed fsync. This is the durability barrier the struct
    /// docs of [`DurableAcceptor`] require before a reply is released.
    fn durably<R>(&self, f: impl FnOnce(&mut DurableAcceptor) -> R) -> R {
        let (r, watermark) = {
            let mut acceptor = self.acceptor.lock();
            let r = f(&mut acceptor);
            (r, acceptor.frame_count())
        };
        if let Some(group) = &self.group {
            group.wait_durable(watermark);
        }
        r
    }

    /// Intercept a request before normal dispatch. `Ok(Some(reply))`
    /// means the message was fully handled by the acceptor; `Ok(None)`
    /// means it must continue to the communication manager.
    pub fn pre_dispatch(&self, payload: &Payload) -> AmcResult<Option<Payload>> {
        match payload {
            Payload::PaxosRegister { gtx, participants } => {
                self.durably(|a| a.register(*gtx, participants));
                Ok(Some(Payload::PaxosAck { gtx: *gtx }))
            }
            Payload::PaxosP1a { gtx, ballot } => {
                let out = self.durably(|a| a.promise(*gtx, Ballot(*ballot)));
                Ok(Some(Payload::PaxosP1b {
                    gtx: *gtx,
                    ballot: *ballot,
                    promised: out.promised,
                    promised_up_to: out.promised_up_to.0,
                    participants: out.participants,
                    accepted: out
                        .accepted
                        .into_iter()
                        .map(|(s, b, v)| (s, b.0, v))
                        .collect(),
                }))
            }
            Payload::PaxosP2a {
                gtx,
                site,
                ballot,
                prepared,
            } => {
                let accepted = self.durably(|a| a.accept(*gtx, *site, Ballot(*ballot), *prepared));
                Ok(Some(Payload::PaxosP2b {
                    gtx: *gtx,
                    site: *site,
                    ballot: *ballot,
                    accepted,
                }))
            }
            Payload::PaxosDecided { gtx, verdict } => {
                self.durably(|a| a.note_decision(*gtx, *verdict));
                Ok(Some(Payload::PaxosAck { gtx: *gtx }))
            }
            Payload::Decision { gtx, verdict } => {
                // Piggyback: a participant's decision closes its
                // co-located acceptor's instances, no extra message.
                self.durably(|a| a.note_decision(*gtx, *verdict));
                Ok(None)
            }
            _ => Ok(None),
        }
    }

    /// Observe the reply produced by normal dispatch. A vote reply is
    /// durably accepted at ballot 0 for this site's own instance before
    /// it leaves the process; if a recovery ballot has already superseded
    /// ballot 0, the vote is refused and the site must NOT answer with a
    /// countable vote — the incumbent that receives the error falls into
    /// the recovery path instead of counting a vote the acceptors will
    /// ignore.
    ///
    /// The hook applies only to **registered** transactions: a 2PC
    /// work-round reply is also a `Vote`, and accepting it would durably
    /// record Prepared for a site that has not prepared. The incumbent
    /// registers between the work and prepare rounds, so exactly the
    /// prepare-round votes land here.
    pub fn post_dispatch(&self, reply: &Payload) -> AmcResult<()> {
        if let Payload::Vote { gtx, vote } = reply {
            let accepted = self.durably(|a| {
                a.state().participants(*gtx)?;
                Some(a.accept(*gtx, self.site, Ballot::ZERO, vote.is_yes()))
            });
            if accepted == Some(false) {
                return Err(AmcError::Protocol(format!(
                    "paxos: {gtx} vote at {} superseded by a recovery ballot",
                    self.site
                )));
            }
        }
        Ok(())
    }

    /// Intercept an admin request; `Some` when handled by the acceptor.
    pub fn admin_pre(&self, req: &AdminRequest) -> Option<AdminReply> {
        match req {
            AdminRequest::PaxosOpen => Some(AdminReply::PaxosOpen(
                self.acceptor.lock().state().open_entries(),
            )),
            _ => None,
        }
    }

    /// Inspect the underlying acceptor (tests and experiments).
    pub fn with_acceptor<R>(&self, f: impl FnOnce(&DurableAcceptor) -> R) -> R {
        f(&self.acceptor.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{GlobalTxnId, GlobalVerdict, LocalVote};

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }

    fn host(site: u32, tag: &str) -> AcceptorHost {
        let dir = std::env::temp_dir().join(format!("amc-paxos-host-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}-{site}.log"));
        let _ = std::fs::remove_file(&path);
        AcceptorHost::open(SiteId::new(site), path).unwrap()
    }

    #[test]
    fn register_then_vote_then_decision_closes_the_txn() {
        let h = host(1, "flow");
        let reply = h
            .pre_dispatch(&Payload::PaxosRegister {
                gtx: gtx(1),
                participants: vec![SiteId::new(1), SiteId::new(2)],
            })
            .unwrap()
            .unwrap();
        assert_eq!(reply, Payload::PaxosAck { gtx: gtx(1) });
        // The site's own vote reply is the ballot-0 accept.
        h.post_dispatch(&Payload::Vote {
            gtx: gtx(1),
            vote: LocalVote::Ready,
        })
        .unwrap();
        assert_eq!(
            h.with_acceptor(|a| a.state().accepted(gtx(1), SiteId::new(1))),
            Some((Ballot::ZERO, true))
        );
        assert_eq!(
            h.admin_pre(&AdminRequest::PaxosOpen),
            Some(AdminReply::PaxosOpen(vec![amc_net::PaxosOpenEntry {
                gtx: gtx(1),
                participants: vec![SiteId::new(1), SiteId::new(2)],
            }]))
        );
        // The ordinary decision payload both notes (pre) and continues to
        // the manager (None).
        let cont = h
            .pre_dispatch(&Payload::Decision {
                gtx: gtx(1),
                verdict: GlobalVerdict::Commit,
            })
            .unwrap();
        assert!(cont.is_none());
        assert_eq!(
            h.admin_pre(&AdminRequest::PaxosOpen),
            Some(AdminReply::PaxosOpen(vec![]))
        );
    }

    #[test]
    fn superseded_vote_is_refused() {
        let h = host(2, "superseded");
        h.pre_dispatch(&Payload::PaxosRegister {
            gtx: gtx(4),
            participants: vec![SiteId::new(2)],
        })
        .unwrap();
        // A recovery replica promised ballot (1, 9) before the vote landed.
        let p1b = h
            .pre_dispatch(&Payload::PaxosP1a {
                gtx: gtx(4),
                ballot: Ballot::new(1, 9).0,
            })
            .unwrap()
            .unwrap();
        assert!(matches!(p1b, Payload::PaxosP1b { promised: true, .. }));
        let err = h
            .post_dispatch(&Payload::Vote {
                gtx: gtx(4),
                vote: LocalVote::Ready,
            })
            .unwrap_err();
        assert!(matches!(err, AmcError::Protocol(_)));
    }

    #[test]
    fn unregistered_vote_is_not_treated_as_an_accept() {
        // 2PC's work-round submit reply is also a `Vote`; before the
        // incumbent registers the transaction it must pass through
        // without touching the acceptor log.
        let h = host(5, "work-round");
        h.post_dispatch(&Payload::Vote {
            gtx: gtx(8),
            vote: LocalVote::Ready,
        })
        .unwrap();
        assert_eq!(
            h.with_acceptor(|a| a.state().accepted(gtx(8), SiteId::new(5))),
            None
        );
        assert_eq!(h.with_acceptor(|a| a.frame_count()), 0);
    }

    #[test]
    fn linger_mode_is_durable_across_reopen() {
        let dir = std::env::temp_dir().join(format!("amc-paxos-host-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("linger-7.log");
        let _ = std::fs::remove_file(&path);
        let h = Arc::new(
            AcceptorHost::open_with_linger(SiteId::new(7), &path, Some(Duration::from_micros(200)))
                .unwrap(),
        );
        // Concurrent registered votes: each reply must wait for a covering
        // fsync, and the batch shares them.
        let handles: Vec<_> = (1..=8u64)
            .map(|n| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    h.pre_dispatch(&Payload::PaxosRegister {
                        gtx: gtx(n),
                        participants: vec![SiteId::new(7)],
                    })
                    .unwrap();
                    h.post_dispatch(&Payload::Vote {
                        gtx: gtx(n),
                        vote: LocalVote::Ready,
                    })
                    .unwrap();
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert!(h.group_fsyncs() >= 1);
        // 16 records (8 registers + 8 accepts) reached the log; a plain
        // reopen replays all of them.
        drop(h);
        let reopened = AcceptorHost::open(SiteId::new(7), &path).unwrap();
        assert_eq!(reopened.with_acceptor(|a| a.frame_count()), 16);
        for n in 1..=8u64 {
            assert_eq!(
                reopened.with_acceptor(|a| a.state().accepted(gtx(n), SiteId::new(7))),
                Some((Ballot::ZERO, true))
            );
        }
    }

    #[test]
    fn non_paxos_payloads_pass_through() {
        let h = host(3, "pass");
        assert!(h
            .pre_dispatch(&Payload::Prepare { gtx: gtx(1) })
            .unwrap()
            .is_none());
        assert!(h.admin_pre(&AdminRequest::Ping).is_none());
        h.post_dispatch(&Payload::Finished { gtx: gtx(1) }).unwrap();
    }
}
