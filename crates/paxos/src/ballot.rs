//! Ballot numbers.
//!
//! A ballot is a totally ordered `(round, replica)` pair packed into one
//! `u64` so it travels the wire as a single integer. Following Gray &
//! Lamport, ballot **0** is reserved for the incumbent leader's fast path:
//! the value a site's vote message carries is durably accepted at ballot 0
//! without a phase 1 exchange. A replica that takes over after a missed
//! lease opens round ≥ 1, and ties between replicas opening the same round
//! break on the replica id — two distinct replicas can never own the same
//! ballot.

use std::fmt;

/// A packed ballot number: `round << 32 | replica`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ballot(pub u64);

impl Ballot {
    /// The incumbent leader's fast-path ballot.
    pub const ZERO: Ballot = Ballot(0);

    /// Ballot for `round` owned by `replica`.
    ///
    /// Recovery replicas must use `round >= 1`: round 0 belongs to the
    /// incumbent regardless of replica id.
    pub const fn new(round: u32, replica: u32) -> Ballot {
        Ballot(((round as u64) << 32) | replica as u64)
    }

    /// The round component.
    pub const fn round(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The owning replica's id (meaningful for round ≥ 1).
    pub const fn replica(self) -> u32 {
        self.0 as u32
    }

    /// The next round owned by `replica` — what a takeover replica opens
    /// after seeing this ballot refused.
    pub const fn bump(self, replica: u32) -> Ballot {
        Ballot::new(self.round() + 1, replica)
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round(), self.replica())
    }
}

impl From<u64> for Ballot {
    fn from(raw: u64) -> Self {
        Ballot(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_round_major_then_replica() {
        assert!(Ballot::new(1, 0) > Ballot::ZERO);
        assert!(Ballot::new(2, 0) > Ballot::new(1, 99));
        assert!(Ballot::new(1, 2) > Ballot::new(1, 1));
    }

    #[test]
    fn pack_round_trips() {
        let b = Ballot::new(7, 3);
        assert_eq!(b.round(), 7);
        assert_eq!(b.replica(), 3);
        assert_eq!(Ballot::from(b.0), b);
        assert_eq!(b.to_string(), "b7.3");
    }

    #[test]
    fn bump_outranks_any_ballot_of_the_same_round() {
        let seen = Ballot::new(3, u32::MAX);
        let mine = seen.bump(0);
        assert!(mine > seen);
        assert_eq!(mine.round(), 4);
    }
}
