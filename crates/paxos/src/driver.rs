//! The recovery replica's driver: finishing in-doubt transactions after
//! the incumbent coordinator dies.
//!
//! A standby replica needs **no state of its own** — everything required
//! to finish a transaction is in the acceptor logs: the registration
//! (participant set) and the accepted instance values. The driver
//!
//! 1. unions `PaxosOpen` reports from a majority of acceptors to learn
//!    which transactions are registered but undecided;
//! 2. runs phase 1 at a ballot it owns (`(round ≥ 1, replica)`), adopting
//!    the highest-ballot accepted value per instance and proposing
//!    **Aborted** for instances with no accepted value (presume-abort);
//! 3. runs phase 2 until every instance's value is chosen by a majority;
//! 4. computes the verdict (commit iff all Prepared), delivers the
//!    decision to every participant, and only then closes the
//!    transaction at the acceptors — so a failed delivery leaves the
//!    transaction open and the next pass retries (every step is
//!    idempotent).
//!
//! Ballot contention (the incumbent limping back, or two standbys racing)
//! resolves through the usual Paxos rule: a refused promise/accept names
//! a higher ballot, the driver bumps its round past it and retries, and
//! whichever leader completes phase 2 first fixes the instance values —
//! both leaders then compute the **same** verdict from them.

use crate::acceptor::PromiseOutcome;
use crate::ballot::Ballot;
use crate::leader::{majority, plan_from_promises};
use amc_net::{AdminReply, AdminRequest, FederationTransport, PaxosOpenEntry, Payload};
use amc_types::{AmcError, AmcResult, GlobalTxnId, GlobalVerdict, SiteId};
use std::collections::BTreeMap;

/// Bound on ballot-bumping retries before a finish attempt gives up (the
/// caller's next pass starts fresh).
pub const MAX_BALLOT_ATTEMPTS: u32 = 8;

/// A coordinator replica's view of the acceptor group.
pub struct ReplicaDriver<'a> {
    transport: &'a dyn FederationTransport,
    acceptors: Vec<SiteId>,
    replica: u32,
}

impl<'a> ReplicaDriver<'a> {
    /// A driver speaking for coordinator replica `replica` (its ballot
    /// tie-break id) over `acceptors`.
    pub fn new(
        transport: &'a dyn FederationTransport,
        acceptors: Vec<SiteId>,
        replica: u32,
    ) -> Self {
        assert!(!acceptors.is_empty(), "acceptor group must be non-empty");
        ReplicaDriver {
            transport,
            acceptors,
            replica,
        }
    }

    /// Union the open (registered, undecided) transactions across the
    /// reachable acceptors. Errs unless a majority answered — with fewer,
    /// a transaction registered at only the unreachable minority could be
    /// missed and silently presumed absent.
    pub fn open_transactions(&self) -> AmcResult<Vec<PaxosOpenEntry>> {
        let mut reachable = 0usize;
        let mut union: BTreeMap<GlobalTxnId, PaxosOpenEntry> = BTreeMap::new();
        for a in &self.acceptors {
            match self.transport.admin(*a, AdminRequest::PaxosOpen) {
                Ok(AdminReply::PaxosOpen(entries)) => {
                    reachable += 1;
                    for e in entries {
                        union
                            .entry(e.gtx)
                            .and_modify(|have| {
                                for s in &e.participants {
                                    if !have.participants.contains(s) {
                                        have.participants.push(*s);
                                    }
                                }
                            })
                            .or_insert(e);
                    }
                }
                Ok(other) => {
                    return Err(AmcError::Protocol(format!(
                        "unexpected PaxosOpen reply {other:?}"
                    )))
                }
                Err(_) => {} // unreachable acceptor — tolerated up to f
            }
        }
        if reachable < majority(self.acceptors.len()) {
            return Err(AmcError::Protocol(format!(
                "paxos: only {reachable}/{} acceptors reachable",
                self.acceptors.len()
            )));
        }
        Ok(union.into_values().collect())
    }

    /// Finish one in-doubt transaction: drive its instances to chosen
    /// values at a ballot this replica owns and deliver the decision.
    /// `hint` seeds the participant set (pass the `PaxosOpen` entry's).
    pub fn finish(&self, gtx: GlobalTxnId, hint: &[SiteId]) -> AmcResult<GlobalVerdict> {
        let (verdict, participants) = self.decide(gtx, hint)?;
        self.deliver(gtx, verdict, &participants)?;
        Ok(verdict)
    }

    /// Drive `gtx`'s instances to majority-chosen values at a ballot this
    /// replica owns and return the verdict **without delivering it** —
    /// the incumbent coordinator uses this to run a post-registration
    /// decision through Paxos while keeping its own delivery (and
    /// down-site obligation) machinery.
    pub fn decide(
        &self,
        gtx: GlobalTxnId,
        hint: &[SiteId],
    ) -> AmcResult<(GlobalVerdict, Vec<SiteId>)> {
        let total = self.acceptors.len();
        let maj = majority(total);
        let mut round = 1u32;
        for _ in 0..MAX_BALLOT_ATTEMPTS {
            let ballot = Ballot::new(round, self.replica);
            // Phase 1: collect promises from a majority.
            let mut promises: Vec<PromiseOutcome> = Vec::new();
            let mut highest = ballot;
            for a in &self.acceptors {
                let reply = self.transport.call(
                    *a,
                    Payload::PaxosP1a {
                        gtx,
                        ballot: ballot.0,
                    },
                );
                if let Ok(Payload::PaxosP1b {
                    promised,
                    promised_up_to,
                    participants,
                    accepted,
                    ..
                }) = reply
                {
                    let up_to = Ballot(promised_up_to);
                    if promised {
                        promises.push(PromiseOutcome {
                            promised,
                            promised_up_to: up_to,
                            participants,
                            accepted: accepted
                                .into_iter()
                                .map(|(s, b, v)| (s, Ballot(b), v))
                                .collect(),
                        });
                    } else {
                        highest = highest.max(up_to);
                    }
                }
            }
            if promises.len() < maj {
                round = highest.round() + 1;
                continue;
            }
            let plan = plan_from_promises(hint, &promises);
            if plan.participants.is_empty() {
                return Err(AmcError::InvalidState(format!(
                    "paxos: {gtx} registered nowhere in the promising majority"
                )));
            }
            // Phase 2: every instance needs a majority of accepts.
            let mut preempted = false;
            let mut starved = false;
            for (site, prepared) in &plan.values {
                let mut acks = 0usize;
                for a in &self.acceptors {
                    match self.transport.call(
                        *a,
                        Payload::PaxosP2a {
                            gtx,
                            site: *site,
                            ballot: ballot.0,
                            prepared: *prepared,
                        },
                    ) {
                        Ok(Payload::PaxosP2b { accepted: true, .. }) => acks += 1,
                        Ok(Payload::PaxosP2b {
                            accepted: false, ..
                        }) => preempted = true,
                        _ => {}
                    }
                }
                if acks < maj {
                    starved = true;
                    break;
                }
            }
            if starved {
                if preempted {
                    // A higher ballot exists; chase it.
                    round += 1;
                    continue;
                }
                return Err(AmcError::Protocol(format!(
                    "paxos: {gtx} lost its acceptor majority mid-ballot"
                )));
            }
            return Ok((plan.verdict(), plan.participants));
        }
        Err(AmcError::Protocol(format!(
            "paxos: {gtx} ballot contention exceeded {MAX_BALLOT_ATTEMPTS} rounds"
        )))
    }

    /// Deliver `verdict` to every participant, then close the instances
    /// at the non-participant acceptors. Participant delivery failures
    /// propagate so the transaction stays open for the next pass.
    fn deliver(
        &self,
        gtx: GlobalTxnId,
        verdict: GlobalVerdict,
        participants: &[SiteId],
    ) -> AmcResult<()> {
        for s in participants {
            self.transport
                .call(*s, Payload::Decision { gtx, verdict })?;
        }
        for a in &self.acceptors {
            if !participants.contains(a) {
                // Best-effort: a missed note merely keeps the transaction
                // "open" at this acceptor; re-finishing is idempotent.
                let _ = self
                    .transport
                    .call(*a, Payload::PaxosDecided { gtx, verdict });
            }
        }
        Ok(())
    }

    /// One full takeover pass: finish every open transaction. Returns the
    /// decided pairs; stops at the first hard error.
    pub fn run_once(&self) -> AmcResult<Vec<(GlobalTxnId, GlobalVerdict)>> {
        let mut out = Vec::new();
        for e in self.open_transactions()? {
            out.push((e.gtx, self.finish(e.gtx, &e.participants)?));
        }
        Ok(out)
    }
}
