//! The Paxos Commit acceptor.
//!
//! One acceptor participates in **every** per-site Paxos instance of every
//! transaction; with `2f + 1` acceptors the commit protocol tolerates `f`
//! simultaneous acceptor/coordinator failures without blocking. The
//! acceptor is split sans-IO style:
//!
//! * [`Record`] — the durable log vocabulary (registration, promise,
//!   accept, decision note) with a checksummable binary encoding;
//! * [`AcceptorState`] — the pure state machine: applying a sequence of
//!   records from any log prefix reproduces exactly the state the acceptor
//!   had when the last record of that prefix was written;
//! * [`DurableAcceptor`] — the production wrapper that appends each record
//!   to an [`amc_wal::DurableFile`] and fsyncs **before** the reply is
//!   released, so an acknowledged promise/accept survives `kill -9`.

use crate::ballot::Ballot;
use amc_net::PaxosOpenEntry;
use amc_types::{AmcError, AmcResult, GlobalTxnId, GlobalVerdict, SiteId};
use amc_wal::durable::{frame, unframe};
use amc_wal::DurableFile;
use std::collections::BTreeMap;
use std::path::Path;

/// One durable acceptor-log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A transaction entered commit processing with these participants.
    Register {
        /// The transaction.
        gtx: GlobalTxnId,
        /// Participant sites — one Paxos instance each.
        participants: Vec<SiteId>,
    },
    /// The acceptor promised `ballot` for all of `gtx`'s instances.
    Promise {
        /// The transaction.
        gtx: GlobalTxnId,
        /// The promised ballot.
        ballot: Ballot,
    },
    /// The acceptor accepted `prepared` for instance `site` at `ballot`.
    Accept {
        /// The transaction.
        gtx: GlobalTxnId,
        /// The instance.
        site: SiteId,
        /// The ballot of the accepted value.
        ballot: Ballot,
        /// The value: true = Prepared, false = Aborted.
        prepared: bool,
    },
    /// The global decision reached `gtx`; its instances are closed.
    Decision {
        /// The transaction.
        gtx: GlobalTxnId,
        /// The verdict.
        verdict: GlobalVerdict,
    },
}

const TAG_REGISTER: u8 = 1;
const TAG_PROMISE: u8 = 2;
const TAG_ACCEPT: u8 = 3;
const TAG_DECISION: u8 = 4;

impl Record {
    /// Binary encoding (pre-framing payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Record::Register { gtx, participants } => {
                out.push(TAG_REGISTER);
                out.extend_from_slice(&gtx.raw().to_le_bytes());
                out.extend_from_slice(&(participants.len() as u32).to_le_bytes());
                for s in participants {
                    out.extend_from_slice(&s.raw().to_le_bytes());
                }
            }
            Record::Promise { gtx, ballot } => {
                out.push(TAG_PROMISE);
                out.extend_from_slice(&gtx.raw().to_le_bytes());
                out.extend_from_slice(&ballot.0.to_le_bytes());
            }
            Record::Accept {
                gtx,
                site,
                ballot,
                prepared,
            } => {
                out.push(TAG_ACCEPT);
                out.extend_from_slice(&gtx.raw().to_le_bytes());
                out.extend_from_slice(&site.raw().to_le_bytes());
                out.extend_from_slice(&ballot.0.to_le_bytes());
                out.push(u8::from(*prepared));
            }
            Record::Decision { gtx, verdict } => {
                out.push(TAG_DECISION);
                out.extend_from_slice(&gtx.raw().to_le_bytes());
                out.push(u8::from(*verdict == GlobalVerdict::Commit));
            }
        }
        out
    }

    /// Decode one record. Rejects trailing garbage.
    pub fn decode(buf: &[u8]) -> AmcResult<Record> {
        let mut r = Reader { buf, at: 0 };
        let tag = r.u8()?;
        let rec = match tag {
            TAG_REGISTER => {
                let gtx = GlobalTxnId::new(r.u64()?);
                let n = r.u32()? as usize;
                // A participant costs 4 bytes; reject hostile counts.
                if n > r.remaining() / 4 {
                    return Err(AmcError::Corruption("participant count".into()));
                }
                let mut participants = Vec::with_capacity(n);
                for _ in 0..n {
                    participants.push(SiteId::new(r.u32()?));
                }
                Record::Register { gtx, participants }
            }
            TAG_PROMISE => Record::Promise {
                gtx: GlobalTxnId::new(r.u64()?),
                ballot: Ballot(r.u64()?),
            },
            TAG_ACCEPT => Record::Accept {
                gtx: GlobalTxnId::new(r.u64()?),
                site: SiteId::new(r.u32()?),
                ballot: Ballot(r.u64()?),
                prepared: r.u8()? != 0,
            },
            TAG_DECISION => Record::Decision {
                gtx: GlobalTxnId::new(r.u64()?),
                verdict: if r.u8()? != 0 {
                    GlobalVerdict::Commit
                } else {
                    GlobalVerdict::Abort
                },
            },
            other => {
                return Err(AmcError::Corruption(format!(
                    "unknown acceptor record tag {other}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(AmcError::Corruption("trailing bytes".into()));
        }
        Ok(rec)
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
    fn take(&mut self, n: usize) -> AmcResult<&[u8]> {
        if self.remaining() < n {
            return Err(AmcError::Corruption("truncated acceptor record".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn u8(&mut self) -> AmcResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> AmcResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> AmcResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

/// What a phase-1b reply carries back to the asking replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromiseOutcome {
    /// True when the asked ballot was promised.
    pub promised: bool,
    /// The highest ballot this acceptor has promised (the asked ballot
    /// itself on success; the conflicting higher one on refusal).
    pub promised_up_to: Ballot,
    /// Participants from the durable registration (empty when this
    /// acceptor never saw the registration).
    pub participants: Vec<SiteId>,
    /// Accepted values per instance: `(site, ballot, prepared)`.
    pub accepted: Vec<(SiteId, Ballot, bool)>,
}

#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct TxnState {
    participants: Vec<SiteId>,
    promised: Ballot,
    accepted: BTreeMap<SiteId, (Ballot, bool)>,
    decided: Option<GlobalVerdict>,
}

/// The pure acceptor state machine.
///
/// Every mutating method applies the change **and** returns the [`Record`]
/// to persist (or `None` when the operation was an idempotent no-op and
/// the log already implies the state).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AcceptorState {
    txns: BTreeMap<GlobalTxnId, TxnState>,
}

impl AcceptorState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild state from decoded records (a log replay).
    pub fn replay<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let mut s = AcceptorState::new();
        for r in records {
            s.apply(r);
        }
        s
    }

    /// Apply one record (replay path — no admission checks, the log is
    /// trusted to have been admitted when written).
    pub fn apply(&mut self, record: &Record) {
        match record {
            Record::Register { gtx, participants } => {
                let t = self.txns.entry(*gtx).or_default();
                if t.participants.is_empty() {
                    t.participants = participants.clone();
                }
            }
            Record::Promise { gtx, ballot } => {
                let t = self.txns.entry(*gtx).or_default();
                t.promised = t.promised.max(*ballot);
            }
            Record::Accept {
                gtx,
                site,
                ballot,
                prepared,
            } => {
                let t = self.txns.entry(*gtx).or_default();
                t.promised = t.promised.max(*ballot);
                let slot = t.accepted.entry(*site).or_insert((*ballot, *prepared));
                if *ballot >= slot.0 {
                    *slot = (*ballot, *prepared);
                }
            }
            Record::Decision { gtx, verdict } => {
                let t = self.txns.entry(*gtx).or_default();
                t.decided = Some(*verdict);
            }
        }
    }

    /// Open `gtx`'s instance set (*BeginCommit*). Idempotent.
    pub fn register(&mut self, gtx: GlobalTxnId, participants: &[SiteId]) -> Option<Record> {
        let t = self.txns.entry(gtx).or_default();
        if !t.participants.is_empty() {
            return None;
        }
        let rec = Record::Register {
            gtx,
            participants: participants.to_vec(),
        };
        self.apply(&rec);
        Some(rec)
    }

    /// Phase 1b: try to promise `ballot` for all of `gtx`'s instances.
    pub fn promise(
        &mut self,
        gtx: GlobalTxnId,
        ballot: Ballot,
    ) -> (PromiseOutcome, Option<Record>) {
        let t = self.txns.entry(gtx).or_default();
        let granted = ballot >= t.promised;
        let rec = if granted && ballot > t.promised {
            let rec = Record::Promise { gtx, ballot };
            self.apply(&rec);
            Some(rec)
        } else {
            None
        };
        let t = &self.txns[&gtx];
        (
            PromiseOutcome {
                promised: granted,
                promised_up_to: t.promised,
                participants: t.participants.clone(),
                accepted: t.accepted.iter().map(|(s, (b, p))| (*s, *b, *p)).collect(),
            },
            rec,
        )
    }

    /// Phase 2b: try to accept `prepared` for instance `site` at `ballot`.
    /// Returns whether the value was accepted.
    pub fn accept(
        &mut self,
        gtx: GlobalTxnId,
        site: SiteId,
        ballot: Ballot,
        prepared: bool,
    ) -> (bool, Option<Record>) {
        let t = self.txns.entry(gtx).or_default();
        if ballot < t.promised {
            return (false, None);
        }
        if t.accepted.get(&site) == Some(&(ballot, prepared)) {
            return (true, None); // duplicate delivery — already durable
        }
        let rec = Record::Accept {
            gtx,
            site,
            ballot,
            prepared,
        };
        self.apply(&rec);
        (true, Some(rec))
    }

    /// Note the global decision, closing `gtx`'s instances. Idempotent;
    /// a no-op for transactions this acceptor was never involved in (no
    /// registration, promise or accept) — their outcome is covered by
    /// presume-abort, and noting them would grow the log with entries for
    /// every transaction that merely passed through the site.
    pub fn note_decision(&mut self, gtx: GlobalTxnId, verdict: GlobalVerdict) -> Option<Record> {
        match self.txns.get(&gtx) {
            None => None,
            Some(t) if t.decided.is_some() => None,
            Some(_) => {
                let rec = Record::Decision { gtx, verdict };
                self.apply(&rec);
                Some(rec)
            }
        }
    }

    /// Registered transactions with no noted decision — what a recovery
    /// replica must finish.
    pub fn open_entries(&self) -> Vec<PaxosOpenEntry> {
        self.txns
            .iter()
            .filter(|(_, t)| !t.participants.is_empty() && t.decided.is_none())
            .map(|(g, t)| PaxosOpenEntry {
                gtx: *g,
                participants: t.participants.clone(),
            })
            .collect()
    }

    /// The noted decision for `gtx`, if any.
    pub fn decision(&self, gtx: GlobalTxnId) -> Option<GlobalVerdict> {
        self.txns.get(&gtx).and_then(|t| t.decided)
    }

    /// The registered participant set of `gtx` (None when this acceptor
    /// never saw the registration).
    pub fn participants(&self, gtx: GlobalTxnId) -> Option<&[SiteId]> {
        self.txns
            .get(&gtx)
            .filter(|t| !t.participants.is_empty())
            .map(|t| t.participants.as_slice())
    }

    /// The highest promised ballot for `gtx` (Ballot::ZERO if untouched).
    pub fn promised(&self, gtx: GlobalTxnId) -> Ballot {
        self.txns.get(&gtx).map(|t| t.promised).unwrap_or_default()
    }

    /// The accepted value of instance `(gtx, site)`, if any.
    pub fn accepted(&self, gtx: GlobalTxnId, site: SiteId) -> Option<(Ballot, bool)> {
        self.txns
            .get(&gtx)
            .and_then(|t| t.accepted.get(&site))
            .copied()
    }
}

/// An acceptor whose log lives in an [`amc_wal::DurableFile`].
///
/// Invariant: a method returns only after the record it implies has been
/// appended — and, unless deferred-sync mode is on, **fsynced** — so the
/// caller may release the network reply the moment the method returns. In
/// deferred-sync mode the *host* owns the durability barrier: it batches
/// the fsyncs of concurrent appenders through a group-commit linger and
/// must not release any reply before the record's frame is covered by a
/// completed fsync on [`DurableAcceptor::sync_handle`].
#[derive(Debug)]
pub struct DurableAcceptor {
    state: AcceptorState,
    file: DurableFile,
    deferred_sync: bool,
}

impl DurableAcceptor {
    /// Open (or create) the acceptor log at `path` and replay it. A torn
    /// final frame was already truncated by [`DurableFile::open`]; an
    /// undecodable *complete* frame is real corruption and fails the open.
    pub fn open(path: impl AsRef<Path>) -> AmcResult<DurableAcceptor> {
        let opened = DurableFile::open(path)?;
        let mut state = AcceptorState::new();
        for f in &opened.frames {
            let rec = Record::decode(unframe(f)?)?;
            state.apply(&rec);
        }
        Ok(DurableAcceptor {
            state,
            file: opened.file,
            deferred_sync: false,
        })
    }

    /// Hand the fsync responsibility to an external group-syncer:
    /// `persist` appends without syncing, and the host fsyncs batches via
    /// [`DurableAcceptor::sync_handle`]. See the struct docs' contract.
    pub fn set_deferred_sync(&mut self, deferred: bool) {
        self.deferred_sync = deferred;
    }

    /// A second handle to the log file for issuing batched fsyncs from
    /// the group-syncer while this acceptor keeps appending.
    pub fn sync_handle(&self) -> std::io::Result<std::fs::File> {
        self.file.sync_handle()
    }

    fn persist(&mut self, rec: Option<Record>) {
        if let Some(rec) = rec {
            self.file.append(&frame(&rec.encode()));
            if !self.deferred_sync {
                self.file.sync();
            }
        }
    }

    /// See [`AcceptorState::register`].
    pub fn register(&mut self, gtx: GlobalTxnId, participants: &[SiteId]) {
        let rec = self.state.register(gtx, participants);
        self.persist(rec);
    }

    /// See [`AcceptorState::promise`].
    pub fn promise(&mut self, gtx: GlobalTxnId, ballot: Ballot) -> PromiseOutcome {
        let (out, rec) = self.state.promise(gtx, ballot);
        self.persist(rec);
        out
    }

    /// See [`AcceptorState::accept`].
    pub fn accept(
        &mut self,
        gtx: GlobalTxnId,
        site: SiteId,
        ballot: Ballot,
        prepared: bool,
    ) -> bool {
        let (ok, rec) = self.state.accept(gtx, site, ballot, prepared);
        self.persist(rec);
        ok
    }

    /// See [`AcceptorState::note_decision`].
    pub fn note_decision(&mut self, gtx: GlobalTxnId, verdict: GlobalVerdict) {
        let rec = self.state.note_decision(gtx, verdict);
        self.persist(rec);
    }

    /// The in-memory state (for queries).
    pub fn state(&self) -> &AcceptorState {
        &self.state
    }

    /// Number of durable log frames (tests).
    pub fn frame_count(&self) -> usize {
        self.file.frame_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gtx(n: u64) -> GlobalTxnId {
        GlobalTxnId::new(n)
    }
    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }

    #[test]
    fn records_round_trip() {
        let recs = vec![
            Record::Register {
                gtx: gtx(9),
                participants: vec![site(1), site(2), site(3)],
            },
            Record::Promise {
                gtx: gtx(9),
                ballot: Ballot::new(1, 2),
            },
            Record::Accept {
                gtx: gtx(9),
                site: site(2),
                ballot: Ballot::ZERO,
                prepared: true,
            },
            Record::Decision {
                gtx: gtx(9),
                verdict: GlobalVerdict::Abort,
            },
        ];
        for r in recs {
            assert_eq!(Record::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Record::decode(&[]).is_err());
        assert!(Record::decode(&[99, 0, 0]).is_err());
        // Hostile participant count.
        let mut buf = vec![TAG_REGISTER];
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Record::decode(&buf).is_err());
        // Trailing bytes.
        let mut ok = Record::Decision {
            gtx: gtx(1),
            verdict: GlobalVerdict::Commit,
        }
        .encode();
        ok.push(0);
        assert!(Record::decode(&ok).is_err());
    }

    #[test]
    fn ballot_zero_vote_then_recovery_promise_blocks_late_votes() {
        let mut a = AcceptorState::new();
        a.register(gtx(1), &[site(1), site(2)]);
        // Site 1's yes vote lands as a ballot-0 accept.
        let (ok, rec) = a.accept(gtx(1), site(1), Ballot::ZERO, true);
        assert!(ok && rec.is_some());
        // A recovery replica opens ballot (1, 7).
        let b = Ballot::new(1, 7);
        let (out, _) = a.promise(gtx(1), b);
        assert!(out.promised);
        assert_eq!(out.accepted, vec![(site(1), Ballot::ZERO, true)]);
        assert_eq!(out.participants, vec![site(1), site(2)]);
        // Site 2's vote arrives late: ballot 0 is now refused, so the
        // recovery leader's Aborted choice can never be contradicted.
        let (ok, rec) = a.accept(gtx(1), site(2), Ballot::ZERO, true);
        assert!(!ok && rec.is_none());
        // The recovery leader's own phase 2a succeeds.
        let (ok, _) = a.accept(gtx(1), site(2), b, false);
        assert!(ok);
    }

    #[test]
    fn lower_promise_is_refused_and_reports_the_winner() {
        let mut a = AcceptorState::new();
        let hi = Ballot::new(3, 1);
        let (out, _) = a.promise(gtx(4), hi);
        assert!(out.promised);
        let (out, rec) = a.promise(gtx(4), Ballot::new(2, 9));
        assert!(!out.promised);
        assert_eq!(out.promised_up_to, hi);
        assert!(rec.is_none());
    }

    #[test]
    fn open_entries_skip_decided_and_unregistered() {
        let mut a = AcceptorState::new();
        a.register(gtx(1), &[site(1)]);
        a.register(gtx(2), &[site(1), site(2)]);
        a.note_decision(gtx(2), GlobalVerdict::Commit);
        // A bare promise without registration is not "open" — the replica
        // that knows the registration will report it.
        a.promise(gtx(3), Ballot::new(1, 1));
        let open = a.open_entries();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].gtx, gtx(1));
        assert_eq!(open[0].participants, vec![site(1)]);
    }

    #[test]
    fn register_and_decision_are_idempotent() {
        let mut a = AcceptorState::new();
        assert!(a.register(gtx(1), &[site(1)]).is_some());
        assert!(a.register(gtx(1), &[site(9)]).is_none());
        assert_eq!(a.open_entries()[0].participants, vec![site(1)]);
        assert!(a.note_decision(gtx(1), GlobalVerdict::Commit).is_some());
        assert!(a.note_decision(gtx(1), GlobalVerdict::Commit).is_none());
        // A decision for a transaction this acceptor never touched is not
        // logged — presume-abort covers it.
        assert!(a.note_decision(gtx(77), GlobalVerdict::Abort).is_none());
    }

    #[test]
    fn durable_acceptor_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("amc-paxos-acc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("acceptor.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut a = DurableAcceptor::open(&path).unwrap();
            a.register(gtx(5), &[site(1), site(2)]);
            a.accept(gtx(5), site(1), Ballot::ZERO, true);
            a.promise(gtx(5), Ballot::new(1, 2));
            assert_eq!(a.frame_count(), 3);
        }
        let a = DurableAcceptor::open(&path).unwrap();
        assert_eq!(a.state().promised(gtx(5)), Ballot::new(1, 2));
        assert_eq!(
            a.state().accepted(gtx(5), site(1)),
            Some((Ballot::ZERO, true))
        );
        assert_eq!(a.state().open_entries().len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn duplicate_accept_writes_no_second_frame() {
        let dir = std::env::temp_dir().join(format!("amc-paxos-dup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dup.log");
        let _ = std::fs::remove_file(&path);
        let mut a = DurableAcceptor::open(&path).unwrap();
        assert!(a.accept(gtx(1), site(1), Ballot::ZERO, true));
        let frames = a.frame_count();
        assert!(a.accept(gtx(1), site(1), Ballot::ZERO, true));
        assert_eq!(a.frame_count(), frames);
        let _ = std::fs::remove_file(&path);
    }
}
