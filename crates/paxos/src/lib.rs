//! # amc-paxos
//!
//! **Paxos Commit** (Gray & Lamport, *Consensus on Transaction Commit*,
//! 2006) for the central system: a non-blocking replacement for the
//! single-coordinator atomic commitment of the paper's Fig. 2. The
//! classical central system is a single point of blocking — a site that
//! voted *ready* holds its locks until the coordinator reawakens (the
//! paper's §3.2 window). Paxos Commit removes the window by making the
//! *decision* a replicated, majority-durable fact:
//!
//! * each participant site's vote is the value of one **Paxos instance**;
//!   the transaction commits iff every instance chooses *Prepared*;
//! * `2f + 1` **acceptors** ([`acceptor`]) durably log promises, accepts
//!   and decisions, tolerating `f` simultaneous failures;
//! * acceptors are **co-located** with site servers ([`host`]), so a
//!   site's vote reply doubles as the ballot-0 accept for its own
//!   instance — the fault tolerance costs one extra message round only
//!   for the cross-replication of votes;
//! * any standby coordinator replica can finish an in-doubt transaction
//!   from the acceptor logs alone ([`driver`]), taking over ballot
//!   leadership when the incumbent misses its lease ([`lease`]).
//!
//! The crate is sans-IO at its core (pure [`acceptor::AcceptorState`] and
//! [`leader`] decision logic) with thin runtime adapters: the
//! [`transport::AcceptorTransport`] decorator for in-process federations
//! and the [`host::AcceptorHost`] hooks the TCP site server mounts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acceptor;
pub mod ballot;
pub mod driver;
pub mod host;
pub mod leader;
pub mod lease;
pub mod transport;

pub use acceptor::{AcceptorState, DurableAcceptor, PromiseOutcome, Record};
pub use ballot::Ballot;
pub use driver::{ReplicaDriver, MAX_BALLOT_ATTEMPTS};
pub use host::AcceptorHost;
pub use leader::{majority, plan_from_promises, CommitLedger, RecoveryPlan};
pub use lease::StandbyMonitor;
pub use transport::AcceptorTransport;
