//! An acceptor-hosting decorator over any [`FederationTransport`].
//!
//! The in-process runtimes (threaded federation, nemesis sweeps) get
//! co-located acceptors by wrapping their transport: Paxos messages to a
//! hosting site are answered by its [`AcceptorHost`] (backed by a real
//! `DurableFile` log), everything else flows to the inner transport, and
//! vote replies are run through the vote-as-accept hook on the way out —
//! the same interception the TCP site server performs, so the in-process
//! sweeps exercise the identical protocol logic.
//!
//! For fault schedules the decorator adds an explicit reachability
//! switch: [`AcceptorTransport::set_down`] makes a site (and its
//! acceptor) unreachable, modelling a site-process crash or partition
//! deterministically.

use crate::host::AcceptorHost;
use amc_net::{AdminReply, AdminRequest, FederationTransport, Payload};
use amc_types::{AmcError, AmcResult, SiteId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};

/// Wraps `inner`, mounting an [`AcceptorHost`] at some of its sites.
pub struct AcceptorTransport<T> {
    inner: T,
    hosts: BTreeMap<SiteId, AcceptorHost>,
    down: Mutex<BTreeSet<SiteId>>,
}

impl<T: FederationTransport> AcceptorTransport<T> {
    /// Mount `hosts` over `inner`.
    pub fn new(inner: T, hosts: BTreeMap<SiteId, AcceptorHost>) -> Self {
        AcceptorTransport {
            inner,
            hosts,
            down: Mutex::new(BTreeSet::new()),
        }
    }

    /// Make `site` (un)reachable — both its acceptor and its manager.
    pub fn set_down(&self, site: SiteId, down: bool) {
        let mut d = self.down.lock();
        if down {
            d.insert(site);
        } else {
            d.remove(&site);
        }
    }

    /// The host mounted at `site`, if any.
    pub fn host(&self, site: SiteId) -> Option<&AcceptorHost> {
        self.hosts.get(&site)
    }

    /// The inner transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }
}

impl<T: FederationTransport> FederationTransport for AcceptorTransport<T> {
    fn sites(&self) -> Vec<SiteId> {
        self.inner.sites()
    }

    fn call(&self, to: SiteId, payload: Payload) -> AmcResult<Payload> {
        if self.down.lock().contains(&to) {
            return Err(AmcError::SiteDown(to));
        }
        match self.hosts.get(&to) {
            None => self.inner.call(to, payload),
            Some(host) => {
                if let Some(reply) = host.pre_dispatch(&payload)? {
                    return Ok(reply);
                }
                let reply = self.inner.call(to, payload)?;
                host.post_dispatch(&reply)?;
                Ok(reply)
            }
        }
    }

    fn admin(&self, to: SiteId, req: AdminRequest) -> AmcResult<AdminReply> {
        if self.down.lock().contains(&to) {
            return Err(AmcError::SiteDown(to));
        }
        if let Some(host) = self.hosts.get(&to) {
            if let Some(reply) = host.admin_pre(&req) {
                return Ok(reply);
            }
        }
        self.inner.admin(to, req)
    }
}
