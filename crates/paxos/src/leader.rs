//! Leader-side decision logic — pure functions shared by the incumbent
//! coordinator (ballot-0 fast path) and recovery replicas (ballot ≥ 1).
//!
//! A transaction with participants `{s₁..sₙ}` runs `n` Paxos instances,
//! one per participant; instance `sᵢ`'s value is `sᵢ`'s vote (Prepared or
//! Aborted). The global verdict is a deterministic function of the chosen
//! instance values: **commit iff every instance chose Prepared**. Because
//! every leader computes the verdict from values *chosen by a majority of
//! the same acceptor set*, two leaders can never reach different verdicts.

use crate::acceptor::PromiseOutcome;
use crate::ballot::Ballot;
use amc_types::{GlobalVerdict, SiteId};
use std::collections::{BTreeMap, BTreeSet};

/// Smallest majority of `acceptors`.
pub fn majority(acceptors: usize) -> usize {
    acceptors / 2 + 1
}

/// The incumbent's ballot-0 bookkeeping: which acceptors have durably
/// accepted Prepared for each instance. An instance is *chosen* once a
/// majority has — only then may the incumbent count it toward commit.
#[derive(Debug, Clone, Default)]
pub struct CommitLedger {
    accepted: BTreeMap<SiteId, BTreeSet<SiteId>>,
}

impl CommitLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `acceptor` durably accepted Prepared for instance
    /// `instance` at ballot 0.
    pub fn record_prepared(&mut self, instance: SiteId, acceptor: SiteId) {
        self.accepted.entry(instance).or_default().insert(acceptor);
    }

    /// True when a majority of `total` acceptors accepted `instance`.
    pub fn chosen(&self, instance: SiteId, total: usize) -> bool {
        self.accepted
            .get(&instance)
            .map(|s| s.len() >= majority(total))
            .unwrap_or(false)
    }

    /// True when every participant's instance is chosen — the commit gate.
    pub fn all_chosen(&self, participants: &[SiteId], total: usize) -> bool {
        participants.iter().all(|s| self.chosen(*s, total))
    }
}

/// What a recovery leader proposes after phase 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// The union of participant sets reported by the promising acceptors.
    pub participants: Vec<SiteId>,
    /// The value to propose per instance at the new ballot.
    pub values: BTreeMap<SiteId, bool>,
}

impl RecoveryPlan {
    /// The verdict these values decide once every instance is chosen.
    pub fn verdict(&self) -> GlobalVerdict {
        if !self.values.is_empty() && self.values.values().all(|p| *p) {
            GlobalVerdict::Commit
        } else {
            GlobalVerdict::Abort
        }
    }
}

/// Choose instance values from a majority's phase-1b replies: for each
/// participant, adopt the highest-ballot accepted value any promising
/// acceptor reports; a free instance (nothing accepted anywhere in the
/// majority) is proposed **Aborted** — the presume-abort rule that makes
/// an unfinished vote unable to block commit processing.
///
/// `hint` seeds the participant set for the caller that already knows it
/// (e.g. from its own acceptor's registration).
pub fn plan_from_promises(hint: &[SiteId], promises: &[PromiseOutcome]) -> RecoveryPlan {
    let mut participants: BTreeSet<SiteId> = hint.iter().copied().collect();
    for p in promises {
        participants.extend(p.participants.iter().copied());
    }
    let mut values = BTreeMap::new();
    for site in &participants {
        let mut best: Option<(Ballot, bool)> = None;
        for p in promises {
            for (s, b, v) in &p.accepted {
                if s == site && best.map(|(bb, _)| *b > bb).unwrap_or(true) {
                    best = Some((*b, *v));
                }
            }
        }
        values.insert(*site, best.map(|(_, v)| v).unwrap_or(false));
    }
    RecoveryPlan {
        participants: participants.into_iter().collect(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }

    fn promise(participants: &[u32], accepted: &[(u32, Ballot, bool)]) -> PromiseOutcome {
        PromiseOutcome {
            promised: true,
            promised_up_to: Ballot::new(1, 0),
            participants: participants.iter().map(|n| site(*n)).collect(),
            accepted: accepted
                .iter()
                .map(|(s, b, v)| (site(*s), *b, *v))
                .collect(),
        }
    }

    #[test]
    fn majority_math() {
        assert_eq!(majority(1), 1);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(5), 3);
    }

    #[test]
    fn ledger_gates_commit_on_per_instance_majorities() {
        let mut l = CommitLedger::new();
        let parts = [site(1), site(2)];
        l.record_prepared(site(1), site(1));
        l.record_prepared(site(1), site(2));
        l.record_prepared(site(2), site(2));
        assert!(l.chosen(site(1), 3));
        assert!(!l.chosen(site(2), 3));
        assert!(!l.all_chosen(&parts, 3));
        l.record_prepared(site(2), site(3));
        assert!(l.all_chosen(&parts, 3));
    }

    #[test]
    fn duplicate_acceptor_acks_count_once() {
        let mut l = CommitLedger::new();
        l.record_prepared(site(1), site(2));
        l.record_prepared(site(1), site(2));
        assert!(!l.chosen(site(1), 3));
    }

    #[test]
    fn free_instances_are_presumed_aborted() {
        // Site 1's vote reached one acceptor; site 2 never voted.
        let plan = plan_from_promises(
            &[],
            &[
                promise(&[1, 2], &[(1, Ballot::ZERO, true)]),
                promise(&[1, 2], &[]),
            ],
        );
        assert_eq!(plan.participants, vec![site(1), site(2)]);
        assert!(plan.values[&site(1)]);
        assert!(!plan.values[&site(2)]);
        assert_eq!(plan.verdict(), GlobalVerdict::Abort);
    }

    #[test]
    fn fully_replicated_prepares_recover_to_commit() {
        let acc = [(1, Ballot::ZERO, true), (2, Ballot::ZERO, true)];
        let plan = plan_from_promises(&[], &[promise(&[1, 2], &acc), promise(&[1, 2], &acc)]);
        assert_eq!(plan.verdict(), GlobalVerdict::Commit);
    }

    #[test]
    fn highest_ballot_value_wins() {
        // An older recovery round proposed Aborted for site 1 at b1.5; the
        // original ballot-0 Prepared must lose to it.
        let plan = plan_from_promises(
            &[],
            &[
                promise(&[1], &[(1, Ballot::ZERO, true)]),
                promise(&[1], &[(1, Ballot::new(1, 5), false)]),
            ],
        );
        assert!(!plan.values[&site(1)]);
        assert_eq!(plan.verdict(), GlobalVerdict::Abort);
    }

    #[test]
    fn empty_plan_aborts() {
        // No acceptor knows the transaction: nothing to commit.
        let plan = plan_from_promises(&[], &[]);
        assert_eq!(plan.verdict(), GlobalVerdict::Abort);
        assert!(plan.participants.is_empty());
    }
}
