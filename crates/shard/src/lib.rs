//! # amc-shard
//!
//! Sharded multi-coordinator scale-out for the integrated database
//! system, with **online site reconfiguration**.
//!
//! The paper's architecture (Fig. 1) funnels every global transaction
//! through one central system — the hard ceiling on federation-wide
//! throughput. Following the shape of multi-shot / reconfigurable atomic
//! commit (Chockler & Gotsman; Bravo — see PAPERS.md), this crate
//! partitions *commit responsibility* instead of data:
//!
//! * [`map`] — the versioned [`ShardMap`]: an epoch-stamped topology
//!   snapshot giving (a) the deterministic transaction→coordinator
//!   ownership rule (hash of the minimum key touched, so cross-shard
//!   transactions have exactly one owner) and (b) the nominal→actual
//!   site relocation table maintained by reconfigurations;
//! * [`router`] — the [`ShardRouter`]: N independent [`Federation`]
//!   coordinators (disjoint transaction-id ranges) over one shared
//!   mutable-membership fleet, an admission gate that drains in-flight
//!   transactions around a reconfiguration, live data migration in atomic
//!   batches, and the epoch bump committed through the ordinary commit
//!   machinery.
//!
//! [`Federation`]: amc_core::Federation

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod map;
pub mod router;

pub use map::{ShardMap, SiteChange};
pub use router::{CoordCounters, ReconfigReport, RouterMetrics, ShardRouter};
