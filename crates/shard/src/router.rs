//! The shard router: N independent coordinators, one site fleet, online
//! reconfiguration.
//!
//! Scale-out shape: every coordinator is a full [`Federation`] instance —
//! its own commit state machines, its own disjoint transaction-id range
//! ([`amc_core::COORD_GTX_SPAN`]) — and all of them drive the **same**
//! site fleet through one shared [`FleetTransport`]. The router in front
//! routes each transaction to its owning coordinator by the shard map's
//! deterministic key rule ([`ShardMap::owner_of`]), so the single-central-
//! system bottleneck of Fig. 1 becomes N parallel central systems with no
//! shared commit path.
//!
//! Isolation note: the router requires the **2PC protocol**. 2PC's global
//! isolation lives entirely in the sites' L0 page locks (held to the
//! global end), which are shared by construction — every coordinator
//! reaches the same engines. The portable protocols would instead need
//! the L1 semantic layer, which is per-coordinator state; sharding them
//! safely would require a distributed L1, which is future work
//! (DESIGN.md §13).
//!
//! ## Online reconfiguration
//!
//! [`ShardRouter::reconfigure`] changes the fleet mid-workload:
//!
//! 1. **Drain** — the admission gate closes; in-flight transactions (all
//!    on the old epoch's map snapshot) finish, new ones block at the gate.
//! 2. **Migrate** — for `Remove { old, successor }`, every user object of
//!    `old` moves in small atomic transactions `[Delete@old ∥
//!    Insert@successor]` through coordinator 0. Each batch is an ordinary
//!    global transaction: a crash or a nemesis kill mid-migration aborts
//!    the batch atomically, and the retry loop re-snapshots both sides so
//!    repetition can neither lose nor duplicate an object.
//! 3. **Epoch bump** — one global transaction increments the reserved
//!    [`EPOCH_OBJECT`] counter on every site of the *new* fleet. The new
//!    epoch becomes real exactly when this transaction commits — through
//!    the same atomic-commitment machinery as any workload transaction.
//! 4. **Install** — the router swaps in the next [`ShardMap`] and reopens
//!    the gate.

use crate::map::{ShardMap, SiteChange};
use amc_core::federation::{submit_mode_for, TxnReport};
use amc_core::{Federation, FederationConfig, TxnOutcome};
use amc_engine::TwoPLEngine;
use amc_net::marker::{is_marker, EPOCH_OBJECT};
use amc_net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc_net::{EngineHandle, FleetTransport, LocalCommManager};
use amc_types::{AmcError, AmcResult, ObjectId, Operation, ProtocolKind, SiteId, Value};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Objects moved per migration transaction. Small enough that a batch
/// abort under chaos wastes little work; large enough to amortise the
/// commit round.
const MIGRATION_BATCH: usize = 8;
/// How long a reconfiguration keeps retrying around transient outages
/// (nemesis kills) before giving up.
const RECONFIG_DEADLINE: Duration = Duration::from_secs(10);
/// Back-off between retry rounds while a needed site is down.
const RETRY_PAUSE: Duration = Duration::from_millis(2);

/// Per-coordinator outcome counters (the router's observability surface).
#[derive(Debug, Default)]
pub struct CoordCounters {
    /// Transactions this coordinator committed.
    pub committed: AtomicU64,
    /// Transactions this coordinator aborted.
    pub aborted: AtomicU64,
    /// Attempts that failed with a transport/protocol error.
    pub errors: AtomicU64,
}

/// Aggregate result of [`ShardRouter::run_concurrent`].
#[derive(Debug, Clone)]
pub struct RouterMetrics {
    /// Globally committed transactions.
    pub committed: u64,
    /// Globally aborted transactions.
    pub aborted: u64,
    /// Attempts that returned an error (e.g. a site down mid-run).
    pub errors: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// `(committed, aborted)` per coordinator slot, for the run only.
    pub per_coord: Vec<(u64, u64)>,
}

impl RouterMetrics {
    /// Committed transactions per second.
    pub fn throughput(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.committed as f64 / self.elapsed.as_secs_f64()
    }
}

/// What a completed [`ShardRouter::reconfigure`] did.
#[derive(Debug, Clone)]
pub struct ReconfigReport {
    /// The epoch now in force.
    pub epoch: u64,
    /// User objects migrated off the removed site (0 for an add).
    pub migrated: usize,
    /// Transactions the epoch-bump/migration path had to retry around
    /// transient outages.
    pub retries: usize,
}

/// The drain gate: admission control for workload transactions around a
/// reconfiguration. Closing waits out every in-flight transaction (they
/// all run on the old epoch's map snapshot) before the migration starts.
struct Gate {
    state: Mutex<GateState>,
    cond: Condvar,
}

struct GateState {
    open: bool,
    in_flight: usize,
}

struct GateGuard<'a> {
    gate: &'a Gate,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            state: Mutex::new(GateState {
                open: true,
                in_flight: 0,
            }),
            cond: Condvar::new(),
        }
    }

    /// Block until the gate is open, then register as in flight.
    fn enter(&self) -> GateGuard<'_> {
        let mut st = self.state.lock();
        while !st.open {
            self.cond.wait(&mut st);
        }
        st.in_flight += 1;
        GateGuard { gate: self }
    }

    /// Close the gate and wait until every in-flight transaction exits.
    fn close_and_drain(&self) {
        let mut st = self.state.lock();
        st.open = false;
        while st.in_flight > 0 {
            self.cond.wait(&mut st);
        }
    }

    fn reopen(&self) {
        let mut st = self.state.lock();
        st.open = true;
        self.cond.notify_all();
    }
}

impl Drop for GateGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock();
        st.in_flight -= 1;
        // Wake both blocked entrants and a draining reconfigurer.
        self.gate.cond.notify_all();
    }
}

/// N coordinators, one fleet, one shard map. See the module docs.
pub struct ShardRouter {
    coordinators: Vec<Arc<Federation>>,
    fleet: Arc<FleetTransport>,
    map: RwLock<Arc<ShardMap>>,
    gate: Gate,
    stats: Vec<CoordCounters>,
}

impl ShardRouter {
    /// Build an in-process sharded federation: `coordinators` coordinator
    /// instances over one fleet of `sites` 2PL sites (ids `1..=sites`),
    /// each site preloaded with its epoch object at epoch 1.
    ///
    /// # Panics
    /// When `protocol` is not 2PC (see the module docs' isolation note)
    /// or `coordinators == 0`.
    pub fn in_process(
        coordinators: u32,
        sites: u32,
        protocol: ProtocolKind,
        message_delay: Duration,
    ) -> AmcResult<ShardRouter> {
        assert_eq!(
            protocol,
            ProtocolKind::TwoPhaseCommit,
            "the shard router requires 2PC: its isolation lives in the shared \
             L0 site locks; the portable protocols' L1 layer is per-coordinator"
        );
        assert!(coordinators >= 1, "at least one coordinator");
        let base = FederationConfig::uniform(sites, protocol);
        let managers: BTreeMap<SiteId, Arc<LocalCommManager>> = base
            .build_managers()
            .into_iter()
            .map(|m| (m.site(), m))
            .collect();
        let fleet = Arc::new(FleetTransport::new(
            managers,
            submit_mode_for(protocol),
            message_delay,
        ));
        let coords: Vec<Arc<Federation>> = (0..coordinators)
            .map(|k| {
                let mut cfg = FederationConfig::uniform(sites, protocol).sharded(k, coordinators);
                cfg.message_delay = message_delay;
                let mut fed = Federation::with_transport(
                    cfg,
                    Arc::clone(&fleet) as Arc<dyn FederationTransport>,
                );
                // Benchmark posture: the router is a throughput/reconfig
                // runtime; per-op history recording belongs to the oracle
                // drivers.
                fed.set_recording(false, false);
                Arc::new(fed)
            })
            .collect();
        let map = ShardMap::new(coordinators, (1..=sites).map(SiteId::new));
        let router = ShardRouter {
            stats: (0..coordinators)
                .map(|_| CoordCounters::default())
                .collect(),
            coordinators: coords,
            fleet,
            map: RwLock::new(Arc::new(map)),
            gate: Gate::new(),
        };
        for site in router.fleet.sites() {
            router.coordinators[0].load_site(site, &[(EPOCH_OBJECT, Value::counter(1))])?;
        }
        Ok(router)
    }

    /// The current shard map snapshot.
    pub fn map(&self) -> Arc<ShardMap> {
        self.map.read().clone()
    }

    /// The epoch currently in force.
    pub fn epoch(&self) -> u64 {
        self.map.read().epoch
    }

    /// The shared fleet transport (chaos hooks: `set_down`).
    pub fn fleet(&self) -> &Arc<FleetTransport> {
        &self.fleet
    }

    /// Coordinator `slot`'s federation instance.
    pub fn coordinator(&self, slot: u32) -> &Arc<Federation> {
        &self.coordinators[slot as usize]
    }

    /// Number of coordinator slots.
    pub fn coordinator_count(&self) -> u32 {
        self.coordinators.len() as u32
    }

    /// Per-coordinator lifetime outcome counters.
    pub fn stats(&self) -> &[CoordCounters] {
        &self.stats
    }

    /// The coordinator slot that would own this (nominally addressed)
    /// program under the current map.
    pub fn owner_of(&self, per_site: &BTreeMap<SiteId, Vec<Operation>>) -> u32 {
        self.map.read().owner_of(per_site)
    }

    /// Bulk-load data into a site's engine (through coordinator 0).
    pub fn load_site(&self, site: SiteId, data: &[(ObjectId, Value)]) -> AmcResult<()> {
        self.coordinators[0].load_site(site, data)
    }

    /// Run one nominally-addressed transaction: wait at the admission
    /// gate, snapshot the map, rehome the program to actual sites, and
    /// hand it to its owning coordinator.
    pub fn run(&self, per_site: &BTreeMap<SiteId, Vec<Operation>>) -> AmcResult<TxnReport> {
        let _guard = self.gate.enter();
        let map = self.map.read().clone();
        let owner = map.owner_of(per_site) as usize;
        let routed = map.rehome(per_site);
        let result = self.coordinators[owner].run_transaction(&routed);
        match &result {
            Ok(report) => match report.outcome {
                TxnOutcome::Committed => {
                    self.stats[owner].committed.fetch_add(1, Ordering::Relaxed)
                }
                _ => self.stats[owner].aborted.fetch_add(1, Ordering::Relaxed),
            },
            Err(_) => self.stats[owner].errors.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Drive `programs` through the router from `threads` worker threads
    /// (FIFO over a shared queue) and aggregate the outcomes.
    pub fn run_concurrent(
        self: &Arc<Self>,
        programs: Vec<BTreeMap<SiteId, Vec<Operation>>>,
        threads: usize,
    ) -> RouterMetrics {
        let queue = Arc::new(Mutex::new(std::collections::VecDeque::from(programs)));
        let committed = AtomicU64::new(0);
        let aborted = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        let before: Vec<(u64, u64)> = self
            .stats
            .iter()
            .map(|c| {
                (
                    c.committed.load(Ordering::Relaxed),
                    c.aborted.load(Ordering::Relaxed),
                )
            })
            .collect();
        let started = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads.max(1) {
                s.spawn(|| loop {
                    let Some(program) = queue.lock().pop_front() else {
                        return;
                    };
                    match self.run(&program) {
                        Ok(r) if r.outcome == TxnOutcome::Committed => {
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            aborted.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        let elapsed = started.elapsed();
        let per_coord = self
            .stats
            .iter()
            .zip(before)
            .map(|(c, (bc, ba))| {
                (
                    c.committed.load(Ordering::Relaxed) - bc,
                    c.aborted.load(Ordering::Relaxed) - ba,
                )
            })
            .collect();
        RouterMetrics {
            committed: committed.into_inner(),
            aborted: aborted.into_inner(),
            errors: errors.into_inner(),
            elapsed,
            per_coord,
        }
    }

    /// Change the fleet online. See the module docs for the
    /// drain → migrate → epoch-bump → install sequence.
    pub fn reconfigure(&self, change: SiteChange) -> AmcResult<ReconfigReport> {
        self.gate.close_and_drain();
        let result = self.apply_change(change);
        self.gate.reopen();
        result
    }

    fn apply_change(&self, change: SiteChange) -> AmcResult<ReconfigReport> {
        let old_map = self.map.read().clone();
        let deadline = Instant::now() + RECONFIG_DEADLINE;
        let mut retries = 0usize;
        let (next_map, migrated) = match change {
            SiteChange::Add { site } => {
                if old_map.is_member(site) {
                    return Err(AmcError::Protocol(format!(
                        "add: {site} is already a fleet member"
                    )));
                }
                // A fresh 2PL engine joins the shared fleet; it becomes
                // addressable only once the epoch bump commits.
                let engine = Arc::new(TwoPLEngine::new_at(Default::default(), site));
                let manager = Arc::new(LocalCommManager::new(
                    site,
                    EngineHandle::Preparable(engine),
                ));
                self.fleet.add_site(site, manager);
                // Provision its epoch object at the *old* epoch so the
                // bump transaction below carries every site to the new one.
                self.coordinators[0].load_site(
                    site,
                    &[(EPOCH_OBJECT, Value::counter(old_map.epoch as i64))],
                )?;
                (old_map.with_site_added(site), 0)
            }
            SiteChange::Remove { old, successor } => {
                // Validates membership (panics on misuse are converted to
                // errors by the checks here).
                if !old_map.is_member(old) || !old_map.is_member(successor) || old == successor {
                    return Err(AmcError::Protocol(format!(
                        "remove: {old} -> {successor} is not a valid member pair"
                    )));
                }
                let next = old_map.with_site_removed(old, successor);
                let moved = self.migrate(old, successor, deadline, &mut retries)?;
                (next, moved)
            }
        };

        // The epoch bump: one global transaction over the NEW fleet. The
        // reconfiguration is durable and in force exactly when it commits.
        let bump: BTreeMap<SiteId, Vec<Operation>> = next_map
            .sites()
            .into_iter()
            .map(|s| {
                (
                    s,
                    vec![Operation::Increment {
                        obj: EPOCH_OBJECT,
                        delta: 1,
                    }],
                )
            })
            .collect();
        self.committed_with_retry(&bump, deadline, &mut retries)?;

        if let SiteChange::Remove { old, .. } = change {
            self.fleet.remove_site(old);
        }
        self.drain_obligations(deadline, &mut retries)?;
        *self.map.write() = Arc::new(next_map.clone());
        Ok(ReconfigReport {
            epoch: next_map.epoch,
            migrated,
            retries,
        })
    }

    /// Move every user object off `old` onto `successor` in small atomic
    /// `[Delete@old ∥ Insert@successor]` transactions. Each retry round
    /// re-snapshots both sides, so a batch that aborted (or a site that
    /// died) mid-round can neither lose an object nor insert it twice.
    fn migrate(
        &self,
        old: SiteId,
        successor: SiteId,
        deadline: Instant,
        retries: &mut usize,
    ) -> AmcResult<usize> {
        let coord = &self.coordinators[0];
        let mut migrated = 0usize;
        loop {
            let (old_dump, succ_dump) = match (self.dump(old), self.dump(successor)) {
                (Ok(a), Ok(b)) => (a, b),
                (r1, r2) => {
                    let err = r1.err().or(r2.err()).expect("one side failed");
                    self.pause_or_fail(&err, deadline, retries)?;
                    let _ = coord.resolve_pending();
                    continue;
                }
            };
            let pending: Vec<(ObjectId, Value)> = old_dump
                .into_iter()
                .filter(|(obj, _)| !is_marker(*obj))
                .collect();
            if pending.is_empty() {
                return Ok(migrated);
            }
            let mut round_failed = false;
            for batch in pending.chunks(MIGRATION_BATCH) {
                let mut old_ops = Vec::new();
                let mut succ_ops = Vec::new();
                for (obj, val) in batch {
                    old_ops.push(Operation::Delete { obj: *obj });
                    // Duplication guard: an object already at the
                    // successor (from an interrupted earlier round whose
                    // view we lost) is only deleted at the source.
                    if !succ_dump.contains_key(obj) {
                        succ_ops.push(Operation::Insert {
                            obj: *obj,
                            value: *val,
                        });
                    }
                }
                let mut per_site = BTreeMap::new();
                per_site.insert(old, old_ops);
                if !succ_ops.is_empty() {
                    per_site.insert(successor, succ_ops);
                }
                match coord.run_transaction(&per_site) {
                    Ok(r) if r.outcome == TxnOutcome::Committed => migrated += batch.len(),
                    Ok(_) => {
                        // Aborted (e.g. a participant died before voting):
                        // nothing moved; re-snapshot and retry.
                        if Instant::now() >= deadline {
                            return Err(AmcError::Protocol(
                                "migration kept aborting past the deadline".into(),
                            ));
                        }
                        *retries += 1;
                        std::thread::sleep(RETRY_PAUSE);
                        round_failed = true;
                        break;
                    }
                    Err(e) => {
                        self.pause_or_fail(&e, deadline, retries)?;
                        let _ = coord.resolve_pending();
                        round_failed = true;
                        break;
                    }
                }
            }
            if !round_failed {
                // Loop once more: the final round's empty `pending` is the
                // completion check.
                continue;
            }
        }
    }

    /// Run `per_site` until it globally commits, retrying around transient
    /// outages until `deadline`.
    fn committed_with_retry(
        &self,
        per_site: &BTreeMap<SiteId, Vec<Operation>>,
        deadline: Instant,
        retries: &mut usize,
    ) -> AmcResult<()> {
        let coord = &self.coordinators[0];
        loop {
            match coord.run_transaction(per_site) {
                Ok(r) if r.outcome == TxnOutcome::Committed => return Ok(()),
                Ok(_) => {
                    *retries += 1;
                    if Instant::now() >= deadline {
                        return Err(AmcError::Protocol(
                            "reconfiguration transaction kept aborting past the deadline".into(),
                        ));
                    }
                    std::thread::sleep(RETRY_PAUSE);
                }
                Err(e) => {
                    self.pause_or_fail(&e, deadline, retries)?;
                    let _ = coord.resolve_pending();
                }
            }
        }
    }

    /// Discharge every owed final-state message on every coordinator (a
    /// reconfiguration must not leave a transaction open).
    fn drain_obligations(&self, deadline: Instant, retries: &mut usize) -> AmcResult<()> {
        loop {
            let mut pending = 0usize;
            for coord in &self.coordinators {
                coord.resolve_pending()?;
                pending += coord.pending_obligations();
            }
            if pending == 0 {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(AmcError::Protocol(format!(
                    "{pending} obligations still undeliverable past the reconfiguration deadline"
                )));
            }
            *retries += 1;
            std::thread::sleep(RETRY_PAUSE);
        }
    }

    /// Sleep-and-retry on transient errors; propagate anything else.
    fn pause_or_fail(
        &self,
        err: &AmcError,
        deadline: Instant,
        retries: &mut usize,
    ) -> AmcResult<()> {
        match err {
            AmcError::SiteDown(_) | AmcError::TransientIo(_) => {
                if Instant::now() >= deadline {
                    return Err(err.clone());
                }
                *retries += 1;
                std::thread::sleep(RETRY_PAUSE);
                Ok(())
            }
            other => Err(other.clone()),
        }
    }

    fn dump(&self, site: SiteId) -> AmcResult<BTreeMap<ObjectId, Value>> {
        match self.fleet.admin(site, AdminRequest::Dump)? {
            AdminReply::Dump(d) => Ok(d),
            other => Err(AmcError::Protocol(format!(
                "unexpected admin reply {other:?}"
            ))),
        }
    }

    /// Sum of every **user** (non-marker) counter across the fleet — the
    /// conservation quantity of sum-neutral workloads. Epoch objects and
    /// commit markers are filtered out.
    pub fn user_sum(&self) -> AmcResult<i64> {
        let mut sum = 0i64;
        for site in self.fleet.sites() {
            for (obj, val) in self.dump(site)? {
                if !is_marker(obj) {
                    sum = sum.wrapping_add(val.counter);
                }
            }
        }
        Ok(sum)
    }

    /// Total user objects across the fleet (duplication check: migration
    /// must conserve the count as well as the sum).
    pub fn user_object_count(&self) -> AmcResult<usize> {
        let mut count = 0usize;
        for site in self.fleet.sites() {
            count += self
                .dump(site)?
                .keys()
                .filter(|obj| !is_marker(**obj))
                .count();
        }
        Ok(count)
    }

    /// The committed epoch counter at `site` (oracle for tests: after a
    /// reconfiguration every member site agrees with [`ShardRouter::epoch`]).
    pub fn site_epoch(&self, site: SiteId) -> AmcResult<i64> {
        self.dump(site)?
            .get(&EPOCH_OBJECT)
            .map(|v| v.counter)
            .ok_or_else(|| AmcError::Protocol(format!("{site} has no epoch object")))
    }

    /// Outstanding final-state obligations across all coordinators.
    pub fn pending_obligations(&self) -> usize {
        self.coordinators
            .iter()
            .map(|c| c.pending_obligations())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(site: u32, idx: u64) -> ObjectId {
        ObjectId::new(u64::from(site) * (1 << 32) + idx)
    }

    fn transfer(from: u32, to: u32, idx: u64) -> BTreeMap<SiteId, Vec<Operation>> {
        let mut per_site = BTreeMap::new();
        per_site.insert(
            SiteId::new(from),
            vec![Operation::Increment {
                obj: obj(from, idx),
                delta: -1,
            }],
        );
        per_site.insert(
            SiteId::new(to),
            vec![Operation::Increment {
                obj: obj(to, idx),
                delta: 1,
            }],
        );
        per_site
    }

    fn loaded_router(coordinators: u32, sites: u32) -> Arc<ShardRouter> {
        let router = ShardRouter::in_process(
            coordinators,
            sites,
            ProtocolKind::TwoPhaseCommit,
            Duration::ZERO,
        )
        .unwrap();
        for s in 1..=sites {
            let data: Vec<(ObjectId, Value)> =
                (0..4).map(|i| (obj(s, i), Value::counter(100))).collect();
            router.load_site(SiteId::new(s), &data).unwrap();
        }
        Arc::new(router)
    }

    #[test]
    fn routed_transactions_commit_and_conserve() {
        let router = loaded_router(4, 3);
        let programs: Vec<_> = (0..24)
            .map(|i| transfer(i % 3 + 1, (i + 1) % 3 + 1, i as u64 % 4))
            .collect();
        let metrics = router.run_concurrent(programs, 4);
        assert_eq!(metrics.committed, 24);
        assert_eq!(metrics.errors, 0);
        assert_eq!(router.user_sum().unwrap(), 3 * 4 * 100);
        // Work spread across more than one coordinator slot.
        let busy = metrics.per_coord.iter().filter(|(c, _)| *c > 0).count();
        assert!(busy > 1, "expected multiple busy coordinators: {metrics:?}");
    }

    #[test]
    fn gtx_ranges_are_disjoint_per_coordinator() {
        let router = loaded_router(3, 2);
        for i in 0..12u64 {
            let p = transfer(1, 2, i % 4);
            let owner = router.owner_of(&p);
            let report = router.run(&p).unwrap();
            assert_eq!(amc_core::coord_slot_of(report.gtx), owner);
        }
    }

    #[test]
    fn add_then_remove_migrates_and_bumps_epochs() {
        let router = loaded_router(2, 3);
        let sum = router.user_sum().unwrap();
        let count = router.user_object_count().unwrap();

        let report = router
            .reconfigure(SiteChange::Add {
                site: SiteId::new(4),
            })
            .unwrap();
        assert_eq!(report.epoch, 2);
        assert!(router.map().is_member(SiteId::new(4)));
        for s in [1, 2, 3, 4] {
            assert_eq!(router.site_epoch(SiteId::new(s)).unwrap(), 2);
        }

        let report = router
            .reconfigure(SiteChange::Remove {
                old: SiteId::new(1),
                successor: SiteId::new(4),
            })
            .unwrap();
        assert_eq!(report.epoch, 3);
        assert_eq!(report.migrated, count / 3);
        assert!(!router.fleet().is_member(SiteId::new(1)));
        assert_eq!(router.user_sum().unwrap(), sum);
        assert_eq!(router.user_object_count().unwrap(), count);

        // Nominal site 1 programs now land on site 4.
        let p = transfer(1, 2, 0);
        let r = router.run(&p).unwrap();
        assert_eq!(r.outcome, TxnOutcome::Committed);
        assert_eq!(router.user_sum().unwrap(), sum);
    }
}
