//! The versioned shard map: who owns a transaction, where a site's data
//! actually lives.
//!
//! A [`ShardMap`] is an **epoch-stamped topology snapshot** with two
//! independent axes:
//!
//! * **commit ownership** — which of the N coordinators runs a given
//!   global transaction. Ownership is a pure function of the *objects the
//!   transaction touches* ([`ShardMap::owner_of`]): the minimum user
//!   object id is hashed and reduced modulo the coordinator count, so a
//!   cross-shard transaction (keys owned by several shards) still picks
//!   one deterministic owner — the rule of Chockler & Gotsman's multi-shot
//!   commit, collapsed to "lowest key wins". Any router replica computes
//!   the same owner with no coordination.
//!
//! * **data placement** — which *actual* site serves a *nominal* site's
//!   objects. Workload programs address nominal sites (the names baked
//!   into their object ids); after an online `Remove { old, successor }`
//!   reconfiguration the nominal site's objects live on the successor, and
//!   [`ShardMap::rehome`] rewrites a program's site buckets accordingly.
//!
//! Maps are immutable values: a reconfiguration builds the next epoch with
//! [`ShardMap::with_site_added`] / [`ShardMap::with_site_removed`] and the
//! router swaps the `Arc` only after the epoch bump committed on every
//! site. In-flight transactions keep the `Arc` they snapshotted — exactly
//! the old-epoch stragglers the router's drain gate waits out.

use amc_types::{Operation, SiteId};
use std::collections::{BTreeMap, BTreeSet};

/// An online change to the site fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteChange {
    /// Bring a fresh site into the fleet. Its engine starts empty; the
    /// reconfiguration provisions it (epoch object + any initial data)
    /// before the epoch bump makes it addressable.
    Add {
        /// The new site.
        site: SiteId,
    },
    /// Retire `old`: every object it serves migrates to `successor` and
    /// programs addressing `old` (nominally) are rehomed there.
    Remove {
        /// The site leaving the fleet.
        old: SiteId,
        /// The member site inheriting its data and nominal identity.
        successor: SiteId,
    },
}

/// SplitMix64 — the deterministic hash behind cross-shard ownership.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One epoch of the sharded topology. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// Monotone epoch number; epoch 1 is the initial map. Matches the
    /// committed value of the per-site epoch object.
    pub epoch: u64,
    /// Number of coordinator slots transactions are partitioned across.
    pub coordinators: u32,
    /// Nominal→actual relocation entries (identity when absent).
    home: BTreeMap<SiteId, SiteId>,
    /// The actual fleet, ascending.
    sites: BTreeSet<SiteId>,
}

impl ShardMap {
    /// The initial map (epoch 1): every nominal site is its own home.
    pub fn new(coordinators: u32, sites: impl IntoIterator<Item = SiteId>) -> ShardMap {
        assert!(coordinators >= 1, "at least one coordinator");
        ShardMap {
            epoch: 1,
            coordinators,
            home: BTreeMap::new(),
            sites: sites.into_iter().collect(),
        }
    }

    /// The actual fleet, ascending.
    pub fn sites(&self) -> Vec<SiteId> {
        self.sites.iter().copied().collect()
    }

    /// Whether `site` is an actual fleet member in this epoch.
    pub fn is_member(&self, site: SiteId) -> bool {
        self.sites.contains(&site)
    }

    /// The actual site serving `nominal`'s objects in this epoch.
    pub fn actual(&self, nominal: SiteId) -> SiteId {
        self.home.get(&nominal).copied().unwrap_or(nominal)
    }

    /// The coordinator slot owning a transaction, from the objects it
    /// touches: hash of the minimum object id, modulo the coordinator
    /// count. Deterministic and topology-independent — the same program
    /// maps to the same owner in every epoch with the same coordinator
    /// count, on every router replica. Programs touching no object (there
    /// are none in practice) fall to slot 0.
    pub fn owner_of(&self, per_site: &BTreeMap<SiteId, Vec<Operation>>) -> u32 {
        let min_obj = per_site
            .values()
            .flatten()
            .map(|op| op.object().raw())
            .min();
        match min_obj {
            Some(obj) => (splitmix64(obj) % u64::from(self.coordinators)) as u32,
            None => 0,
        }
    }

    /// Rewrite a nominally-addressed program to actual sites, merging
    /// buckets whose nominal sites share a home (ops append in ascending
    /// nominal order, so the result is deterministic).
    pub fn rehome(
        &self,
        per_site: &BTreeMap<SiteId, Vec<Operation>>,
    ) -> BTreeMap<SiteId, Vec<Operation>> {
        let mut out: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();
        for (nominal, ops) in per_site {
            out.entry(self.actual(*nominal))
                .or_default()
                .extend(ops.iter().cloned());
        }
        out
    }

    /// The next epoch after adding `site` to the fleet. The new site is
    /// its own home (a fresh nominal identity).
    pub fn with_site_added(&self, site: SiteId) -> ShardMap {
        let mut next = self.clone();
        next.epoch += 1;
        next.sites.insert(site);
        next.home.remove(&site);
        next
    }

    /// The next epoch after retiring `old` in favour of `successor`:
    /// `old` leaves the fleet, and every nominal site whose home was
    /// `old` (including `old` itself) is rehomed to `successor`.
    ///
    /// # Panics
    /// When `old` or `successor` is not a member, or they are equal.
    pub fn with_site_removed(&self, old: SiteId, successor: SiteId) -> ShardMap {
        assert!(self.sites.contains(&old), "removing a non-member site");
        assert!(
            self.sites.contains(&successor),
            "successor must be a member"
        );
        assert_ne!(old, successor, "a site cannot succeed itself");
        let mut next = self.clone();
        next.epoch += 1;
        next.sites.remove(&old);
        // Chain: nominal identities previously served by `old` follow its
        // data to the successor.
        for target in next.home.values_mut() {
            if *target == old {
                *target = successor;
            }
        }
        next.home.insert(old, successor);
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::{ObjectId, Value};

    fn site(n: u32) -> SiteId {
        SiteId::new(n)
    }

    fn program(objs: &[u64]) -> BTreeMap<SiteId, Vec<Operation>> {
        // One synthetic bucket per object, site = obj as u32 for variety.
        let mut per_site: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();
        for &o in objs {
            per_site
                .entry(site((o % 3) as u32 + 1))
                .or_default()
                .push(Operation::Increment {
                    obj: ObjectId::new(o),
                    delta: 1,
                });
        }
        per_site
    }

    #[test]
    fn owner_is_deterministic_and_in_range() {
        let map = ShardMap::new(4, (1..=3).map(site));
        for objs in [&[7u64, 9, 11][..], &[2], &[1000, 5]] {
            let p = program(objs);
            let owner = map.owner_of(&p);
            assert!(owner < 4);
            assert_eq!(owner, map.owner_of(&p), "stable across calls");
        }
    }

    #[test]
    fn owner_follows_the_minimum_object() {
        let map = ShardMap::new(4, (1..=3).map(site));
        // A cross-shard program owns the same slot as the single-object
        // program of its minimum key.
        let solo = program(&[5]);
        let cross = program(&[900, 5, 311]);
        assert_eq!(map.owner_of(&solo), map.owner_of(&cross));
    }

    #[test]
    fn owners_spread_across_slots() {
        let map = ShardMap::new(4, (1..=3).map(site));
        let mut seen = BTreeSet::new();
        for o in 0..64u64 {
            seen.insert(map.owner_of(&program(&[o])));
        }
        assert_eq!(seen.len(), 4, "64 keys should hit all 4 slots");
    }

    #[test]
    fn add_and_remove_step_the_epoch_and_rehome() {
        let map = ShardMap::new(2, (1..=3).map(site));
        assert_eq!(map.epoch, 1);
        assert_eq!(map.actual(site(1)), site(1));

        let grown = map.with_site_added(site(4));
        assert_eq!(grown.epoch, 2);
        assert!(grown.is_member(site(4)));

        let shrunk = grown.with_site_removed(site(1), site(4));
        assert_eq!(shrunk.epoch, 3);
        assert!(!shrunk.is_member(site(1)));
        assert_eq!(shrunk.actual(site(1)), site(4));

        // Chaining: removing the successor moves the chained identity too.
        let chained = shrunk.with_site_removed(site(4), site(2));
        assert_eq!(chained.actual(site(1)), site(2));
        assert_eq!(chained.actual(site(4)), site(2));
    }

    #[test]
    fn rehome_merges_buckets_sharing_a_home() {
        let map = ShardMap::new(2, (1..=3).map(site)).with_site_removed(site(1), site(2));
        let mut per_site = BTreeMap::new();
        per_site.insert(
            site(1),
            vec![Operation::Increment {
                obj: ObjectId::new(10),
                delta: 1,
            }],
        );
        per_site.insert(
            site(2),
            vec![Operation::Insert {
                obj: ObjectId::new(20),
                value: Value::ZERO,
            }],
        );
        let rehomed = map.rehome(&per_site);
        assert_eq!(rehomed.len(), 1);
        assert_eq!(rehomed[&site(2)].len(), 2);
        // Ascending nominal order: site 1's ops precede site 2's.
        assert!(matches!(rehomed[&site(2)][0], Operation::Increment { .. }));
    }
}
