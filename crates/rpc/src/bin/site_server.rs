//! `amc-site-server` — one local system as an independent TCP server.
//!
//! ```text
//! amc-site-server --site 1 --listen 127.0.0.1:7101 --protocol commit-before
//! ```
//!
//! The server owns its engine + WAL and serves protocol and admin frames
//! until killed. It starts empty; the load generator (or any driver)
//! pushes initial data through the admin `Load` request. With `--listen
//! host:0` the kernel picks the port; the chosen address is printed as
//! `listening on <addr>` so an orchestrator can parse it.

use amc_engine::{TplConfig, TwoPLEngine};
use amc_net::comm::EngineHandle;
use amc_net::{LocalCommManager, SubmitMode};
use amc_obs::ObsSink;
use amc_rpc::SiteServer;
use amc_types::SiteId;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: amc-site-server --site <n> --listen <host:port> \
         --protocol <2pc|commit-after|commit-before> [--lock-timeout-ms <ms>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut site = None;
    let mut listen = String::from("127.0.0.1:0");
    let mut mode = None;
    let mut lock_timeout = Duration::from_millis(500);
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--site" => {
                i += 1;
                site = args.get(i).and_then(|v| v.parse::<u32>().ok());
            }
            "--listen" => {
                i += 1;
                listen = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--protocol" => {
                i += 1;
                mode = match args.get(i).map(String::as_str) {
                    Some("2pc") => Some(SubmitMode::TwoPhase),
                    Some("commit-after") => Some(SubmitMode::CommitAfter),
                    Some("commit-before") => Some(SubmitMode::CommitBefore),
                    _ => usage(),
                };
            }
            "--lock-timeout-ms" => {
                i += 1;
                let ms = args.get(i).and_then(|v| v.parse::<u64>().ok());
                lock_timeout = Duration::from_millis(ms.unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(site_n) = site else { usage() };
    let Some(mode) = mode else { usage() };
    if site_n == 0 {
        eprintln!("site 0 is the central system, not a local site");
        std::process::exit(2);
    }
    let site = SiteId::new(site_n);
    let cfg = TplConfig {
        lock_timeout,
        deadlock_check: Duration::from_millis(1),
        ..TplConfig::default()
    };
    let engine = Arc::new(TwoPLEngine::new(cfg));
    let manager = Arc::new(LocalCommManager::new(
        site,
        EngineHandle::Preparable(engine),
    ));

    // A restarted server may race the kernel's TIME_WAIT on its old
    // connections; retry the bind briefly instead of dying.
    let mut server = None;
    for _ in 0..50 {
        match SiteServer::spawn(
            site,
            Arc::clone(&manager),
            mode,
            &listen,
            ObsSink::disabled(),
        ) {
            Ok(s) => {
                server = Some(s);
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => {
                eprintln!("bind {listen}: {e}");
                std::process::exit(1);
            }
        }
    }
    let Some(server) = server else {
        eprintln!("bind {listen}: address in use");
        std::process::exit(1);
    };
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
