//! `amc-site-server` — one local system as an independent TCP server.
//!
//! ```text
//! amc-site-server --site 1 --listen 127.0.0.1:7101 --protocol commit-before
//! ```
//!
//! The server owns its engine + WAL and serves protocol and admin frames
//! until killed. It starts empty; the load generator (or any driver)
//! pushes initial data through the admin `Load` request. With `--listen
//! host:0` the kernel picks the port; the chosen address is printed as
//! `listening on <addr>` so an orchestrator can parse it.
//!
//! With `--wal-dir <dir>` the engine WAL and the communication manager's
//! work journal are persisted to `<dir>/site-N.wal` / `<dir>/site-N.jrn`,
//! and startup becomes a recovery pass: committed state is replayed,
//! losers are rolled back, and in-doubt transactions are resurrected to
//! await the coordinator's final state. A `recovered <summary>` line is
//! printed after the replay. Without the flag the site is purely
//! in-memory, as before.

use amc_engine::{TplConfig, TwoPLEngine};
use amc_net::comm::EngineHandle;
use amc_net::{LocalCommManager, SubmitMode};
use amc_obs::ObsSink;
use amc_paxos::AcceptorHost;
use amc_rpc::{EventServer, SiteRecoveryManager, SiteServer};
use amc_types::SiteId;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: amc-site-server --site <n> --listen <host:port> \
         --protocol <2pc|commit-after|commit-before> [--lock-timeout-ms <ms>] \
         [--wal-dir <dir>] [--acceptor-log <path>] \
         [--runtime <event-loop|threaded>]"
    );
    std::process::exit(2);
}

/// Which server runtime fronts the site.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Runtime {
    /// Epoll loop + worker pool (the default).
    EventLoop,
    /// Thread per connection (the legacy runtime).
    Threaded,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut site = None;
    let mut listen = String::from("127.0.0.1:0");
    let mut mode = None;
    let mut lock_timeout = Duration::from_millis(500);
    let mut wal_dir: Option<String> = None;
    let mut acceptor_log: Option<String> = None;
    let mut runtime = Runtime::EventLoop;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--site" => {
                i += 1;
                site = args.get(i).and_then(|v| v.parse::<u32>().ok());
            }
            "--listen" => {
                i += 1;
                listen = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--protocol" => {
                i += 1;
                mode = match args.get(i).map(String::as_str) {
                    Some("2pc") => Some(SubmitMode::TwoPhase),
                    Some("commit-after") => Some(SubmitMode::CommitAfter),
                    Some("commit-before") => Some(SubmitMode::CommitBefore),
                    _ => usage(),
                };
            }
            "--lock-timeout-ms" => {
                i += 1;
                let ms = args.get(i).and_then(|v| v.parse::<u64>().ok());
                lock_timeout = Duration::from_millis(ms.unwrap_or_else(|| usage()));
            }
            "--wal-dir" => {
                i += 1;
                wal_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--acceptor-log" => {
                i += 1;
                acceptor_log = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--runtime" => {
                i += 1;
                runtime = match args.get(i).map(String::as_str) {
                    Some("event-loop") => Runtime::EventLoop,
                    Some("threaded") => Runtime::Threaded,
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(site_n) = site else { usage() };
    let Some(mode) = mode else { usage() };
    if site_n == 0 {
        eprintln!("site 0 is the central system, not a local site");
        std::process::exit(2);
    }
    let site = SiteId::new(site_n);
    let cfg = TplConfig {
        lock_timeout,
        deadlock_check: Duration::from_millis(1),
        ..TplConfig::default()
    };
    let manager = match &wal_dir {
        Some(dir) => match SiteRecoveryManager::new(dir).open(site, cfg, ObsSink::disabled()) {
            Ok((manager, stats)) => {
                println!(
                    "recovered site {site_n}: {} committed, {} rolled back, \
                         {} in doubt, {} records replayed, {} work entries restored{}",
                    stats.committed,
                    stats.rolled_back,
                    stats.in_doubt,
                    stats.replayed,
                    stats.restored_entries,
                    if stats.torn_tail {
                        " (torn tail truncated)"
                    } else {
                        ""
                    }
                );
                manager
            }
            Err(e) => {
                eprintln!("recovery from {dir}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            let engine = Arc::new(TwoPLEngine::new(cfg));
            Arc::new(LocalCommManager::new(
                site,
                EngineHandle::Preparable(engine),
            ))
        }
    };

    // With --acceptor-log the site co-hosts a Paxos Commit acceptor:
    // opening the log replays any previous incarnation's promises and
    // accepts, so a restarted acceptor keeps its word.
    let acceptor = acceptor_log.map(|path| match AcceptorHost::open(site, &path) {
        Ok(host) => {
            println!("acceptor mounted at {path}");
            Arc::new(host)
        }
        Err(e) => {
            eprintln!("acceptor log {path}: {e}");
            std::process::exit(1);
        }
    });

    // Both runtimes retry AddrInUse internally, so a restart in place
    // (same port) survives the kernel's TIME_WAIT on the old listener.
    let addr = match runtime {
        Runtime::EventLoop => {
            match EventServer::spawn_with_acceptor(
                site,
                manager,
                mode,
                &listen,
                ObsSink::disabled(),
                acceptor,
            ) {
                Ok(s) => {
                    let addr = s.addr();
                    // Leak: the server lives for the process.
                    std::mem::forget(s);
                    addr
                }
                Err(e) => {
                    eprintln!("bind {listen}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Runtime::Threaded => {
            match SiteServer::spawn_with_acceptor(
                site,
                manager,
                mode,
                &listen,
                ObsSink::disabled(),
                acceptor,
            ) {
                Ok(s) => {
                    let addr = s.addr();
                    std::mem::forget(s);
                    addr
                }
                Err(e) => {
                    eprintln!("bind {listen}: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    println!("listening on {addr}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
