//! `amc-paxos-coord` — the *incumbent coordinator replica* of a Paxos
//! Commit deployment, as its own killable OS process.
//!
//! ```text
//! amc-paxos-coord --sites 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 \
//!     --acceptors 3 --txns 20 [--crash-at-txn 9 --crash-after-votes 2]
//! ```
//!
//! Site *i* (1-based) is the *i*-th address; the first `--acceptors`
//! sites must have been started with `--acceptor-log` so the replicated
//! prepare/decision state lands in their durable acceptor logs. The
//! process loads initial counters (unless `--no-load`), then drives
//! `--txns` sequential cross-site transfers, printing one `txn <i>
//! <outcome>` line each.
//!
//! With `--crash-at-txn j --crash-after-votes k` the incumbent "dies"
//! mid-transaction *j*: after the *k*-th prepare vote has been
//! replicated to the acceptor group — prepared sites wedged in doubt,
//! decision never sent — it prints `in-doubt gtx=<n>` and parks
//! forever. The chaos harness then delivers the real `kill -9` and a
//! standby replica finishes the transaction from the acceptor logs.

use amc_core::{Federation, FederationConfig, TxnOutcome};
use amc_net::transport::FederationTransport;
use amc_obs::ObsSink;
use amc_rpc::{RetryPolicy, TcpTransport};
use amc_types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: amc-paxos-coord --sites <addr,addr,...> --acceptors <n> \
         [--txns <n>] [--objects <n>] [--no-load] [--first-gtx <n>] \
         [--crash-at-txn <i> --crash-after-votes <k>]"
    );
    std::process::exit(2);
}

fn obj(site: u32, idx: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + idx)
}

/// Transfer `i`: site pair and object pair cycle deterministically so the
/// harness can reconstruct the expected books from the printed outcomes.
fn transfer(i: u64, sites: u32, objects: u64) -> BTreeMap<SiteId, Vec<Operation>> {
    let from = 1 + (i % u64::from(sites)) as u32;
    let to = 1 + (from % sites);
    let amt = 1 + (i % 5) as i64;
    BTreeMap::from([
        (
            SiteId::new(from),
            vec![Operation::Increment {
                obj: obj(from, i % objects),
                delta: -amt,
            }],
        ),
        (
            SiteId::new(to),
            vec![Operation::Increment {
                obj: obj(to, (i + 3) % objects),
                delta: amt,
            }],
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    let mut acceptors = 0u32;
    let mut txns = 20u64;
    let mut objects = 8u64;
    let mut load = true;
    let mut first_gtx = 1u64;
    let mut crash_at_txn: Option<u64> = None;
    let mut crash_after_votes = 1u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sites" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                addrs = list
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--acceptors" => {
                i += 1;
                acceptors = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--txns" => {
                i += 1;
                txns = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--objects" => {
                i += 1;
                objects = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-load" => load = false,
            "--first-gtx" => {
                i += 1;
                first_gtx = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--crash-at-txn" => {
                i += 1;
                crash_at_txn = args.get(i).and_then(|v| v.parse().ok());
                if crash_at_txn.is_none() {
                    usage();
                }
            }
            "--crash-after-votes" => {
                i += 1;
                crash_after_votes = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    if addrs.is_empty() || acceptors == 0 || acceptors as usize > addrs.len() {
        usage();
    }
    let sites = addrs.len() as u32;
    let addr_map: BTreeMap<SiteId, SocketAddr> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| (SiteId::new(i as u32 + 1), *a))
        .collect();
    let policy = RetryPolicy {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_secs(5),
        max_attempts: 6,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
    };
    let transport = Arc::new(TcpTransport::new(addr_map, policy, ObsSink::disabled()));
    // The acceptor logs live in the *site servers*; the log_dir here only
    // matters for in-process deployments and stays unused over TCP.
    let cfg = FederationConfig::uniform(sites, ProtocolKind::TwoPhaseCommit).with_paxos_commit(
        acceptors,
        std::env::temp_dir().join("amc-paxos-coord-unused"),
    );
    let fed = Federation::with_transport(cfg, transport as Arc<dyn FederationTransport>);
    fed.set_first_gtx(first_gtx);

    if load {
        for s in 1..=sites {
            let data: Vec<(ObjectId, Value)> = (0..objects)
                .map(|i| (obj(s, i), Value::counter(100)))
                .collect();
            if let Err(e) = fed.load_site(SiteId::new(s), &data) {
                eprintln!("load site {s}: {e}");
                std::process::exit(1);
            }
        }
        println!("loaded {sites} sites x {objects} objects");
    }

    let (mut committed, mut aborted) = (0u64, 0u64);
    for i in 0..txns {
        if crash_at_txn == Some(i) {
            fed.inject_coordinator_crash_after_votes(crash_after_votes);
        }
        match fed.run_transaction(&transfer(i, sites, objects)) {
            Ok(report) => {
                match report.outcome {
                    TxnOutcome::Committed => committed += 1,
                    _ => aborted += 1,
                }
                println!("txn {i} {:?}", report.outcome);
            }
            Err(e) if crash_at_txn == Some(i) => {
                // The injected death: the transaction is in doubt at the
                // acceptor group and this replica will never decide it.
                // Park (don't exit) so the harness's kill -9 is what
                // actually ends the incumbent — no destructors, no
                // good-byes, exactly like a real crash.
                println!("in-doubt gtx={} ({e})", first_gtx + i);
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                loop {
                    std::thread::sleep(Duration::from_secs(3600));
                }
            }
            Err(e) => {
                eprintln!("txn {i}: {e}");
                std::process::exit(1);
            }
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
    }
    println!("done committed={committed} aborted={aborted}");
    std::process::exit(if committed > 0 { 0 } else { 1 });
}
