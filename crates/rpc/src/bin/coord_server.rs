//! `amc-coord-server` — one shard-slot coordinator as an independent TCP
//! server: the scale-out deployment's unit of commit capacity.
//!
//! ```text
//! amc-coord-server --slot 0 --coordinators 4 \
//!     --sites 127.0.0.1:7101,127.0.0.1:7102 --protocol 2pc \
//!     --listen 127.0.0.1:7201
//! ```
//!
//! Site *i* (1-based) is the *i*-th address; every coordinator of a
//! deployment must list the **same fleet in the same order**. The
//! process embeds one [`Federation`] pinned to id-range slot `--slot` of
//! `--coordinators` (so the N coordinator processes mint disjoint
//! transaction ids with no coordination), fronts it with a listener
//! speaking the coordinator frames, and serves until killed. With
//! `--listen host:0` the kernel picks the port; the chosen address is
//! printed as `listening on <addr>` so an orchestrator can parse it.
//!
//! A driver (`amc-loadgen --coordinators`, or any [`CoordClient`]) routes
//! each transaction to the coordinator owning its minimum key and sends
//! the per-site operation buckets in one `Exec` frame.
//!
//! [`CoordClient`]: amc_rpc::CoordClient
//! [`Federation`]: amc_core::Federation

use amc_core::{Federation, FederationConfig};
use amc_net::transport::FederationTransport;
use amc_obs::ObsSink;
use amc_rpc::{CoordInfo, CoordServer, RetryPolicy, TcpTransport};
use amc_types::{ProtocolKind, SiteId};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: amc-coord-server --slot <k> --coordinators <n> \
         --sites <addr,addr,...> --protocol <2pc|commit-after|commit-before> \
         [--listen <host:port>]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut slot = None;
    let mut coordinators = None;
    let mut addrs: Vec<SocketAddr> = Vec::new();
    let mut protocol = None;
    let mut listen = String::from("127.0.0.1:0");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--slot" => {
                i += 1;
                slot = args.get(i).and_then(|v| v.parse::<u32>().ok());
            }
            "--coordinators" => {
                i += 1;
                coordinators = args.get(i).and_then(|v| v.parse::<u32>().ok());
            }
            "--sites" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                addrs = list
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--protocol" => {
                i += 1;
                protocol = match args.get(i).map(String::as_str) {
                    Some("2pc") => Some(ProtocolKind::TwoPhaseCommit),
                    Some("commit-after") => Some(ProtocolKind::CommitAfter),
                    Some("commit-before") => Some(ProtocolKind::CommitBefore),
                    _ => usage(),
                };
            }
            "--listen" => {
                i += 1;
                listen = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
        i += 1;
    }
    let Some(slot) = slot else { usage() };
    let Some(coordinators) = coordinators else {
        usage()
    };
    let Some(protocol) = protocol else { usage() };
    if addrs.is_empty() || slot >= coordinators {
        usage();
    }

    let sites = addrs.len() as u32;
    let addr_map: BTreeMap<SiteId, SocketAddr> = addrs
        .iter()
        .enumerate()
        .map(|(i, a)| (SiteId::new(i as u32 + 1), *a))
        .collect();
    let policy = RetryPolicy {
        connect_timeout: Duration::from_millis(500),
        request_timeout: Duration::from_secs(5),
        max_attempts: 6,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
    };
    let transport = Arc::new(TcpTransport::new(addr_map, policy, ObsSink::disabled()));
    let cfg = FederationConfig::uniform(sites, protocol).sharded(slot, coordinators);
    let mut fed = Federation::with_transport(cfg, transport as Arc<dyn FederationTransport>);
    fed.set_recording(false, false);
    let info = CoordInfo {
        slot,
        coordinators,
        epoch: 1,
        sites: (1..=sites).map(SiteId::new).collect(),
    };
    let server = match CoordServer::spawn(Arc::new(fed), info, &listen) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bind {listen}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.addr());
    println!("coordinator slot {slot}/{coordinators}, {sites} sites, {protocol:?}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    // Serve until killed.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
