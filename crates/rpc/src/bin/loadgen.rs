//! `amc-loadgen` — drive a mixed workload against running site servers.
//!
//! ```text
//! amc-loadgen --sites 127.0.0.1:7101,127.0.0.1:7102 \
//!     --protocol commit-before --txns 200 --clients 4
//! ```
//!
//! Site *i* (1-based) is the *i*-th address. The generator waits for
//! every site to answer a ping, loads initial counters, runs `--txns`
//! mixed global transactions (cross-site transfers, single-site updates,
//! read-only probes) on `--clients` worker threads through the full
//! coordinator + TCP transport stack, and prints
//!
//! ```text
//! committed=N aborted=N site_down=N throughput=T txn/s p50=Xms p99=Yms
//! ```
//!
//! Exit status is nonzero when nothing committed. With `--events-out
//! <path>` the client-side observability log is dumped as TSV
//! (`seq  at_us  txn  site  event`) for `explain --events` — rpc-shed
//! and rpc-retry rows included, so backpressure and retry storms are
//! attributable per transaction.

use amc_core::{Federation, FederationConfig, TxnOutcome};
use amc_net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc_obs::ObsSink;
use amc_rpc::{RetryPolicy, TcpTransport};
use amc_types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: amc-loadgen --sites <addr,addr,...> \
         --protocol <2pc|commit-after|commit-before> [--txns <n>] [--clients <n>] \
         [--objects <n>] [--seed <n>] [--events-out <path>] [--client <mux|pooled>]"
    );
    std::process::exit(2);
}

/// splitmix64: deterministic program generation without a rand dep.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn obj(site: u32, idx: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + idx)
}

/// One decomposed global program: operations per participating site.
type Program = BTreeMap<SiteId, Vec<Operation>>;

/// One mixed program: mostly 2-site transfers, some single-site updates,
/// ~1 in 8 read-only.
fn program(rng: &mut u64, sites: u32, objects: u64) -> Program {
    let a = 1 + (mix(rng) % u64::from(sites)) as u32;
    let kind = mix(rng) % 8;
    let x = mix(rng) % objects;
    let y = mix(rng) % objects;
    if kind == 0 {
        // Read-only probe across one or two sites.
        let b = 1 + (mix(rng) % u64::from(sites)) as u32;
        let mut p = BTreeMap::from([(SiteId::new(a), vec![Operation::Read { obj: obj(a, x) }])]);
        p.entry(SiteId::new(b))
            .or_insert_with(Vec::new)
            .push(Operation::Read { obj: obj(b, y) });
        p
    } else if sites > 1 && kind < 6 {
        // Cross-site transfer: conserves the global sum.
        let mut b = 1 + (mix(rng) % u64::from(sites)) as u32;
        if b == a {
            b = 1 + (a % sites);
        }
        let amt = 1 + (mix(rng) % 7) as i64;
        BTreeMap::from([
            (
                SiteId::new(a),
                vec![Operation::Increment {
                    obj: obj(a, x),
                    delta: -amt,
                }],
            ),
            (
                SiteId::new(b),
                vec![Operation::Increment {
                    obj: obj(b, y),
                    delta: amt,
                }],
            ),
        ])
    } else {
        // Single-site multi-op update (sum-neutral).
        let amt = 1 + (mix(rng) % 5) as i64;
        BTreeMap::from([(
            SiteId::new(a),
            vec![
                Operation::Increment {
                    obj: obj(a, x),
                    delta: amt,
                },
                Operation::Increment {
                    obj: obj(a, y),
                    delta: -amt,
                },
            ],
        )])
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    let mut protocol = None;
    let mut txns = 100usize;
    let mut clients = 4usize;
    let mut objects = 50u64;
    let mut seed = 1u64;
    let mut events_out: Option<String> = None;
    // Mux by default: one pipelined connection per site regardless of
    // how many worker threads drive transactions through it.
    let mut mux = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sites" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                addrs = list
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--protocol" => {
                i += 1;
                protocol = match args.get(i).map(String::as_str) {
                    Some("2pc") => Some(ProtocolKind::TwoPhaseCommit),
                    Some("commit-after") => Some(ProtocolKind::CommitAfter),
                    Some("commit-before") => Some(ProtocolKind::CommitBefore),
                    _ => usage(),
                };
            }
            "--txns" => {
                i += 1;
                txns = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--clients" => {
                i += 1;
                clients = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--objects" => {
                i += 1;
                objects = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--events-out" => {
                i += 1;
                events_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--client" => {
                i += 1;
                mux = match args.get(i).map(String::as_str) {
                    Some("mux") => true,
                    Some("pooled") => false,
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    if addrs.is_empty() {
        usage();
    }
    let Some(protocol) = protocol else { usage() };
    let sites = addrs.len() as u32;

    let obs = if events_out.is_some() {
        ObsSink::enabled(1 << 20)
    } else {
        ObsSink::disabled()
    };
    let site_addrs: BTreeMap<SiteId, SocketAddr> = addrs
        .iter()
        .enumerate()
        .map(|(idx, addr)| (SiteId::new(idx as u32 + 1), *addr))
        .collect();
    let tcp = Arc::new(if mux {
        TcpTransport::new_mux(site_addrs, RetryPolicy::default(), obs.clone())
    } else {
        TcpTransport::new(site_addrs, RetryPolicy::default(), obs.clone())
    });
    let transport = tcp.clone();

    // Wait for every site to answer a ping (servers may still be binding).
    let deadline = Instant::now() + Duration::from_secs(10);
    for s in 1..=sites {
        let site = SiteId::new(s);
        loop {
            match transport.admin(site, AdminRequest::Ping) {
                Ok(AdminReply::Pong) => break,
                _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(100)),
                _ => {
                    eprintln!("site {s} at {} never answered", addrs[s as usize - 1]);
                    std::process::exit(1);
                }
            }
        }
    }

    // Initial data: every object starts at 100.
    for s in 1..=sites {
        let data: Vec<(ObjectId, Value)> = (0..objects)
            .map(|i| (obj(s, i), Value::counter(100)))
            .collect();
        if let Err(e) = transport.admin(SiteId::new(s), AdminRequest::Load(data)) {
            eprintln!("load site {s}: {e}");
            std::process::exit(1);
        }
    }

    let cfg = FederationConfig::uniform(sites, protocol);
    let fed = Arc::new(Federation::with_transport(
        cfg,
        transport.clone() as Arc<dyn FederationTransport>,
    ));

    let mut rng = seed;
    let queue: Arc<Mutex<Vec<Program>>> = Arc::new(Mutex::new(
        (0..txns)
            .map(|_| program(&mut rng, sites, objects))
            .collect(),
    ));
    let committed = Arc::new(Mutex::new(Vec::<Duration>::new()));
    let aborted = Arc::new(Mutex::new(0u64));
    let site_down = Arc::new(Mutex::new(0u64));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            let fed = Arc::clone(&fed);
            let queue = Arc::clone(&queue);
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let site_down = Arc::clone(&site_down);
            scope.spawn(move || loop {
                let Some(p) = queue.lock().pop() else { return };
                // A site mid-restart surfaces as SiteDown after the
                // client's own retries; give the program a few more
                // chances before counting it lost.
                for attempt in 0..5 {
                    match fed.run_transaction(&p) {
                        Ok(report) => {
                            match report.outcome {
                                TxnOutcome::Committed => committed.lock().push(report.latency),
                                TxnOutcome::Aborted => *aborted.lock() += 1,
                                TxnOutcome::L1Rejected(_) if attempt < 4 => continue,
                                TxnOutcome::L1Rejected(_) => *aborted.lock() += 1,
                            }
                            break;
                        }
                        Err(_) if attempt < 4 => {
                            std::thread::sleep(Duration::from_millis(200));
                        }
                        Err(_) => {
                            *site_down.lock() += 1;
                            break;
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed();

    let mut lats = committed.lock().clone();
    lats.sort();
    let n = lats.len();
    let pct = |p: f64| -> f64 {
        if n == 0 {
            return 0.0;
        }
        let idx = ((n as f64 - 1.0) * p).round() as usize;
        lats[idx].as_secs_f64() * 1e3
    };
    let throughput = n as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "committed={} aborted={} site_down={} sheds={} throughput={:.1} txn/s p50={:.2}ms p99={:.2}ms",
        n,
        *aborted.lock(),
        *site_down.lock(),
        tcp.sheds(),
        throughput,
        pct(0.50),
        pct(0.99),
    );

    if let Some(path) = events_out {
        let log = obs.snapshot();
        let mut out = String::new();
        for e in log.events() {
            let txn = e
                .txn
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                e.seq, e.at.0, txn, e.site, e.kind
            ));
        }
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        }
    }

    if n == 0 {
        eprintln!("no transaction committed");
        std::process::exit(1);
    }
}
