//! `amc-loadgen` — drive a mixed workload against running site servers.
//!
//! ```text
//! amc-loadgen --sites 127.0.0.1:7101,127.0.0.1:7102 \
//!     --protocol commit-before --txns 200 --clients 4
//! ```
//!
//! Site *i* (1-based) is the *i*-th address. The generator waits for
//! every site to answer a ping, loads initial counters, runs `--txns`
//! mixed global transactions (cross-site transfers, single-site updates,
//! read-only probes) on `--clients` worker threads through the full
//! coordinator + TCP transport stack, and prints
//!
//! ```text
//! committed=N aborted=N site_down=N throughput=T txn/s p50=Xms p99=Yms
//! ```
//!
//! **Workload mixes** — `--workload
//! {transfer|zipf|hotkey|tpcc-lite|read-heavy}` swaps the legacy mixed
//! stream for one of the contention-aware engine's mixes
//! (`amc_workload::mixes`), with `--theta` setting the Zipf skew
//! (0 = uniform, 0.9–1.2 = hot; default 0.6). The stream is a pure
//! function of `(workload, sites, objects, theta, seed)` — bit-identical
//! to what the DES benchmarks (E15) replay for the same parameters — and
//! the summary line gains `workload=/theta=` plus per-op-class counts
//! (`ops_read=/ops_inc=/ops_write=/ops_reserve=`), so the tpcc-lite
//! escrow reserves are visible end-to-end over real TCP. Mixes drive
//! site mode only; sharded mode keeps the legacy stream.
//!
//! Exit status is nonzero when nothing committed. With `--events-out
//! <path>` the client-side observability log is dumped as TSV
//! (`seq  at_us  txn  site  event`) for `explain --events` — rpc-shed
//! and rpc-retry rows included, so backpressure and retry storms are
//! attributable per transaction.
//!
//! **Sharded mode** — `--coordinators <addr,addr,...>` targets running
//! `amc-coord-server` processes instead of site servers. The generator
//! discovers each coordinator's slot with `Describe`, routes every
//! transaction to the coordinator owning its minimum key (the shard
//! map's ownership rule), and sends whole programs as `Exec` frames.
//! The summary gains one `coord k: ...` line per coordinator, and
//! `--events-out` rows carry `C<k>` in the site column so
//! `explain --events --coordinator <k>` can isolate one shard's traffic.

use amc_core::{Federation, FederationConfig, TxnOutcome};
use amc_net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc_obs::ObsSink;
use amc_rpc::{CoordClient, RetryPolicy, TcpTransport};
use amc_types::{ObjectId, Operation, ProtocolKind, SiteId, Value};
use amc_workload::{MixGen, MixKind, MixSpec};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn usage() -> ! {
    eprintln!(
        "usage: amc-loadgen --sites <addr,addr,...> \
         --protocol <2pc|commit-after|commit-before> [--txns <n>] [--clients <n>] \
         [--objects <n>] [--seed <n>] \
         [--workload <transfer|zipf|hotkey|tpcc-lite|read-heavy>] [--theta <0..=2>] \
         [--events-out <path>] [--client <mux|pooled>]\n\
       or: amc-loadgen --coordinators <addr,addr,...> [--txns <n>] [--clients <n>] \
         [--objects <n>] [--seed <n>] [--events-out <path>]"
    );
    std::process::exit(2);
}

/// splitmix64: deterministic program generation without a rand dep.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn obj(site: u32, idx: u64) -> ObjectId {
    ObjectId::new(u64::from(site) * (1 << 32) + idx)
}

/// One decomposed global program: operations per participating site.
type Program = BTreeMap<SiteId, Vec<Operation>>;

/// The shard map's ownership rule, restated: hash (splitmix64) of the
/// minimum object id touched, modulo the coordinator count. Must match
/// `amc_shard::ShardMap::owner_of` byte for byte.
fn owner_of(p: &Program, coordinators: u32) -> u32 {
    let min_obj = p.values().flatten().map(|op| op.object().raw()).min();
    match min_obj {
        Some(o) => {
            let mut state = o;
            (mix(&mut state) % u64::from(coordinators)) as u32
        }
        None => 0,
    }
}

/// One mixed program: mostly 2-site transfers, some single-site updates,
/// ~1 in 8 read-only.
fn program(rng: &mut u64, sites: u32, objects: u64) -> Program {
    let a = 1 + (mix(rng) % u64::from(sites)) as u32;
    let kind = mix(rng) % 8;
    let x = mix(rng) % objects;
    let y = mix(rng) % objects;
    if kind == 0 {
        // Read-only probe across one or two sites.
        let b = 1 + (mix(rng) % u64::from(sites)) as u32;
        let mut p = BTreeMap::from([(SiteId::new(a), vec![Operation::Read { obj: obj(a, x) }])]);
        p.entry(SiteId::new(b))
            .or_insert_with(Vec::new)
            .push(Operation::Read { obj: obj(b, y) });
        p
    } else if sites > 1 && kind < 6 {
        // Cross-site transfer: conserves the global sum.
        let mut b = 1 + (mix(rng) % u64::from(sites)) as u32;
        if b == a {
            b = 1 + (a % sites);
        }
        let amt = 1 + (mix(rng) % 7) as i64;
        BTreeMap::from([
            (
                SiteId::new(a),
                vec![Operation::Increment {
                    obj: obj(a, x),
                    delta: -amt,
                }],
            ),
            (
                SiteId::new(b),
                vec![Operation::Increment {
                    obj: obj(b, y),
                    delta: amt,
                }],
            ),
        ])
    } else {
        // Single-site multi-op update (sum-neutral).
        let amt = 1 + (mix(rng) % 5) as i64;
        BTreeMap::from([(
            SiteId::new(a),
            vec![
                Operation::Increment {
                    obj: obj(a, x),
                    delta: amt,
                },
                Operation::Increment {
                    obj: obj(a, y),
                    delta: -amt,
                },
            ],
        )])
    }
}

/// Per-op-class totals of a program stream: (reads, increments,
/// writes/inserts/deletes, escrow reserves) — the summary columns that
/// make a mix's shape visible from the wire side.
fn op_class_counts(programs: &[Program]) -> (u64, u64, u64, u64) {
    let mut reads = 0;
    let mut incs = 0;
    let mut writes = 0;
    let mut reserves = 0;
    for op in programs.iter().flat_map(|p| p.values()).flatten() {
        match op {
            Operation::Read { .. } => reads += 1,
            Operation::Increment { .. } => incs += 1,
            Operation::Write { .. } | Operation::Insert { .. } | Operation::Delete { .. } => {
                writes += 1
            }
            Operation::Reserve { .. } => reserves += 1,
        }
    }
    (reads, incs, writes, reserves)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addrs: Vec<SocketAddr> = Vec::new();
    let mut coord_addrs: Vec<SocketAddr> = Vec::new();
    let mut protocol = None;
    let mut txns = 100usize;
    let mut clients = 4usize;
    let mut objects = 50u64;
    let mut seed = 1u64;
    let mut workload: Option<MixKind> = None;
    let mut theta = 0.6f64;
    let mut events_out: Option<String> = None;
    // Mux by default: one pipelined connection per site regardless of
    // how many worker threads drive transactions through it.
    let mut mux = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sites" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                addrs = list
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--coordinators" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                coord_addrs = list
                    .split(',')
                    .map(|a| a.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--protocol" => {
                i += 1;
                protocol = match args.get(i).map(String::as_str) {
                    Some("2pc") => Some(ProtocolKind::TwoPhaseCommit),
                    Some("commit-after") => Some(ProtocolKind::CommitAfter),
                    Some("commit-before") => Some(ProtocolKind::CommitBefore),
                    _ => usage(),
                };
            }
            "--txns" => {
                i += 1;
                txns = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--clients" => {
                i += 1;
                clients = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--objects" => {
                i += 1;
                objects = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--workload" => {
                i += 1;
                workload = Some(
                    args.get(i)
                        .and_then(|v| MixKind::parse(v))
                        .unwrap_or_else(|| usage()),
                );
            }
            "--theta" => {
                i += 1;
                theta = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .filter(|t| (0.0..=2.0).contains(t))
                    .unwrap_or_else(|| usage());
            }
            "--events-out" => {
                i += 1;
                events_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--client" => {
                i += 1;
                mux = match args.get(i).map(String::as_str) {
                    Some("mux") => true,
                    Some("pooled") => false,
                    _ => usage(),
                };
            }
            _ => usage(),
        }
        i += 1;
    }
    if !coord_addrs.is_empty() {
        if workload.is_some() {
            eprintln!("--workload mixes drive --sites mode; sharded mode keeps the legacy stream");
            std::process::exit(2);
        }
        // Sharded mode: protocol and site addresses live with the
        // coordinator servers; everything routes through Exec frames.
        run_sharded(coord_addrs, txns, clients, objects, seed, events_out);
    }
    if addrs.is_empty() {
        usage();
    }
    let Some(protocol) = protocol else { usage() };
    let sites = addrs.len() as u32;

    let obs = if events_out.is_some() {
        ObsSink::enabled(1 << 20)
    } else {
        ObsSink::disabled()
    };
    let site_addrs: BTreeMap<SiteId, SocketAddr> = addrs
        .iter()
        .enumerate()
        .map(|(idx, addr)| (SiteId::new(idx as u32 + 1), *addr))
        .collect();
    let tcp = Arc::new(if mux {
        TcpTransport::new_mux(site_addrs, RetryPolicy::default(), obs.clone())
    } else {
        TcpTransport::new(site_addrs, RetryPolicy::default(), obs.clone())
    });
    let transport = tcp.clone();

    // Wait for every site to answer a ping (servers may still be binding).
    let deadline = Instant::now() + Duration::from_secs(10);
    for s in 1..=sites {
        let site = SiteId::new(s);
        loop {
            match transport.admin(site, AdminRequest::Ping) {
                Ok(AdminReply::Pong) => break,
                _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(100)),
                _ => {
                    eprintln!("site {s} at {} never answered", addrs[s as usize - 1]);
                    std::process::exit(1);
                }
            }
        }
    }

    // Initial data: every object starts at 100.
    for s in 1..=sites {
        let data: Vec<(ObjectId, Value)> = (0..objects)
            .map(|i| (obj(s, i), Value::counter(100)))
            .collect();
        if let Err(e) = transport.admin(SiteId::new(s), AdminRequest::Load(data)) {
            eprintln!("load site {s}: {e}");
            std::process::exit(1);
        }
    }

    let cfg = FederationConfig::uniform(sites, protocol);
    let fed = Arc::new(Federation::with_transport(
        cfg,
        transport.clone() as Arc<dyn FederationTransport>,
    ));

    let programs: Vec<Program> = match workload {
        Some(kind) => {
            if objects < 8 {
                eprintln!("--workload mixes need --objects >= 8");
                std::process::exit(2);
            }
            // The same seeded stream the DES benchmarks (E15) replay for
            // these parameters — determinism contract, DESIGN.md §14.
            let spec = MixSpec {
                sites,
                objects_per_site: objects,
                theta,
                intended_abort_prob: 0.0,
                max_fanout: sites.min(3),
            };
            MixGen::new(kind, spec, seed)
                .programs(txns)
                .into_iter()
                .map(|p| p.per_site)
                .collect()
        }
        None => {
            let mut rng = seed;
            (0..txns)
                .map(|_| program(&mut rng, sites, objects))
                .collect()
        }
    };
    let op_counts = op_class_counts(&programs);
    let queue: Arc<Mutex<Vec<Program>>> = Arc::new(Mutex::new(programs));
    let committed = Arc::new(Mutex::new(Vec::<Duration>::new()));
    let aborted = Arc::new(Mutex::new(0u64));
    let site_down = Arc::new(Mutex::new(0u64));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            let fed = Arc::clone(&fed);
            let queue = Arc::clone(&queue);
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let site_down = Arc::clone(&site_down);
            scope.spawn(move || loop {
                let Some(p) = queue.lock().pop() else { return };
                // A site mid-restart surfaces as SiteDown after the
                // client's own retries; give the program a few more
                // chances before counting it lost.
                for attempt in 0..5 {
                    match fed.run_transaction(&p) {
                        Ok(report) => {
                            match report.outcome {
                                TxnOutcome::Committed => committed.lock().push(report.latency),
                                TxnOutcome::Aborted => *aborted.lock() += 1,
                                TxnOutcome::L1Rejected(_) if attempt < 4 => continue,
                                TxnOutcome::L1Rejected(_) => *aborted.lock() += 1,
                            }
                            break;
                        }
                        Err(_) if attempt < 4 => {
                            std::thread::sleep(Duration::from_millis(200));
                        }
                        Err(_) => {
                            *site_down.lock() += 1;
                            break;
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed();

    let mut lats = committed.lock().clone();
    lats.sort();
    let n = lats.len();
    let pct = |p: f64| -> f64 {
        if n == 0 {
            return 0.0;
        }
        let idx = ((n as f64 - 1.0) * p).round() as usize;
        lats[idx].as_secs_f64() * 1e3
    };
    let throughput = n as f64 / wall.as_secs_f64().max(1e-9);
    // Legacy invocations keep the exact historical summary line; a mix
    // appends its shape columns after the percentiles.
    let mix_cols = match workload {
        Some(kind) => {
            let (reads, incs, writes, reserves) = op_counts;
            format!(
                " workload={} theta={theta} ops_read={reads} ops_inc={incs} \
                 ops_write={writes} ops_reserve={reserves}",
                kind.label(),
            )
        }
        None => String::new(),
    };
    println!(
        "committed={} aborted={} site_down={} sheds={} throughput={:.1} txn/s p50={:.2}ms p99={:.2}ms{mix_cols}",
        n,
        *aborted.lock(),
        *site_down.lock(),
        tcp.sheds(),
        throughput,
        pct(0.50),
        pct(0.99),
    );

    if let Some(path) = events_out {
        let log = obs.snapshot();
        let mut out = String::new();
        for e in log.events() {
            let txn = e
                .txn
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                e.seq, e.at.0, txn, e.site, e.kind
            ));
        }
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        }
    }

    if n == 0 {
        eprintln!("no transaction committed");
        std::process::exit(1);
    }
}

/// One TSV event row produced in sharded mode: the site column carries
/// `C<slot>` so `explain --events --coordinator <slot>` can filter.
struct CoordEvent {
    at_us: u64,
    txn: Option<u64>,
    coord: u32,
    event: String,
}

/// Sharded mode: drive `amc-coord-server` processes through `Exec`
/// frames, routing each program to the coordinator owning its minimum
/// key. Never returns.
fn run_sharded(
    coord_addrs: Vec<SocketAddr>,
    txns: usize,
    clients: usize,
    objects: u64,
    seed: u64,
    events_out: Option<String>,
) -> ! {
    let policy = RetryPolicy::default();
    let conns: Vec<CoordClient> = coord_addrs
        .iter()
        .map(|a| CoordClient::new(*a, policy))
        .collect();

    // Wait for every coordinator, then discover slots and the fleet.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut by_slot: Vec<Option<(CoordClient, Vec<SiteId>)>> = Vec::new();
    by_slot.resize_with(conns.len(), || None);
    for (idx, client) in conns.into_iter().enumerate() {
        let info = loop {
            match client.describe() {
                Ok(info) => break info,
                _ if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(100)),
                _ => {
                    eprintln!("coordinator at {} never answered", coord_addrs[idx]);
                    std::process::exit(1);
                }
            }
        };
        if info.coordinators as usize != coord_addrs.len() {
            eprintln!(
                "coordinator at {} expects {} coordinators, {} given",
                coord_addrs[idx],
                info.coordinators,
                coord_addrs.len()
            );
            std::process::exit(1);
        }
        let slot = info.slot as usize;
        if slot >= by_slot.len() || by_slot[slot].is_some() {
            eprintln!("duplicate or out-of-range slot {slot}");
            std::process::exit(1);
        }
        by_slot[slot] = Some((client, info.sites));
    }
    let mut coords: Vec<CoordClient> = Vec::new();
    let mut fleet: Vec<SiteId> = Vec::new();
    for (slot, entry) in by_slot.into_iter().enumerate() {
        let Some((client, sites)) = entry else {
            eprintln!("no coordinator announced slot {slot}");
            std::process::exit(1);
        };
        if slot == 0 {
            fleet = sites;
        } else if fleet != sites {
            eprintln!("coordinator slot {slot} drives a different site fleet");
            std::process::exit(1);
        }
        coords.push(client);
    }
    let coordinators = coords.len() as u32;
    let sites = fleet.len() as u32;
    if sites == 0 {
        eprintln!("coordinators drive an empty site fleet");
        std::process::exit(1);
    }

    // Initial data travels as ordinary committed transactions (the
    // generator has no site admin channel in sharded mode): batches of
    // inserts through coordinator 0.
    for s in 1..=sites {
        for chunk in (0..objects).collect::<Vec<_>>().chunks(32) {
            let ops: Vec<Operation> = chunk
                .iter()
                .map(|&i| Operation::Insert {
                    obj: obj(s, i),
                    value: Value::counter(100),
                })
                .collect();
            let program = BTreeMap::from([(SiteId::new(s), ops)]);
            match coords[0].exec(program) {
                Ok(report) if report.outcome == TxnOutcome::Committed => {}
                Ok(report) => {
                    eprintln!("load site {s}: {:?}", report.outcome);
                    std::process::exit(1);
                }
                Err(e) => {
                    eprintln!("load site {s}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }

    let mut rng = seed;
    let queue: Arc<Mutex<Vec<Program>>> = Arc::new(Mutex::new(
        (0..txns)
            .map(|_| program(&mut rng, sites, objects))
            .collect(),
    ));
    let coords = Arc::new(coords);
    let committed = Arc::new(Mutex::new(Vec::<Duration>::new()));
    let aborted = Arc::new(Mutex::new(0u64));
    let down = Arc::new(Mutex::new(0u64));
    let per_coord: Arc<Vec<Mutex<(u64, u64)>>> = Arc::new(
        (0..coordinators)
            .map(|_| Mutex::new((0u64, 0u64)))
            .collect(),
    );
    let events: Arc<Mutex<Vec<CoordEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let record = events_out.is_some();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients.max(1) {
            let coords = Arc::clone(&coords);
            let queue = Arc::clone(&queue);
            let committed = Arc::clone(&committed);
            let aborted = Arc::clone(&aborted);
            let down = Arc::clone(&down);
            let per_coord = Arc::clone(&per_coord);
            let events = Arc::clone(&events);
            scope.spawn(move || loop {
                let Some(p) = queue.lock().pop() else { return };
                let owner = owner_of(&p, coordinators);
                for attempt in 0..5 {
                    match coords[owner as usize].exec(p.clone()) {
                        Ok(report) => {
                            if record {
                                events.lock().push(CoordEvent {
                                    at_us: start.elapsed().as_micros() as u64,
                                    txn: Some(report.gtx.raw()),
                                    coord: owner,
                                    event: format!(
                                        "exec-done outcome={:?} latency_us={} messages={}",
                                        report.outcome, report.latency_us, report.messages
                                    ),
                                });
                            }
                            match report.outcome {
                                TxnOutcome::Committed => {
                                    committed
                                        .lock()
                                        .push(Duration::from_micros(report.latency_us));
                                    per_coord[owner as usize].lock().0 += 1;
                                }
                                TxnOutcome::L1Rejected(_) if attempt < 4 => continue,
                                _ => {
                                    *aborted.lock() += 1;
                                    per_coord[owner as usize].lock().1 += 1;
                                }
                            }
                            break;
                        }
                        Err(e) => {
                            // Exec never retries inside the client (a
                            // transaction is not idempotent); the failure
                            // is final here too.
                            if record {
                                events.lock().push(CoordEvent {
                                    at_us: start.elapsed().as_micros() as u64,
                                    txn: None,
                                    coord: owner,
                                    event: format!("exec-failed {e}"),
                                });
                            }
                            *down.lock() += 1;
                            break;
                        }
                    }
                }
            });
        }
    });
    let wall = start.elapsed();

    let mut lats = committed.lock().clone();
    lats.sort();
    let n = lats.len();
    let pct = |p: f64| -> f64 {
        if n == 0 {
            return 0.0;
        }
        let idx = ((n as f64 - 1.0) * p).round() as usize;
        lats[idx].as_secs_f64() * 1e3
    };
    let throughput = n as f64 / wall.as_secs_f64().max(1e-9);
    println!(
        "committed={} aborted={} coord_down={} throughput={:.1} txn/s p50={:.2}ms p99={:.2}ms",
        n,
        *aborted.lock(),
        *down.lock(),
        throughput,
        pct(0.50),
        pct(0.99),
    );
    for (k, stats) in per_coord.iter().enumerate() {
        let (c, a) = *stats.lock();
        println!("coord {k}: committed={c} aborted={a}");
    }

    if let Some(path) = events_out {
        let mut rows = events.lock();
        rows.sort_by_key(|e| e.at_us);
        let mut out = String::new();
        for (seq, e) in rows.iter().enumerate() {
            let txn = e
                .txn
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{}\t{}\t{}\tC{}\t{}\n",
                seq, e.at_us, txn, e.coord, e.event
            ));
        }
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("write {path}: {e}");
            std::process::exit(1);
        }
    }

    if n == 0 {
        eprintln!("no transaction committed");
        std::process::exit(1);
    }
    std::process::exit(0);
}
