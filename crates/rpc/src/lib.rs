//! # amc-rpc
//!
//! The networked federation runtime: the paper's integrated system as it
//! actually deploys — a central coordinator talking to independent local
//! systems over a network, not over function calls.
//!
//! * [`wire`] — the length-prefixed framed codec (version byte +
//!   hand-rolled binary body) over the `amc-net` [`amc_net::Payload`]
//!   vocabulary, so the simulator and the networked runtime share one
//!   message grammar;
//! * [`server`] — the blocking TCP **site server**: one listener per
//!   local system, thread-per-connection, each request dispatched to the
//!   same `LocalCommManager` the in-process runtime uses. Malformed
//!   frames kill their connection, never the server;
//! * [`event_loop`] — the **event-loop site server**: one epoll thread
//!   multiplexing every connection, incremental frame decode, batched
//!   reply writes, a worker pool for dispatch, and explicit per-connection
//!   backpressure (excess requests are shed with `BufferExhausted`, not
//!   queued). Same spawn surface and wire vocabulary as [`server`];
//! * [`coord`] — the TCP **coordinator server** + client: one
//!   [`amc_core::Federation`] shard slot behind a listener speaking the
//!   coordinator frames (kinds `5`/`6`), so a remote router or load
//!   generator drives whole global transactions in one round trip;
//! * [`client`] — the connection-supervising **RPC client**: per-request
//!   deadlines, capped exponential-backoff retries, automatic reconnect,
//!   all surfaced as `amc-obs` events so `explain` works on networked
//!   runs;
//! * [`mux`] — the **multiplexed pipelining client**: one shared
//!   connection per site, any number of concurrent callers, replies
//!   matched to callers by request id in whatever order the server
//!   finishes them;
//! * [`transport`] — the [`amc_net::transport::FederationTransport`] impl
//!   gluing the two into `amc_core::Federation::with_transport`;
//! * [`recovery`] — durable restart: a site started with `--wal-dir`
//!   persists its engine WAL and work journal there, and
//!   [`SiteRecoveryManager`] rebuilds both after a `kill -9`, resolving
//!   in-doubt transactions through the coordinator's inquiry path.
//!
//! The binaries `amc-site-server` and `amc-loadgen` run the same pieces
//! as separate OS processes; experiment E10 measures what the wire costs
//! relative to the in-process dispatcher.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod client;
pub mod coord;
pub mod event_loop;
pub mod mux;
pub mod recovery;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{RetryPolicy, RpcClient};
pub use coord::{CoordClient, CoordInfo, CoordServer, ExecReport};
pub use event_loop::{EventServer, EventServerStats, MAX_IN_FLIGHT_PER_CONN, MAX_WBUF_BYTES};
pub use mux::MuxClient;
pub use recovery::{FileWorkJournal, SiteRecoveryManager};
pub use server::SiteServer;
pub use transport::TcpTransport;
pub use wire::{Frame, FrameBuffer, FrameReadError, WireError, MAX_FRAME_LEN, WIRE_VERSION};
