//! The TCP coordinator server and its client: the router↔coordinator
//! surface of the sharded topology.
//!
//! A [`CoordServer`] fronts one [`Federation`] coordinator — one shard
//! slot of the multi-coordinator deployment — behind a loopback listener
//! speaking frame kinds `5`/`6` of the wire codec. A remote router (or
//! `amc-loadgen --coordinators`) discovers the coordinator's identity
//! with [`CoordRequest::Describe`] and drives whole global transactions
//! through [`CoordRequest::Exec`]: the per-site operation buckets travel
//! in one frame, the coordinator runs the full commit protocol against
//! its site fleet, and one [`CoordReply::Done`] comes back with the
//! outcome and the coordinator-side measurements.
//!
//! Concurrency model matches [`SiteServer`](crate::SiteServer):
//! thread-per-connection, malformed frames kill their own connection and
//! nothing else. Application failures travel as `ErrorReply` frames —
//! the transport stays healthy; the answer is an error.
//!
//! [`Federation`]: amc_core::Federation

use crate::client::RetryPolicy;
use crate::server::bind_with_retry;
use crate::wire::{read_frame, write_frame, CoordReply, CoordRequest, Frame, FrameBuffer};
use amc_core::{Federation, TxnOutcome};
use amc_types::{AmcError, AmcResult, GlobalTxnId, Operation, SiteId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io::{self, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a blocked connection read wakes up to check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(100);

/// A coordinator's advertised identity: what [`CoordRequest::Describe`]
/// answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoordInfo {
    /// The coordinator's id-range slot.
    pub slot: u32,
    /// Total coordinator count in the topology.
    pub coordinators: u32,
    /// The shard-map epoch this coordinator serves. The TCP lane runs a
    /// fixed topology, so this is static for the server's lifetime.
    pub epoch: u64,
    /// The site fleet the coordinator drives, ascending.
    pub sites: Vec<SiteId>,
}

/// One finished [`CoordRequest::Exec`], as reported by the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// The global transaction id the attempt ran under.
    pub gtx: GlobalTxnId,
    /// What happened.
    pub outcome: TxnOutcome,
    /// End-to-end latency at the coordinator, microseconds.
    pub latency_us: u64,
    /// Messages the coordinator exchanged with its sites.
    pub messages: u64,
}

/// A running coordinator server. Dropping it (or calling
/// [`CoordServer::shutdown`]) stops the listener and joins every
/// connection thread.
pub struct CoordServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl CoordServer {
    /// Bind `listen` (e.g. `127.0.0.1:0`) and serve `federation` on it,
    /// advertising `info` to [`CoordRequest::Describe`]. The federation's
    /// configuration must match `info` (same slot/width via
    /// [`FederationConfig::sharded`]) — the server only reports, never
    /// checks.
    ///
    /// [`FederationConfig::sharded`]: amc_core::FederationConfig::sharded
    pub fn spawn(
        federation: Arc<Federation>,
        info: CoordInfo,
        listen: &str,
    ) -> io::Result<CoordServer> {
        let listener: TcpListener = bind_with_retry(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let federation = Arc::clone(&federation);
                    let info = info.clone();
                    let stop = Arc::clone(&stop);
                    let handle = std::thread::spawn(move || {
                        serve_coord_connection(stream, &federation, &info, &stop);
                    });
                    let mut threads = conn_threads.lock();
                    threads.retain(|h: &JoinHandle<()>| !h.is_finished());
                    threads.push(handle);
                }
            })
        };
        Ok(CoordServer {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The address the server actually listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close the listener, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for h in self.conn_threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for CoordServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Serve one coordinator request: run it and build the reply frame.
/// `None` for frames a coordinator must never receive (drop the
/// connection).
fn coord_reply_for_frame(frame: Frame, federation: &Federation, info: &CoordInfo) -> Option<Frame> {
    let Frame::CoordRequest { req_id, req } = frame else {
        return None;
    };
    Some(match req {
        CoordRequest::Ping => Frame::CoordReply {
            req_id,
            reply: CoordReply::Pong,
        },
        CoordRequest::Describe => Frame::CoordReply {
            req_id,
            reply: CoordReply::Coord {
                slot: info.slot,
                coordinators: info.coordinators,
                epoch: info.epoch,
                sites: info.sites.clone(),
            },
        },
        CoordRequest::Exec { per_site } => match federation.run_transaction(&per_site) {
            Ok(report) => Frame::CoordReply {
                req_id,
                reply: CoordReply::Done {
                    gtx: report.gtx,
                    outcome: report.outcome,
                    latency_us: report.latency.as_micros() as u64,
                    messages: report.messages,
                },
            },
            Err(error) => Frame::ErrorReply { req_id, error },
        },
    })
}

/// One connection's request loop; same structure as the site server's.
fn serve_coord_connection(
    mut stream: TcpStream,
    federation: &Federation,
    info: &CoordInfo,
    stop: &AtomicBool,
) {
    if stream.set_read_timeout(Some(STOP_POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf = FrameBuffer::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // peer closed
            Ok(n) => buf.extend(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        }
        loop {
            let frame = match buf.next_frame() {
                Ok(Some(frame)) => frame,
                // Partial frame: wait for more bytes.
                Ok(None) => break,
                // Garbage: frame boundaries are gone — drop the
                // connection (never the server).
                Err(_) => return,
            };
            let Some(reply) = coord_reply_for_frame(frame, federation, info) else {
                return;
            };
            if write_frame(&mut stream, &reply).is_err() {
                return;
            }
        }
    }
}

// ---------------------------------------------------------------- client --

/// A blocking client for one coordinator server.
///
/// [`CoordClient::ping`] and [`CoordClient::describe`] retry with the
/// policy's backoff (they are idempotent); [`CoordClient::exec`] makes
/// exactly **one** attempt — a transaction is not idempotent, and a
/// transport failure after the frame left leaves the outcome unknown, so
/// the client surfaces `SiteDown` and lets the caller decide (the load
/// generator counts it as an error, never as a silent retry that could
/// double-apply).
pub struct CoordClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    pool: Mutex<Vec<TcpStream>>,
    next_req: AtomicU64,
}

impl CoordClient {
    /// A client for the coordinator at `addr`.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Self {
        CoordClient {
            addr,
            policy,
            pool: Mutex::new(Vec::new()),
            next_req: AtomicU64::new(1),
        }
    }

    /// The address this client dials.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Liveness probe, retried per the policy.
    pub fn ping(&self) -> AmcResult<()> {
        match self.with_retries(CoordRequest::Ping, self.policy.max_attempts)? {
            CoordReply::Pong => Ok(()),
            other => Err(AmcError::Protocol(format!(
                "coordinator answered ping with {other:?}"
            ))),
        }
    }

    /// Ask the coordinator who it is, retried per the policy.
    pub fn describe(&self) -> AmcResult<CoordInfo> {
        match self.with_retries(CoordRequest::Describe, self.policy.max_attempts)? {
            CoordReply::Coord {
                slot,
                coordinators,
                epoch,
                sites,
            } => Ok(CoordInfo {
                slot,
                coordinators,
                epoch,
                sites,
            }),
            other => Err(AmcError::Protocol(format!(
                "coordinator answered describe with {other:?}"
            ))),
        }
    }

    /// Run one global transaction through the coordinator. Exactly one
    /// attempt (see the type docs).
    pub fn exec(&self, per_site: BTreeMap<SiteId, Vec<Operation>>) -> AmcResult<ExecReport> {
        match self.with_retries(CoordRequest::Exec { per_site }, 1)? {
            CoordReply::Done {
                gtx,
                outcome,
                latency_us,
                messages,
            } => Ok(ExecReport {
                gtx,
                outcome,
                latency_us,
                messages,
            }),
            other => Err(AmcError::Protocol(format!(
                "coordinator answered exec with {other:?}"
            ))),
        }
    }

    fn with_retries(&self, req: CoordRequest, max_attempts: u32) -> AmcResult<CoordReply> {
        for attempt in 1..=max_attempts {
            let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
            let frame = Frame::CoordRequest {
                req_id,
                req: req.clone(),
            };
            match self.roundtrip(&frame) {
                Ok(Frame::CoordReply { reply, .. }) => return Ok(reply),
                Ok(Frame::ErrorReply { error, .. }) => return Err(error),
                Ok(other) => {
                    return Err(AmcError::Protocol(format!(
                        "coordinator sent a non-coordinator frame {other:?}"
                    )))
                }
                Err(()) if attempt < max_attempts => {
                    std::thread::sleep(self.policy.backoff_after(attempt));
                }
                Err(()) => break,
            }
        }
        // The coordinator is unreachable; reuse the SiteDown shape with
        // the CENTRAL sentinel (a coordinator is the central system).
        Err(AmcError::SiteDown(SiteId::CENTRAL))
    }

    /// One attempt: check out (or dial) a connection, write the frame,
    /// read the matching reply. Any failure discards the connection.
    fn roundtrip(&self, frame: &Frame) -> Result<Frame, ()> {
        let mut conn = match self.pool.lock().pop() {
            Some(c) => c,
            None => self.dial()?,
        };
        conn.set_read_timeout(Some(self.policy.request_timeout))
            .map_err(|_| ())?;
        conn.set_write_timeout(Some(self.policy.request_timeout))
            .map_err(|_| ())?;
        write_frame(&mut conn, frame).map_err(|_| ())?;
        let reply = read_frame(&mut conn).map_err(|_| ())?;
        if reply.req_id() != frame.req_id() {
            return Err(());
        }
        self.pool.lock().push(conn);
        Ok(reply)
    }

    fn dial(&self) -> Result<TcpStream, ()> {
        let conn =
            TcpStream::connect_timeout(&self.addr, self.policy.connect_timeout).map_err(|_| ())?;
        let _ = conn.set_nodelay(true);
        Ok(conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_core::{FederationConfig, ProtocolKind};
    use amc_types::{ObjectId, Operation, Value};

    fn spawn_coord(slot: u32, coordinators: u32) -> (CoordServer, Arc<Federation>) {
        let cfg =
            FederationConfig::uniform(2, ProtocolKind::TwoPhaseCommit).sharded(slot, coordinators);
        let mut fed = Federation::new(cfg);
        fed.set_recording(false, false);
        let fed = Arc::new(fed);
        let info = CoordInfo {
            slot,
            coordinators,
            epoch: 1,
            sites: vec![SiteId::new(1), SiteId::new(2)],
        };
        let srv = CoordServer::spawn(Arc::clone(&fed), info, "127.0.0.1:0").unwrap();
        (srv, fed)
    }

    #[test]
    fn serves_describe_and_exec_over_tcp() {
        let (srv, fed) = spawn_coord(2, 4);
        let obj = ObjectId::new(77);
        fed.load_site(SiteId::new(1), &[(obj, Value::counter(10))])
            .unwrap();

        let client = CoordClient::new(srv.addr(), RetryPolicy::default());
        client.ping().unwrap();
        let info = client.describe().unwrap();
        assert_eq!(info.slot, 2);
        assert_eq!(info.coordinators, 4);
        assert_eq!(info.sites, vec![SiteId::new(1), SiteId::new(2)]);

        let report = client
            .exec(BTreeMap::from([(
                SiteId::new(1),
                vec![Operation::Increment { obj, delta: 5 }],
            )]))
            .unwrap();
        assert_eq!(report.outcome, TxnOutcome::Committed);
        // The gtx landed in slot 2's id range.
        assert_eq!(amc_core::coord_slot_of(report.gtx), 2);
        srv.shutdown();
    }

    #[test]
    fn failed_transactions_come_back_as_aborted_not_poisoned() {
        let (srv, _fed) = spawn_coord(0, 1);
        let client = CoordClient::new(srv.addr(), RetryPolicy::default());
        // Incrementing a missing object makes the site vote no: the
        // commit protocol aborts globally and the reply says so.
        let report = client
            .exec(BTreeMap::from([(
                SiteId::new(1),
                vec![Operation::Increment {
                    obj: ObjectId::new(999),
                    delta: 1,
                }],
            )]))
            .unwrap();
        assert_eq!(report.outcome, TxnOutcome::Aborted);
        // The connection survives the abort.
        client.ping().unwrap();
        srv.shutdown();
    }
}
