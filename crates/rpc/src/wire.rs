//! The framed wire codec, version 1.
//!
//! Every frame on the wire is
//!
//! ```text
//! [u32 LE length of the rest][u8 version = 1][u8 frame kind][u64 LE req id][body]
//! ```
//!
//! The length prefix counts everything after itself (version byte
//! included), so a reader can always take exactly one frame off the
//! stream. Frame kinds: `0` protocol request, `1` protocol reply (both
//! bodies are a [`Payload`]), `2` admin request, `3` admin reply, `4`
//! error reply (body is an [`AmcError`]), `5` coordinator request, `6`
//! coordinator reply (bodies are [`CoordRequest`] / [`CoordReply`] — the
//! router↔coordinator surface of the sharded topology). The request id
//! is echoed verbatim in the reply so a client can detect stale replies
//! on a reused connection.
//!
//! All integers are little-endian. Enums are `u8` tags. Vectors are a
//! `u32` count followed by the elements. [`Value`]s reuse the fixed
//! 12-byte layout of [`Value::to_bytes`]. The layout is pinned by a
//! golden-bytes test (`tests/wire_codec.rs`): changing any of it must
//! bump [`WIRE_VERSION`].

use amc_core::TxnOutcome;
use amc_net::transport::{AdminReply, AdminRequest};
use amc_net::Payload;
use amc_types::{
    AbortReason, AmcError, GlobalTxnId, GlobalVerdict, LocalVote, ObjectId, Operation, SiteId,
    Value,
};
use amc_wal::LogStats;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Read, Write};

/// The one and only wire version this codec speaks.
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on the post-prefix frame length: anything larger is a
/// corrupt or hostile frame and the connection is dropped.
pub const MAX_FRAME_LEN: u32 = 4 << 20;

/// What a shard router (or any driver) asks of a coordinator server —
/// the discovery/execution surface of the sharded topology (frame kind
/// `5`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordRequest {
    /// Liveness probe.
    Ping,
    /// Ask the coordinator who it is: slot, topology width, epoch, sites.
    Describe,
    /// Run one global transaction (per-site operation buckets) through
    /// this coordinator's commit machinery.
    Exec {
        /// Operations per participating site, ascending by site.
        per_site: BTreeMap<SiteId, Vec<Operation>>,
    },
}

/// A coordinator server's answers (frame kind `6`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordReply {
    /// The coordinator is alive.
    Pong,
    /// Discovery: this coordinator's identity and reachable fleet.
    Coord {
        /// The coordinator's id-range slot.
        slot: u32,
        /// Total coordinator count in the topology.
        coordinators: u32,
        /// The shard-map epoch this coordinator is serving.
        epoch: u64,
        /// The site fleet it drives, ascending.
        sites: Vec<SiteId>,
    },
    /// An [`CoordRequest::Exec`] finished.
    Done {
        /// The global transaction id the attempt ran under (its id range
        /// names the coordinator slot).
        gtx: GlobalTxnId,
        /// What happened.
        outcome: TxnOutcome,
        /// End-to-end latency at the coordinator, microseconds.
        latency_us: u64,
        /// Messages the coordinator exchanged with sites.
        messages: u64,
    },
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Coordinator → site protocol message.
    Request {
        /// Echoed in the reply.
        req_id: u64,
        /// The protocol message.
        payload: Payload,
    },
    /// Site → coordinator protocol reply.
    Reply {
        /// The request this answers.
        req_id: u64,
        /// The reply message.
        payload: Payload,
    },
    /// Driver → site admin message.
    AdminRequest {
        /// Echoed in the reply.
        req_id: u64,
        /// The admin request.
        req: AdminRequest,
    },
    /// Site → driver admin reply.
    AdminReply {
        /// The request this answers.
        req_id: u64,
        /// The admin reply.
        reply: AdminReply,
    },
    /// Site → caller: the request failed.
    ErrorReply {
        /// The request this answers.
        req_id: u64,
        /// What went wrong.
        error: AmcError,
    },
    /// Router → coordinator request.
    CoordRequest {
        /// Echoed in the reply.
        req_id: u64,
        /// The coordinator request.
        req: CoordRequest,
    },
    /// Coordinator → router reply.
    CoordReply {
        /// The request this answers.
        req_id: u64,
        /// The coordinator reply.
        reply: CoordReply,
    },
}

impl Frame {
    /// The request id carried by any frame kind.
    pub fn req_id(&self) -> u64 {
        match self {
            Frame::Request { req_id, .. }
            | Frame::Reply { req_id, .. }
            | Frame::AdminRequest { req_id, .. }
            | Frame::AdminReply { req_id, .. }
            | Frame::ErrorReply { req_id, .. }
            | Frame::CoordRequest { req_id, .. }
            | Frame::CoordReply { req_id, .. } => *req_id,
        }
    }
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before its declared content did.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_LEN`].
    Oversized(u32),
    /// Unknown wire version.
    BadVersion(u8),
    /// An enum tag outside its domain (`what` names the enum).
    BadTag(&'static str, u8),
    /// Bytes left over after the body was fully decoded.
    TrailingBytes(usize),
    /// A string field was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized(n) => write!(f, "frame length {n} exceeds {MAX_FRAME_LEN}"),
            WireError::BadVersion(v) => write!(f, "wire version {v} (expected {WIRE_VERSION})"),
            WireError::BadTag(what, t) => write!(f, "bad {what} tag {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame body"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
        }
    }
}

/// Why [`read_frame`] failed: the transport broke, or the peer sent bytes
/// that do not decode.
#[derive(Debug)]
pub enum FrameReadError {
    /// Socket-level failure (closed, reset, timed out).
    Io(io::Error),
    /// The bytes arrived but are not a valid frame.
    Wire(WireError),
}

impl fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameReadError::Io(e) => write!(f, "io: {e}"),
            FrameReadError::Wire(e) => write!(f, "wire: {e}"),
        }
    }
}

impl FrameReadError {
    /// True when the failure was a read deadline expiring.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameReadError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

// ---------------------------------------------------------------- writer --

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn value(&mut self, v: Value) {
        self.buf.extend_from_slice(&v.to_bytes());
    }
}

fn write_op(w: &mut Writer, op: &Operation) {
    match op {
        Operation::Read { obj } => {
            w.u8(0);
            w.u64(obj.raw());
        }
        Operation::Write { obj, value } => {
            w.u8(1);
            w.u64(obj.raw());
            w.value(*value);
        }
        Operation::Increment { obj, delta } => {
            w.u8(2);
            w.u64(obj.raw());
            w.i64(*delta);
        }
        Operation::Insert { obj, value } => {
            w.u8(3);
            w.u64(obj.raw());
            w.value(*value);
        }
        Operation::Delete { obj } => {
            w.u8(4);
            w.u64(obj.raw());
        }
        Operation::Reserve { obj, amount } => {
            w.u8(5);
            w.u64(obj.raw());
            w.u64(*amount);
        }
    }
}

fn write_ops(w: &mut Writer, ops: &[Operation]) {
    w.u32(ops.len() as u32);
    for op in ops {
        write_op(w, op);
    }
}

fn write_payload(w: &mut Writer, p: &Payload) {
    match p {
        Payload::Submit { gtx, ops } => {
            w.u8(0);
            w.u64(gtx.raw());
            write_ops(w, ops);
        }
        Payload::Prepare { gtx } => {
            w.u8(1);
            w.u64(gtx.raw());
        }
        Payload::Vote { gtx, vote } => {
            w.u8(2);
            w.u64(gtx.raw());
            w.u8(match vote {
                LocalVote::Ready => 0,
                LocalVote::ReadyReadOnly => 1,
                LocalVote::Aborted => 2,
            });
        }
        Payload::Decision { gtx, verdict } => {
            w.u8(3);
            w.u64(gtx.raw());
            w.u8(verdict_tag(*verdict));
        }
        Payload::Redo { gtx, ops } => {
            w.u8(4);
            w.u64(gtx.raw());
            write_ops(w, ops);
        }
        Payload::Undo { gtx, inverse_ops } => {
            w.u8(5);
            w.u64(gtx.raw());
            write_ops(w, inverse_ops);
        }
        Payload::Finished { gtx } => {
            w.u8(6);
            w.u64(gtx.raw());
        }
        Payload::PaxosRegister { gtx, participants } => {
            w.u8(7);
            w.u64(gtx.raw());
            write_sites(w, participants);
        }
        Payload::PaxosAck { gtx } => {
            w.u8(8);
            w.u64(gtx.raw());
        }
        Payload::PaxosP1a { gtx, ballot } => {
            w.u8(9);
            w.u64(gtx.raw());
            w.u64(*ballot);
        }
        Payload::PaxosP1b {
            gtx,
            ballot,
            promised,
            promised_up_to,
            participants,
            accepted,
        } => {
            w.u8(10);
            w.u64(gtx.raw());
            w.u64(*ballot);
            w.u8(u8::from(*promised));
            w.u64(*promised_up_to);
            write_sites(w, participants);
            w.u32(accepted.len() as u32);
            for (site, b, prepared) in accepted {
                w.u32(site.raw());
                w.u64(*b);
                w.u8(u8::from(*prepared));
            }
        }
        Payload::PaxosP2a {
            gtx,
            site,
            ballot,
            prepared,
        } => {
            w.u8(11);
            w.u64(gtx.raw());
            w.u32(site.raw());
            w.u64(*ballot);
            w.u8(u8::from(*prepared));
        }
        Payload::PaxosP2b {
            gtx,
            site,
            ballot,
            accepted,
        } => {
            w.u8(12);
            w.u64(gtx.raw());
            w.u32(site.raw());
            w.u64(*ballot);
            w.u8(u8::from(*accepted));
        }
        Payload::PaxosDecided { gtx, verdict } => {
            w.u8(13);
            w.u64(gtx.raw());
            w.u8(verdict_tag(*verdict));
        }
        Payload::SubmitPrepare { gtx, ops, solo } => {
            w.u8(14);
            w.u64(gtx.raw());
            w.u8(u8::from(*solo));
            write_ops(w, ops);
        }
    }
}

fn write_sites(w: &mut Writer, sites: &[SiteId]) {
    w.u32(sites.len() as u32);
    for s in sites {
        w.u32(s.raw());
    }
}

fn verdict_tag(v: GlobalVerdict) -> u8 {
    match v {
        GlobalVerdict::Commit => 0,
        GlobalVerdict::Abort => 1,
    }
}

fn abort_reason_tag(r: AbortReason) -> u8 {
    match r {
        AbortReason::Intended => 0,
        AbortReason::Deadlock => 1,
        AbortReason::LockTimeout => 2,
        AbortReason::ValidationFailed => 3,
        AbortReason::SiteCrash => 4,
        AbortReason::GlobalDecision => 5,
        AbortReason::Injected => 6,
    }
}

fn write_admin_request(w: &mut Writer, req: &AdminRequest) {
    match req {
        AdminRequest::Ping => w.u8(0),
        AdminRequest::Load(data) => {
            w.u8(1);
            w.u32(data.len() as u32);
            for (obj, value) in data {
                w.u64(obj.raw());
                w.value(*value);
            }
        }
        AdminRequest::Dump => w.u8(2),
        AdminRequest::CommStats => w.u8(3),
        AdminRequest::LogStats => w.u8(4),
        AdminRequest::Recovery => w.u8(5),
        AdminRequest::PaxosOpen => w.u8(6),
    }
}

fn write_admin_reply(w: &mut Writer, reply: &AdminReply) {
    match reply {
        AdminReply::Pong => w.u8(0),
        AdminReply::Loaded => w.u8(1),
        AdminReply::Dump(d) => {
            w.u8(2);
            w.u32(d.len() as u32);
            for (obj, value) in d {
                w.u64(obj.raw());
                w.value(*value);
            }
        }
        AdminReply::CommStats(s) => {
            w.u8(3);
            for v in [
                s.submits,
                s.votes_ready,
                s.votes_aborted,
                s.redo_runs,
                s.undo_runs,
                s.pre_vote_retries,
                s.marker_checks,
            ] {
                w.u64(v);
            }
        }
        AdminReply::LogStats(s) => {
            w.u8(4);
            for v in [
                s.appends,
                s.forces,
                s.stable_records,
                s.stable_bytes,
                s.group_forces,
                s.batched_commits,
            ] {
                w.u64(v);
            }
        }
        AdminReply::Recovery(stats) => {
            w.u8(5);
            match stats {
                None => w.u8(0),
                Some(s) => {
                    w.u8(1);
                    for v in [
                        s.committed,
                        s.rolled_back,
                        s.in_doubt,
                        s.replayed,
                        s.restored_entries,
                    ] {
                        w.u64(v);
                    }
                    w.u8(u8::from(s.torn_tail));
                }
            }
        }
        AdminReply::PaxosOpen(entries) => {
            w.u8(6);
            w.u32(entries.len() as u32);
            for e in entries {
                w.u64(e.gtx.raw());
                write_sites(w, &e.participants);
            }
        }
    }
}

fn write_coord_request(w: &mut Writer, req: &CoordRequest) {
    match req {
        CoordRequest::Ping => w.u8(0),
        CoordRequest::Describe => w.u8(1),
        CoordRequest::Exec { per_site } => {
            w.u8(2);
            w.u32(per_site.len() as u32);
            for (site, ops) in per_site {
                w.u32(site.raw());
                write_ops(w, ops);
            }
        }
    }
}

fn write_coord_reply(w: &mut Writer, reply: &CoordReply) {
    match reply {
        CoordReply::Pong => w.u8(0),
        CoordReply::Coord {
            slot,
            coordinators,
            epoch,
            sites,
        } => {
            w.u8(1);
            w.u32(*slot);
            w.u32(*coordinators);
            w.u64(*epoch);
            write_sites(w, sites);
        }
        CoordReply::Done {
            gtx,
            outcome,
            latency_us,
            messages,
        } => {
            w.u8(2);
            w.u64(gtx.raw());
            match outcome {
                TxnOutcome::Committed => w.u8(0),
                TxnOutcome::Aborted => w.u8(1),
                TxnOutcome::L1Rejected(reason) => {
                    w.u8(2);
                    w.u8(abort_reason_tag(*reason));
                }
            }
            w.u64(*latency_us);
            w.u64(*messages);
        }
    }
}

fn write_error(w: &mut Writer, e: &AmcError) {
    match e {
        AmcError::Aborted(r) => {
            w.u8(0);
            w.u8(abort_reason_tag(*r));
        }
        AmcError::NotFound(obj) => {
            w.u8(1);
            w.u64(obj.raw());
        }
        AmcError::AlreadyExists(obj) => {
            w.u8(2);
            w.u64(obj.raw());
        }
        AmcError::InsufficientStock { obj, have, want } => {
            w.u8(3);
            w.u64(obj.raw());
            w.i64(*have);
            w.u64(*want);
        }
        AmcError::UnknownTxn => w.u8(4),
        AmcError::SiteDown(site) => {
            w.u8(5);
            w.u32(site.raw());
        }
        AmcError::Corruption(m) => {
            w.u8(6);
            w.str(m);
        }
        AmcError::TransientIo(m) => {
            w.u8(7);
            w.str(m);
        }
        AmcError::BufferExhausted => w.u8(8),
        AmcError::Protocol(m) => {
            w.u8(9);
            w.str(m);
        }
        AmcError::InvalidState(m) => {
            w.u8(10);
            w.str(m);
        }
    }
}

/// Encode `frame` into its complete on-wire bytes (length prefix
/// included).
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut w = Writer::new();
    w.u8(WIRE_VERSION);
    match frame {
        Frame::Request { req_id, payload } => {
            w.u8(0);
            w.u64(*req_id);
            write_payload(&mut w, payload);
        }
        Frame::Reply { req_id, payload } => {
            w.u8(1);
            w.u64(*req_id);
            write_payload(&mut w, payload);
        }
        Frame::AdminRequest { req_id, req } => {
            w.u8(2);
            w.u64(*req_id);
            write_admin_request(&mut w, req);
        }
        Frame::AdminReply { req_id, reply } => {
            w.u8(3);
            w.u64(*req_id);
            write_admin_reply(&mut w, reply);
        }
        Frame::ErrorReply { req_id, error } => {
            w.u8(4);
            w.u64(*req_id);
            write_error(&mut w, error);
        }
        Frame::CoordRequest { req_id, req } => {
            w.u8(5);
            w.u64(*req_id);
            write_coord_request(&mut w, req);
        }
        Frame::CoordReply { req_id, reply } => {
            w.u8(6);
            w.u64(*req_id);
            write_coord_reply(&mut w, reply);
        }
    }
    let mut out = Vec::with_capacity(4 + w.buf.len());
    out.extend_from_slice(&(w.buf.len() as u32).to_le_bytes());
    out.extend_from_slice(&w.buf);
    out
}

// ---------------------------------------------------------------- reader --

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }
    fn value(&mut self) -> Result<Value, WireError> {
        let bytes: &[u8; 12] = self.take(12)?.try_into().unwrap();
        Ok(Value::from_bytes(bytes))
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

fn read_op(r: &mut Reader<'_>) -> Result<Operation, WireError> {
    let tag = r.u8()?;
    let obj = ObjectId::new(r.u64()?);
    Ok(match tag {
        0 => Operation::Read { obj },
        1 => Operation::Write {
            obj,
            value: r.value()?,
        },
        2 => Operation::Increment {
            obj,
            delta: r.i64()?,
        },
        3 => Operation::Insert {
            obj,
            value: r.value()?,
        },
        4 => Operation::Delete { obj },
        5 => Operation::Reserve {
            obj,
            amount: r.u64()?,
        },
        t => return Err(WireError::BadTag("operation", t)),
    })
}

fn read_ops(r: &mut Reader<'_>) -> Result<Vec<Operation>, WireError> {
    let n = r.u32()? as usize;
    // Each op is at least 9 bytes; a hostile count cannot force a huge
    // allocation past what the frame itself carries.
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        ops.push(read_op(r)?);
    }
    Ok(ops)
}

fn read_payload(r: &mut Reader<'_>) -> Result<Payload, WireError> {
    let tag = r.u8()?;
    let gtx = GlobalTxnId::new(r.u64()?);
    Ok(match tag {
        0 => Payload::Submit {
            gtx,
            ops: read_ops(r)?,
        },
        1 => Payload::Prepare { gtx },
        2 => Payload::Vote {
            gtx,
            vote: match r.u8()? {
                0 => LocalVote::Ready,
                1 => LocalVote::ReadyReadOnly,
                2 => LocalVote::Aborted,
                t => return Err(WireError::BadTag("vote", t)),
            },
        },
        3 => Payload::Decision {
            gtx,
            verdict: read_verdict(r)?,
        },
        4 => Payload::Redo {
            gtx,
            ops: read_ops(r)?,
        },
        5 => Payload::Undo {
            gtx,
            inverse_ops: read_ops(r)?,
        },
        6 => Payload::Finished { gtx },
        7 => Payload::PaxosRegister {
            gtx,
            participants: read_sites(r)?,
        },
        8 => Payload::PaxosAck { gtx },
        9 => Payload::PaxosP1a {
            gtx,
            ballot: r.u64()?,
        },
        10 => Payload::PaxosP1b {
            gtx,
            ballot: r.u64()?,
            promised: r.u8()? != 0,
            promised_up_to: r.u64()?,
            participants: read_sites(r)?,
            accepted: {
                let n = r.u32()? as usize;
                // Each entry is 13 bytes; a hostile count cannot force an
                // allocation past what the frame carries.
                if n > r.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    out.push((SiteId::new(r.u32()?), r.u64()?, r.u8()? != 0));
                }
                out
            },
        },
        11 => Payload::PaxosP2a {
            gtx,
            site: SiteId::new(r.u32()?),
            ballot: r.u64()?,
            prepared: r.u8()? != 0,
        },
        12 => Payload::PaxosP2b {
            gtx,
            site: SiteId::new(r.u32()?),
            ballot: r.u64()?,
            accepted: r.u8()? != 0,
        },
        13 => Payload::PaxosDecided {
            gtx,
            verdict: read_verdict(r)?,
        },
        14 => Payload::SubmitPrepare {
            gtx,
            solo: r.u8()? != 0,
            ops: read_ops(r)?,
        },
        t => return Err(WireError::BadTag("payload", t)),
    })
}

fn read_sites(r: &mut Reader<'_>) -> Result<Vec<SiteId>, WireError> {
    let n = r.u32()? as usize;
    // Each site id is 4 bytes; bound the allocation by the frame size.
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(SiteId::new(r.u32()?));
    }
    Ok(out)
}

fn read_verdict(r: &mut Reader<'_>) -> Result<GlobalVerdict, WireError> {
    match r.u8()? {
        0 => Ok(GlobalVerdict::Commit),
        1 => Ok(GlobalVerdict::Abort),
        t => Err(WireError::BadTag("verdict", t)),
    }
}

fn read_abort_reason(r: &mut Reader<'_>) -> Result<AbortReason, WireError> {
    Ok(match r.u8()? {
        0 => AbortReason::Intended,
        1 => AbortReason::Deadlock,
        2 => AbortReason::LockTimeout,
        3 => AbortReason::ValidationFailed,
        4 => AbortReason::SiteCrash,
        5 => AbortReason::GlobalDecision,
        6 => AbortReason::Injected,
        t => return Err(WireError::BadTag("abort-reason", t)),
    })
}

fn read_pairs(r: &mut Reader<'_>) -> Result<Vec<(ObjectId, Value)>, WireError> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let obj = ObjectId::new(r.u64()?);
        out.push((obj, r.value()?));
    }
    Ok(out)
}

fn read_admin_request(r: &mut Reader<'_>) -> Result<AdminRequest, WireError> {
    Ok(match r.u8()? {
        0 => AdminRequest::Ping,
        1 => AdminRequest::Load(read_pairs(r)?),
        2 => AdminRequest::Dump,
        3 => AdminRequest::CommStats,
        4 => AdminRequest::LogStats,
        5 => AdminRequest::Recovery,
        6 => AdminRequest::PaxosOpen,
        t => return Err(WireError::BadTag("admin-request", t)),
    })
}

fn read_admin_reply(r: &mut Reader<'_>) -> Result<AdminReply, WireError> {
    Ok(match r.u8()? {
        0 => AdminReply::Pong,
        1 => AdminReply::Loaded,
        2 => AdminReply::Dump(read_pairs(r)?.into_iter().collect::<BTreeMap<_, _>>()),
        3 => AdminReply::CommStats(amc_net::CommStats {
            submits: r.u64()?,
            votes_ready: r.u64()?,
            votes_aborted: r.u64()?,
            redo_runs: r.u64()?,
            undo_runs: r.u64()?,
            pre_vote_retries: r.u64()?,
            marker_checks: r.u64()?,
        }),
        4 => AdminReply::LogStats(LogStats {
            appends: r.u64()?,
            forces: r.u64()?,
            stable_records: r.u64()?,
            stable_bytes: r.u64()?,
            group_forces: r.u64()?,
            batched_commits: r.u64()?,
        }),
        5 => AdminReply::Recovery(match r.u8()? {
            0 => None,
            1 => Some(amc_net::RecoveryStats {
                committed: r.u64()?,
                rolled_back: r.u64()?,
                in_doubt: r.u64()?,
                replayed: r.u64()?,
                restored_entries: r.u64()?,
                torn_tail: r.u8()? != 0,
            }),
            t => return Err(WireError::BadTag("recovery-present", t)),
        }),
        6 => AdminReply::PaxosOpen({
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return Err(WireError::Truncated);
            }
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(amc_net::PaxosOpenEntry {
                    gtx: GlobalTxnId::new(r.u64()?),
                    participants: read_sites(r)?,
                });
            }
            out
        }),
        t => return Err(WireError::BadTag("admin-reply", t)),
    })
}

fn read_coord_request(r: &mut Reader<'_>) -> Result<CoordRequest, WireError> {
    Ok(match r.u8()? {
        0 => CoordRequest::Ping,
        1 => CoordRequest::Describe,
        2 => CoordRequest::Exec {
            per_site: {
                let n = r.u32()? as usize;
                // Each site bucket is at least 8 bytes; bound the loop by
                // what the frame actually carries.
                if n > r.remaining() {
                    return Err(WireError::Truncated);
                }
                let mut per_site = BTreeMap::new();
                for _ in 0..n {
                    let site = SiteId::new(r.u32()?);
                    per_site.insert(site, read_ops(r)?);
                }
                per_site
            },
        },
        t => return Err(WireError::BadTag("coord-request", t)),
    })
}

fn read_coord_reply(r: &mut Reader<'_>) -> Result<CoordReply, WireError> {
    Ok(match r.u8()? {
        0 => CoordReply::Pong,
        1 => CoordReply::Coord {
            slot: r.u32()?,
            coordinators: r.u32()?,
            epoch: r.u64()?,
            sites: read_sites(r)?,
        },
        2 => CoordReply::Done {
            gtx: GlobalTxnId::new(r.u64()?),
            outcome: match r.u8()? {
                0 => TxnOutcome::Committed,
                1 => TxnOutcome::Aborted,
                2 => TxnOutcome::L1Rejected(read_abort_reason(r)?),
                t => return Err(WireError::BadTag("txn-outcome", t)),
            },
            latency_us: r.u64()?,
            messages: r.u64()?,
        },
        t => return Err(WireError::BadTag("coord-reply", t)),
    })
}

fn read_error(r: &mut Reader<'_>) -> Result<AmcError, WireError> {
    Ok(match r.u8()? {
        0 => AmcError::Aborted(read_abort_reason(r)?),
        1 => AmcError::NotFound(ObjectId::new(r.u64()?)),
        2 => AmcError::AlreadyExists(ObjectId::new(r.u64()?)),
        3 => AmcError::InsufficientStock {
            obj: ObjectId::new(r.u64()?),
            have: r.i64()?,
            want: r.u64()?,
        },
        4 => AmcError::UnknownTxn,
        5 => AmcError::SiteDown(SiteId::new(r.u32()?)),
        6 => AmcError::Corruption(r.str()?),
        7 => AmcError::TransientIo(r.str()?),
        8 => AmcError::BufferExhausted,
        9 => AmcError::Protocol(r.str()?),
        10 => AmcError::InvalidState(r.str()?),
        t => return Err(WireError::BadTag("error", t)),
    })
}

/// Decode the post-prefix bytes of one frame (version byte onward).
pub fn decode_frame_body(body: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(body);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = r.u8()?;
    let req_id = r.u64()?;
    let frame = match kind {
        0 => Frame::Request {
            req_id,
            payload: read_payload(&mut r)?,
        },
        1 => Frame::Reply {
            req_id,
            payload: read_payload(&mut r)?,
        },
        2 => Frame::AdminRequest {
            req_id,
            req: read_admin_request(&mut r)?,
        },
        3 => Frame::AdminReply {
            req_id,
            reply: read_admin_reply(&mut r)?,
        },
        4 => Frame::ErrorReply {
            req_id,
            error: read_error(&mut r)?,
        },
        5 => Frame::CoordRequest {
            req_id,
            req: read_coord_request(&mut r)?,
        },
        6 => Frame::CoordReply {
            req_id,
            reply: read_coord_reply(&mut r)?,
        },
        t => return Err(WireError::BadTag("frame-kind", t)),
    };
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    Ok(frame)
}

/// Decode one complete frame (length prefix included), as produced by
/// [`encode_frame`].
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    let mut r = Reader::new(bytes);
    let len = r.u32()?;
    if len > MAX_FRAME_LEN {
        return Err(WireError::Oversized(len));
    }
    let body = r.take(len as usize)?;
    if r.remaining() > 0 {
        return Err(WireError::TrailingBytes(r.remaining()));
    }
    decode_frame_body(body)
}

// ---------------------------------------------------------------- stream --

/// Write one frame to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&encode_frame(frame))?;
    w.flush()
}

/// Read exactly one frame off a stream. A declared length beyond
/// [`MAX_FRAME_LEN`] is rejected *before* any allocation, so a hostile
/// prefix cannot balloon memory.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameReadError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix).map_err(FrameReadError::Io)?;
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(FrameReadError::Wire(WireError::Oversized(len)));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body).map_err(FrameReadError::Io)?;
    decode_frame_body(&body).map_err(FrameReadError::Wire)
}

// ------------------------------------------------------- frame buffer --

/// Incremental frame decoder: a per-connection byte accumulator that
/// yields complete frames as they become available.
///
/// This is the decode primitive of the event-loop runtime, and the fix
/// for the blocking runtime's partial-read desync: bytes are *never*
/// discarded between reads. A partial frame simply stays buffered until
/// more bytes arrive — no matter how many read timeouts tick in between
/// — so a slow writer dribbling one byte at a time still parses.
///
/// ```
/// use amc_rpc::wire::{encode_frame, Frame, FrameBuffer};
/// use amc_net::Payload;
/// use amc_types::GlobalTxnId;
///
/// let frame = Frame::Request {
///     req_id: 9,
///     payload: Payload::Prepare { gtx: GlobalTxnId::new(1) },
/// };
/// let bytes = encode_frame(&frame);
/// let mut buf = FrameBuffer::new();
/// // Feed everything but the last byte: no frame yet.
/// buf.extend(&bytes[..bytes.len() - 1]);
/// assert_eq!(buf.next_frame().unwrap(), None);
/// // The final byte completes it.
/// buf.extend(&bytes[bytes.len() - 1..]);
/// assert_eq!(buf.next_frame().unwrap(), Some(frame));
/// ```
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    /// Consumed prefix; compacted opportunistically so the buffer does
    /// not grow with connection lifetime.
    start: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        FrameBuffer::default()
    }

    /// Append bytes read off the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: once everything buffered has been
        // consumed the allocation can be reused from offset 0, and a
        // large consumed prefix is dropped rather than copied around.
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "not enough bytes yet" — keep the connection and
    /// feed more. `Err` means the stream is poisoned (oversized length
    /// prefix, malformed body): the connection must be dropped, since
    /// frame boundaries can no longer be trusted.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap());
        if len > MAX_FRAME_LEN {
            return Err(WireError::Oversized(len));
        }
        let total = 4 + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let frame = decode_frame_body(&avail[4..total])?;
        self.start += total;
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_submit() {
        let frame = Frame::Request {
            req_id: 42,
            payload: Payload::Submit {
                gtx: GlobalTxnId::new(7),
                ops: vec![
                    Operation::Increment {
                        obj: ObjectId::new(3),
                        delta: -5,
                    },
                    Operation::Write {
                        obj: ObjectId::new(9),
                        value: Value::counter(11),
                    },
                ],
            },
        };
        let bytes = encode_frame(&frame);
        assert_eq!(decode_frame(&bytes).unwrap(), frame);
    }

    #[test]
    fn round_trips_admin_and_errors() {
        let frames = [
            Frame::AdminRequest {
                req_id: 1,
                req: AdminRequest::Load(vec![(ObjectId::new(1), Value::counter(5))]),
            },
            Frame::AdminReply {
                req_id: 1,
                reply: AdminReply::Dump(BTreeMap::from([(ObjectId::new(1), Value::counter(5))])),
            },
            Frame::ErrorReply {
                req_id: 2,
                error: AmcError::SiteDown(SiteId::new(3)),
            },
            Frame::ErrorReply {
                req_id: 3,
                error: AmcError::Protocol("boom".into()),
            },
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            assert_eq!(decode_frame(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn round_trips_paxos_payloads() {
        let payloads = [
            Payload::PaxosRegister {
                gtx: GlobalTxnId::new(7),
                participants: vec![SiteId::new(1), SiteId::new(2), SiteId::new(3)],
            },
            Payload::PaxosAck {
                gtx: GlobalTxnId::new(7),
            },
            Payload::PaxosP1a {
                gtx: GlobalTxnId::new(7),
                ballot: (1u64 << 32) | 2,
            },
            Payload::PaxosP1b {
                gtx: GlobalTxnId::new(7),
                ballot: (1u64 << 32) | 2,
                promised: true,
                promised_up_to: (1u64 << 32) | 2,
                participants: vec![SiteId::new(1), SiteId::new(2)],
                accepted: vec![(SiteId::new(1), 0, true), (SiteId::new(2), 5, false)],
            },
            Payload::PaxosP2a {
                gtx: GlobalTxnId::new(7),
                site: SiteId::new(2),
                ballot: (1u64 << 32) | 2,
                prepared: false,
            },
            Payload::PaxosP2b {
                gtx: GlobalTxnId::new(7),
                site: SiteId::new(2),
                ballot: (1u64 << 32) | 2,
                accepted: true,
            },
            Payload::PaxosDecided {
                gtx: GlobalTxnId::new(7),
                verdict: GlobalVerdict::Commit,
            },
        ];
        for (i, payload) in payloads.into_iter().enumerate() {
            let frame = Frame::Request {
                req_id: i as u64,
                payload,
            };
            let bytes = encode_frame(&frame);
            assert_eq!(decode_frame(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn round_trips_paxos_open_admin() {
        let frames = [
            Frame::AdminRequest {
                req_id: 5,
                req: AdminRequest::PaxosOpen,
            },
            Frame::AdminReply {
                req_id: 5,
                reply: AdminReply::PaxosOpen(vec![
                    amc_net::PaxosOpenEntry {
                        gtx: GlobalTxnId::new(11),
                        participants: vec![SiteId::new(1), SiteId::new(2)],
                    },
                    amc_net::PaxosOpenEntry {
                        gtx: GlobalTxnId::new(12),
                        participants: vec![],
                    },
                ]),
            },
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            assert_eq!(decode_frame(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn hostile_paxos_counts_do_not_allocate() {
        // A P1b declaring u32::MAX participants in a tiny frame.
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        w.u8(1); // reply
        w.u64(1); // req id
        w.u8(10); // p1b
        w.u64(1); // gtx
        w.u64(0); // ballot
        w.u8(1); // promised
        w.u64(0); // promised_up_to
        w.u32(u32::MAX); // participant count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(w.buf.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&w.buf);
        assert_eq!(decode_frame(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn truncation_is_detected_not_panicked() {
        let bytes = encode_frame(&Frame::Request {
            req_id: 9,
            payload: Payload::Prepare {
                gtx: GlobalTxnId::new(1),
            },
        });
        for cut in 0..bytes.len() {
            let res = decode_frame(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut bytes = (MAX_FRAME_LEN + 1).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::Oversized(MAX_FRAME_LEN + 1))
        );
    }

    #[test]
    fn bad_version_and_bad_tags_are_rejected() {
        let good = encode_frame(&Frame::Reply {
            req_id: 1,
            payload: Payload::Finished {
                gtx: GlobalTxnId::new(1),
            },
        });
        let mut bad_version = good.clone();
        bad_version[4] = 99;
        assert_eq!(decode_frame(&bad_version), Err(WireError::BadVersion(99)));
        let mut bad_kind = good.clone();
        bad_kind[5] = 77;
        assert_eq!(
            decode_frame(&bad_kind),
            Err(WireError::BadTag("frame-kind", 77))
        );
        let mut bad_payload = good;
        bad_payload[14] = 55;
        assert_eq!(
            decode_frame(&bad_payload),
            Err(WireError::BadTag("payload", 55))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_frame(&Frame::Request {
            req_id: 1,
            payload: Payload::Prepare {
                gtx: GlobalTxnId::new(1),
            },
        });
        // Grow the body and fix up the prefix.
        bytes.push(0xAB);
        let len = (bytes.len() - 4) as u32;
        bytes[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(decode_frame(&bytes), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn frame_buffer_decodes_byte_by_byte() {
        let frame = Frame::Request {
            req_id: 3,
            payload: Payload::Submit {
                gtx: GlobalTxnId::new(5),
                ops: vec![Operation::Increment {
                    obj: ObjectId::new(1),
                    delta: 2,
                }],
            },
        };
        let bytes = encode_frame(&frame);
        let mut buf = FrameBuffer::new();
        for (i, b) in bytes.iter().enumerate() {
            if i + 1 < bytes.len() {
                buf.extend(std::slice::from_ref(b));
                assert_eq!(buf.next_frame().unwrap(), None, "byte {i}");
            }
        }
        buf.extend(std::slice::from_ref(bytes.last().unwrap()));
        assert_eq!(buf.next_frame().unwrap(), Some(frame));
        assert_eq!(buf.pending(), 0);
    }

    #[test]
    fn frame_buffer_yields_pipelined_frames_in_order() {
        let frames: Vec<Frame> = (0..5)
            .map(|i| Frame::Request {
                req_id: i,
                payload: Payload::Prepare {
                    gtx: GlobalTxnId::new(i + 1),
                },
            })
            .collect();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        // Feed everything at once plus half of a trailing frame.
        let tail = encode_frame(&frames[0]);
        wire.extend_from_slice(&tail[..tail.len() / 2]);
        let mut buf = FrameBuffer::new();
        buf.extend(&wire);
        for f in &frames {
            assert_eq!(buf.next_frame().unwrap().as_ref(), Some(f));
        }
        assert_eq!(buf.next_frame().unwrap(), None, "partial tail stays");
        assert_eq!(buf.pending(), tail.len() / 2);
    }

    #[test]
    fn frame_buffer_rejects_oversized_and_garbage() {
        let mut buf = FrameBuffer::new();
        buf.extend(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert_eq!(
            buf.next_frame(),
            Err(WireError::Oversized(MAX_FRAME_LEN + 1))
        );

        let mut buf = FrameBuffer::new();
        let mut bytes = encode_frame(&Frame::Request {
            req_id: 1,
            payload: Payload::Prepare {
                gtx: GlobalTxnId::new(1),
            },
        });
        bytes[4] = 99; // bad version
        buf.extend(&bytes);
        assert_eq!(buf.next_frame(), Err(WireError::BadVersion(99)));
    }

    #[test]
    fn round_trips_coordinator_frames() {
        let frames = [
            Frame::CoordRequest {
                req_id: 1,
                req: CoordRequest::Ping,
            },
            Frame::CoordRequest {
                req_id: 2,
                req: CoordRequest::Describe,
            },
            Frame::CoordRequest {
                req_id: 3,
                req: CoordRequest::Exec {
                    per_site: BTreeMap::from([
                        (
                            SiteId::new(1),
                            vec![Operation::Increment {
                                obj: ObjectId::new(5),
                                delta: -2,
                            }],
                        ),
                        (
                            SiteId::new(2),
                            vec![Operation::Insert {
                                obj: ObjectId::new(9),
                                value: Value::counter(7),
                            }],
                        ),
                    ]),
                },
            },
            Frame::CoordReply {
                req_id: 1,
                reply: CoordReply::Pong,
            },
            Frame::CoordReply {
                req_id: 2,
                reply: CoordReply::Coord {
                    slot: 2,
                    coordinators: 4,
                    epoch: 3,
                    sites: vec![SiteId::new(1), SiteId::new(2), SiteId::new(4)],
                },
            },
            Frame::CoordReply {
                req_id: 3,
                reply: CoordReply::Done {
                    gtx: GlobalTxnId::new(2 * (1 << 40) + 17),
                    outcome: TxnOutcome::Committed,
                    latency_us: 840,
                    messages: 12,
                },
            },
            Frame::CoordReply {
                req_id: 4,
                reply: CoordReply::Done {
                    gtx: GlobalTxnId::new(18),
                    outcome: TxnOutcome::L1Rejected(AbortReason::LockTimeout),
                    latency_us: 3,
                    messages: 0,
                },
            },
        ];
        for frame in frames {
            let bytes = encode_frame(&frame);
            assert_eq!(decode_frame(&bytes).unwrap(), frame, "{frame:?}");
        }
    }

    #[test]
    fn hostile_coord_site_count_does_not_allocate() {
        // An Exec declaring u32::MAX site buckets in a tiny frame.
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        w.u8(5); // coord request
        w.u64(1); // req id
        w.u8(2); // exec
        w.u32(u32::MAX); // site bucket count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(w.buf.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&w.buf);
        assert_eq!(decode_frame(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn hostile_op_count_does_not_allocate() {
        // A Submit declaring u32::MAX ops in a tiny frame must fail with
        // Truncated, not attempt a 4-billion-element Vec.
        let mut w = Writer::new();
        w.u8(WIRE_VERSION);
        w.u8(0); // request
        w.u64(1); // req id
        w.u8(0); // submit
        w.u64(1); // gtx
        w.u32(u32::MAX); // op count
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(w.buf.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&w.buf);
        assert_eq!(decode_frame(&bytes), Err(WireError::Truncated));
    }
}
