//! The TCP site server: one independent process (or thread) per local
//! system, owning its engine + WAL behind a loopback listener.
//!
//! Concurrency model: thread-per-connection. Every connection runs its
//! own request loop — decode a frame, dispatch it to the shared
//! [`LocalCommManager`] (the same dispatch the in-process transport
//! uses), write the reply with the echoed request id. A malformed frame
//! poisons only its own connection: the handler drops the socket and
//! returns, while the listener keeps accepting and every other
//! connection keeps being served.

use crate::wire::{write_frame, Frame, FrameBuffer};
use amc_net::transport::{admin_to_manager, dispatch_to_manager};
use amc_net::{LocalCommManager, SubmitMode};
use amc_obs::{EventKind, ObsSink};
use amc_paxos::AcceptorHost;
use amc_types::SiteId;
use parking_lot::Mutex;
use std::io::{self, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often a blocked connection read wakes up to check the stop flag.
const STOP_POLL: Duration = Duration::from_millis(100);

/// A running site server. Dropping it (or calling
/// [`SiteServer::shutdown`]) stops the listener and joins every
/// connection thread.
pub struct SiteServer {
    site: SiteId,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl SiteServer {
    /// Bind `listen` (e.g. `127.0.0.1:0` for an ephemeral loopback port)
    /// and serve `manager` on it. `mode` selects how submits run — it must
    /// match the protocol the coordinator drives.
    ///
    /// Binding retries briefly on `AddrInUse`: a site restarted **in
    /// place** (same port, after a crash or shutdown) can race the kernel
    /// reclaiming the old listener — the previous socket may linger in
    /// `TIME_WAIT` even though `SO_REUSEADDR` is set by default on Unix
    /// listeners. The retry lives here, not in callers, so every runtime
    /// (binary, tests, embedding) gets restart-in-place for free.
    pub fn spawn(
        site: SiteId,
        manager: Arc<LocalCommManager>,
        mode: SubmitMode,
        listen: &str,
        obs: ObsSink,
    ) -> io::Result<SiteServer> {
        Self::spawn_with_acceptor(site, manager, mode, listen, obs, None)
    }

    /// Like [`SiteServer::spawn`], additionally mounting a co-located
    /// Paxos Commit acceptor: Paxos messages are answered from the
    /// acceptor's durable log, vote replies are run through the
    /// vote-as-accept hook before they leave the process, and a
    /// participant's `Decision` closes its acceptor instances.
    pub fn spawn_with_acceptor(
        site: SiteId,
        manager: Arc<LocalCommManager>,
        mode: SubmitMode,
        listen: &str,
        obs: ObsSink,
        acceptor: Option<Arc<AcceptorHost>>,
    ) -> io::Result<SiteServer> {
        let listener = bind_with_retry(listen)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let manager = Arc::clone(&manager);
                    let obs = obs.clone();
                    let stop = Arc::clone(&stop);
                    let acceptor = acceptor.clone();
                    let handle = std::thread::spawn(move || {
                        serve_connection(
                            stream,
                            site,
                            &manager,
                            mode,
                            &obs,
                            &stop,
                            acceptor.as_deref(),
                        );
                    });
                    // Reap finished handles on every accept: a long-running
                    // site serving many short-lived connections must not
                    // retain a JoinHandle (and its thread's unreclaimed
                    // resources) per connection that ever existed.
                    let mut threads = conn_threads.lock();
                    threads.retain(|h: &JoinHandle<()>| !h.is_finished());
                    threads.push(handle);
                }
            })
        };
        Ok(SiteServer {
            site,
            addr,
            stop,
            accept_thread: Some(accept_thread),
            conn_threads,
        })
    }

    /// The site this server fronts.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The address the server actually listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connection-thread handles currently retained (live connections
    /// plus any finished since the last accept). Bounded by the reap on
    /// accept — a churn of thousands of short-lived connections must not
    /// grow this without bound.
    pub fn connection_threads(&self) -> usize {
        self.conn_threads.lock().len()
    }

    /// Stop accepting, close the listener, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        for h in self.conn_threads.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Bounded `AddrInUse` retry around [`TcpListener::bind`] (see
/// [`SiteServer::spawn`]). Ephemeral-port binds (`:0`) never collide and
/// return on the first attempt.
pub(crate) fn bind_with_retry(listen: &str) -> io::Result<TcpListener> {
    const ATTEMPTS: u32 = 50;
    let mut last = None;
    for attempt in 0..ATTEMPTS {
        if attempt > 0 {
            std::thread::sleep(Duration::from_millis(100));
        }
        match TcpListener::bind(listen) {
            Ok(l) => return Ok(l),
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    Err(last.expect("loop ran at least once"))
}

impl Drop for SiteServer {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// Normal dispatch wrapped with acceptor interception (when one is
/// mounted): Paxos messages are answered by the acceptor, and a vote
/// reply is durably accepted at ballot 0 — or refused, surfacing as an
/// error — before it is released.
pub(crate) fn dispatch_with_acceptor(
    manager: &LocalCommManager,
    payload: amc_net::Payload,
    mode: SubmitMode,
    acceptor: Option<&AcceptorHost>,
) -> amc_types::AmcResult<amc_net::Payload> {
    let Some(host) = acceptor else {
        return dispatch_to_manager(manager, payload, mode);
    };
    if let Some(reply) = host.pre_dispatch(&payload)? {
        return Ok(reply);
    }
    let reply = dispatch_to_manager(manager, payload, mode)?;
    host.post_dispatch(&reply)?;
    Ok(reply)
}

/// Serve one request frame: dispatch it and build the reply frame.
/// Returns `None` for frames a server must never receive (a peer sending
/// *replies* is broken and its connection should be dropped).
///
/// This is the single request-handling path shared by the blocking
/// thread-per-connection server and the event-loop runtime, so both
/// interpret the vocabulary (and the acceptor interception) identically.
pub(crate) fn reply_for_frame(
    frame: Frame,
    site: SiteId,
    manager: &LocalCommManager,
    mode: SubmitMode,
    obs: &ObsSink,
    acceptor: Option<&AcceptorHost>,
) -> Option<Frame> {
    match frame {
        Frame::Request { req_id, payload } => {
            obs.emit(
                Some(payload.gtx()),
                site,
                EventKind::MsgDeliver {
                    label: payload.label(),
                    from: SiteId::CENTRAL,
                },
            );
            Some(
                match dispatch_with_acceptor(manager, payload, mode, acceptor) {
                    Ok(payload) => {
                        obs.emit(
                            Some(payload.gtx()),
                            site,
                            EventKind::MsgSend {
                                label: payload.label(),
                                from: site,
                                to: SiteId::CENTRAL,
                            },
                        );
                        Frame::Reply { req_id, payload }
                    }
                    Err(error) => Frame::ErrorReply { req_id, error },
                },
            )
        }
        Frame::AdminRequest { req_id, req } => {
            let handled = acceptor.and_then(|h| h.admin_pre(&req));
            let result = match handled {
                Some(reply) => Ok(reply),
                None => admin_to_manager(manager, req),
            };
            Some(match result {
                Ok(reply) => Frame::AdminReply { req_id, reply },
                Err(error) => Frame::ErrorReply { req_id, error },
            })
        }
        // Coordinator frames belong to the router↔coordinator surface; a
        // site server receiving one has a confused peer — drop it.
        Frame::Reply { .. }
        | Frame::AdminReply { .. }
        | Frame::ErrorReply { .. }
        | Frame::CoordRequest { .. }
        | Frame::CoordReply { .. } => None,
    }
}

/// One connection's request loop. Returns (dropping the connection) on
/// any read/decode error or when the stop flag is raised.
///
/// Reads go through a [`FrameBuffer`], never `read_exact`: a read
/// deadline that ticks mid-frame leaves the consumed bytes buffered, so
/// a slow writer dribbling a frame across many 100 ms windows still
/// parses. (The old loop discarded partially-read bytes on every
/// timeout and resumed mid-frame — desyncing the stream and killing a
/// healthy connection.)
fn serve_connection(
    mut stream: TcpStream,
    site: SiteId,
    manager: &LocalCommManager,
    mode: SubmitMode,
    obs: &ObsSink,
    stop: &AtomicBool,
    acceptor: Option<&AcceptorHost>,
) {
    // Short read timeout so the thread notices shutdown promptly even on
    // an idle connection.
    if stream.set_read_timeout(Some(STOP_POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let mut buf = FrameBuffer::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match stream.read(&mut chunk) {
            // EOF: the peer closed cleanly.
            Ok(0) => return,
            Ok(n) => buf.extend(&chunk[..n]),
            // A deadline tick with no bytes: whatever is buffered stays
            // buffered; just re-check the stop flag.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                continue
            }
            // Closed, reset: this connection is done — and only this one.
            Err(_) => return,
        }
        loop {
            let frame = match buf.next_frame() {
                Ok(Some(f)) => f,
                // Partial frame: wait for more bytes.
                Ok(None) => break,
                // Garbage, oversized: frame boundaries are gone — drop
                // the connection (never the server).
                Err(_) => return,
            };
            let Some(reply) = reply_for_frame(frame, site, manager, mode, obs, acceptor) else {
                return;
            };
            if write_frame(&mut stream, &reply).is_err() {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::read_frame;
    use amc_engine::{TplConfig, TwoPLEngine};
    use amc_net::comm::EngineHandle;
    use amc_net::transport::{AdminReply, AdminRequest};
    use amc_types::{GlobalTxnId, ObjectId, Operation, Value};
    use std::io::Write as _;

    fn server() -> SiteServer {
        let site = SiteId::new(1);
        let engine = Arc::new(TwoPLEngine::new(TplConfig::default()));
        let manager = Arc::new(LocalCommManager::new(
            site,
            EngineHandle::Preparable(engine),
        ));
        SiteServer::spawn(
            site,
            manager,
            SubmitMode::CommitBefore,
            "127.0.0.1:0",
            ObsSink::disabled(),
        )
        .expect("bind loopback")
    }

    fn roundtrip(stream: &mut TcpStream, frame: &Frame) -> Frame {
        write_frame(stream, frame).unwrap();
        loop {
            match read_frame(stream) {
                Ok(f) => return f,
                Err(e) if e.is_timeout() => continue,
                Err(e) => panic!("read: {e}"),
            }
        }
    }

    #[test]
    fn serves_a_submit_over_tcp() {
        let srv = server();
        let mut conn = TcpStream::connect(srv.addr()).unwrap();
        let reply = roundtrip(
            &mut conn,
            &Frame::AdminRequest {
                req_id: 1,
                req: AdminRequest::Load(vec![(ObjectId::new(1), Value::counter(10))]),
            },
        );
        assert_eq!(
            reply,
            Frame::AdminReply {
                req_id: 1,
                reply: AdminReply::Loaded
            }
        );
        let reply = roundtrip(
            &mut conn,
            &Frame::Request {
                req_id: 2,
                payload: amc_net::Payload::Submit {
                    gtx: GlobalTxnId::new(1),
                    ops: vec![Operation::Increment {
                        obj: ObjectId::new(1),
                        delta: 5,
                    }],
                },
            },
        );
        match reply {
            Frame::Reply {
                req_id: 2,
                payload: amc_net::Payload::Vote { vote, .. },
            } => assert!(vote.is_yes()),
            other => panic!("unexpected {other:?}"),
        }
        srv.shutdown();
    }

    #[test]
    fn garbage_frame_drops_only_that_connection() {
        let srv = server();
        // A healthy connection established first.
        let mut healthy = TcpStream::connect(srv.addr()).unwrap();
        // A hostile connection: oversized length prefix.
        let mut hostile = TcpStream::connect(srv.addr()).unwrap();
        hostile.write_all(&u32::MAX.to_le_bytes()).unwrap();
        // The hostile connection gets dropped: the next read sees EOF.
        hostile
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut buf = [0u8; 1];
        use std::io::Read as _;
        assert_eq!(hostile.read(&mut buf).unwrap_or(0), 0, "must be closed");
        // The healthy connection still serves.
        let reply = roundtrip(
            &mut healthy,
            &Frame::AdminRequest {
                req_id: 7,
                req: AdminRequest::Ping,
            },
        );
        assert_eq!(
            reply,
            Frame::AdminReply {
                req_id: 7,
                reply: AdminReply::Pong
            }
        );
        srv.shutdown();
    }
}
