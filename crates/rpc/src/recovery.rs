//! Site restart recovery: rebuild a networked site from its `--wal-dir`.
//!
//! A site server started with a WAL directory keeps two frame files,
//! both in the CRC-framed format of [`amc_wal::DurableFile`]:
//!
//! * `site-N.wal` — the engine's write-ahead log; replaying it rebuilds
//!   the page store, redoes committed updates, rolls back losers, and
//!   resurrects prepared (in-doubt) transactions in the ready state;
//! * `site-N.jrn` — the communication manager's work journal
//!   ([`amc_net::journal`]): the `gtx → work` map that lets the restarted
//!   site answer the coordinator's final-state inquiry per protocol —
//!   matching retransmitted 2PC decisions to resurrected locals, and
//!   running §3.3 inverse transactions from their persisted undo-log.
//!
//! [`SiteRecoveryManager::open`] performs the whole restart sequence and
//! returns a ready-to-serve manager plus the [`RecoveryStats`] the admin
//! `Recovery` request reports. A first boot (empty directory) is just a
//! recovery of zero records.

use amc_engine::{TplConfig, TwoPLEngine};
use amc_net::comm::EngineHandle;
use amc_net::journal::{RecoveryStats, WorkEntry, WorkJournal};
use amc_net::LocalCommManager;
use amc_obs::ObsSink;
use amc_types::{AmcResult, GlobalTxnId, SiteId};
use amc_wal::durable::{frame, unframe, DurableFile};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A [`WorkJournal`] persisting entries to an append-only frame file.
///
/// Appends are synced before `record` returns, so an entry the manager
/// believes journaled survives a `kill -9`. Supersession is by replay:
/// the file may hold many records per global transaction; loading keeps
/// the last one.
pub struct FileWorkJournal {
    file: Mutex<DurableFile>,
}

impl FileWorkJournal {
    /// Open (creating if absent) the journal at `path` and return it
    /// together with the surviving entries, deduplicated to the last
    /// record per global transaction. A torn final frame — a crash mid
    /// `record` — is truncated away: the entry was never durable, so the
    /// manager never acted on its being journaled.
    pub fn open(path: impl AsRef<Path>) -> AmcResult<(FileWorkJournal, Vec<WorkEntry>)> {
        let opened = DurableFile::open(path)?;
        let mut last: HashMap<GlobalTxnId, WorkEntry> = HashMap::new();
        for f in &opened.frames {
            let entry = WorkEntry::decode(unframe(f)?)?;
            last.insert(entry.gtx, entry);
        }
        Ok((
            FileWorkJournal {
                file: Mutex::new(opened.file),
            },
            last.into_values().collect(),
        ))
    }
}

impl WorkJournal for FileWorkJournal {
    fn record(&self, entry: &WorkEntry) {
        let mut file = self.file.lock();
        file.append(&frame(&entry.encode()));
        file.sync();
    }
}

/// Builds (or rebuilds) one networked site from its durable state.
pub struct SiteRecoveryManager {
    wal_dir: PathBuf,
}

impl SiteRecoveryManager {
    /// Recovery rooted at `wal_dir` (created if absent).
    pub fn new(wal_dir: impl Into<PathBuf>) -> Self {
        SiteRecoveryManager {
            wal_dir: wal_dir.into(),
        }
    }

    /// The engine WAL path for `site`.
    pub fn wal_path(&self, site: SiteId) -> PathBuf {
        self.wal_dir.join(format!("site-{}.wal", site.raw()))
    }

    /// The work-journal path for `site`.
    pub fn journal_path(&self, site: SiteId) -> PathBuf {
        self.wal_dir.join(format!("site-{}.jrn", site.raw()))
    }

    /// Run the full restart sequence for `site`:
    ///
    /// 1. open the engine over its durable WAL (redo, undo, resurrect
    ///    in-doubt transactions — §3.1's local recovery);
    /// 2. open the work journal and restore the manager's `gtx → work`
    ///    map, consulting the commit markers where the journal alone
    ///    cannot know which side of a local commit the crash fell on;
    /// 3. record [`RecoveryStats`] for the admin `Recovery` request.
    ///
    /// The returned manager journals all further work to the same files,
    /// so the site can crash and recover any number of times.
    pub fn open(
        &self,
        site: SiteId,
        cfg: TplConfig,
        obs: ObsSink,
    ) -> AmcResult<(Arc<LocalCommManager>, RecoveryStats)> {
        if let Err(e) = std::fs::create_dir_all(&self.wal_dir) {
            return Err(amc_types::AmcError::TransientIo(format!(
                "create {}: {e}",
                self.wal_dir.display()
            )));
        }
        let (engine, report) = TwoPLEngine::open_durable(cfg, site, self.wal_path(site))?;
        let (journal, entries) = FileWorkJournal::open(self.journal_path(site))?;
        let mut manager = LocalCommManager::new(site, EngineHandle::Preparable(Arc::new(engine)));
        manager.set_obs(obs);
        manager.set_journal(Box::new(journal));
        let manager = Arc::new(manager);
        let restored = manager.restore_work(entries)?;
        let stats = RecoveryStats {
            committed: report.committed.len() as u64,
            rolled_back: report.rolled_back.len() as u64,
            in_doubt: report.in_doubt.len() as u64,
            replayed: report.replayed,
            restored_entries: restored,
            torn_tail: report.torn_tail,
        };
        manager.set_recovery_stats(stats);
        Ok((manager, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_net::comm::SubmitMode;
    use amc_net::Payload;
    use amc_types::{GlobalVerdict, LocalVote, ObjectId, Operation, Value};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("amc-recovery-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn vote_of(p: Payload) -> LocalVote {
        match p {
            Payload::Vote { vote, .. } => vote,
            other => panic!("expected vote, got {other:?}"),
        }
    }

    #[test]
    fn file_journal_round_trips_with_last_record_winning() {
        let dir = tmp_dir("journal");
        let path = dir.join("j.jrn");
        let _ = std::fs::remove_file(&path);
        let (journal, entries) = FileWorkJournal::open(&path).unwrap();
        assert!(entries.is_empty());
        let mut e = WorkEntry {
            gtx: GlobalTxnId::new(1),
            mode: SubmitMode::CommitBefore,
            ltx: None,
            committed_locally: false,
            vote: None,
            ops: vec![Operation::Increment {
                obj: ObjectId::new(1),
                delta: 2,
            }],
            inverse_ops: vec![Operation::Increment {
                obj: ObjectId::new(1),
                delta: -2,
            }],
        };
        journal.record(&e);
        e.committed_locally = true;
        e.vote = Some(LocalVote::Ready);
        journal.record(&e);
        drop(journal);
        let (_, entries) = FileWorkJournal::open(&path).unwrap();
        assert_eq!(entries, vec![e]);
    }

    #[test]
    fn first_boot_is_a_zero_record_recovery() {
        let dir = tmp_dir("boot");
        let site = SiteId::new(3);
        let (manager, stats) = SiteRecoveryManager::new(&dir)
            .open(site, TplConfig::default(), ObsSink::disabled())
            .unwrap();
        assert_eq!(stats, RecoveryStats::default());
        assert_eq!(manager.recovery_stats(), Some(stats));
        assert!(manager.handle().engine().dump().unwrap().is_empty());
    }

    #[test]
    fn commit_before_work_survives_reopen_and_undoes_on_global_abort() {
        let dir = tmp_dir("cb-undo");
        let site = SiteId::new(1);
        let recovery = SiteRecoveryManager::new(&dir);
        let gtx = GlobalTxnId::new(9);
        {
            let (manager, _) = recovery
                .open(site, TplConfig::default(), ObsSink::disabled())
                .unwrap();
            manager
                .handle()
                .engine()
                .bulk_load(&[(ObjectId::new(1), Value::counter(100))])
                .unwrap();
            let vote = vote_of(
                manager
                    .handle_submit(
                        gtx,
                        vec![Operation::Increment {
                            obj: ObjectId::new(1),
                            delta: -30,
                        }],
                        SubmitMode::CommitBefore,
                    )
                    .unwrap(),
            );
            assert_eq!(vote, LocalVote::Ready);
            // Crash: the manager (and its memory of the inverse ops) dies.
        }
        let (manager, stats) = recovery
            .open(site, TplConfig::default(), ObsSink::disabled())
            .unwrap();
        assert!(stats.restored_entries >= 1);
        // The committed forward transaction survived...
        assert_eq!(
            vote_of(manager.handle_prepare(gtx).unwrap()),
            LocalVote::Ready
        );
        // ...and a global abort still finds the §3.3 undo-log: an empty
        // Undo payload means "use your journaled inverses".
        manager.handle_undo(gtx, Vec::new()).unwrap();
        let dump = manager.handle().engine().dump().unwrap();
        assert_eq!(dump.get(&ObjectId::new(1)), Some(&Value::counter(100)));
    }

    #[test]
    fn two_phase_in_doubt_resolves_by_retransmitted_decision() {
        let dir = tmp_dir("2pc-indoubt");
        let site = SiteId::new(2);
        let recovery = SiteRecoveryManager::new(&dir);
        let gtx = GlobalTxnId::new(5);
        {
            let (manager, _) = recovery
                .open(site, TplConfig::default(), ObsSink::disabled())
                .unwrap();
            manager
                .handle()
                .engine()
                .bulk_load(&[(ObjectId::new(7), Value::counter(1))])
                .unwrap();
            let vote = vote_of(
                manager
                    .handle_submit(
                        gtx,
                        vec![Operation::Write {
                            obj: ObjectId::new(7),
                            value: Value::counter(2),
                        }],
                        SubmitMode::TwoPhase,
                    )
                    .unwrap(),
            );
            assert_eq!(vote, LocalVote::Ready);
            assert_eq!(
                vote_of(manager.handle_prepare(gtx).unwrap()),
                LocalVote::Ready
            );
            // Crash inside the in-doubt window.
        }
        let (manager, stats) = recovery
            .open(site, TplConfig::default(), ObsSink::disabled())
            .unwrap();
        assert_eq!(stats.in_doubt, 1);
        // Re-inquiry still answers ready (the vote is a promise)...
        assert_eq!(
            vote_of(manager.handle_prepare(gtx).unwrap()),
            LocalVote::Ready
        );
        // ...and the retransmitted decision lands on the resurrected ltx.
        manager.handle_decision(gtx, GlobalVerdict::Commit).unwrap();
        let dump = manager.handle().engine().dump().unwrap();
        assert_eq!(dump.get(&ObjectId::new(7)), Some(&Value::counter(2)));
        // A second restart finds the decision durable: nothing in doubt.
        drop(manager);
        let (_, stats) = recovery
            .open(site, TplConfig::default(), ObsSink::disabled())
            .unwrap();
        assert_eq!(stats.in_doubt, 0);
    }
}
