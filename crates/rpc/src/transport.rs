//! [`FederationTransport`] over TCP: one [`RpcClient`] per site.

use crate::client::{RetryPolicy, RpcClient};
use amc_net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc_net::Payload;
use amc_obs::ObsSink;
use amc_types::{AmcError, AmcResult, SiteId};
use std::collections::BTreeMap;
use std::net::SocketAddr;

/// The networked transport: the coordinator reaches every site through a
/// deadline/retry RPC client over loopback (or any) TCP.
pub struct TcpTransport {
    clients: BTreeMap<SiteId, RpcClient>,
}

impl TcpTransport {
    /// A transport for the sites at `addrs`, all sharing `policy` and
    /// emitting client-side events into `obs`.
    pub fn new(addrs: BTreeMap<SiteId, SocketAddr>, policy: RetryPolicy, obs: ObsSink) -> Self {
        let clients = addrs
            .into_iter()
            .map(|(site, addr)| (site, RpcClient::new(site, addr, policy, obs.clone())))
            .collect();
        TcpTransport { clients }
    }

    /// Repoint one site's client (a restarted site server may listen on a
    /// new port).
    pub fn set_site_addr(&self, site: SiteId, addr: SocketAddr) {
        if let Some(c) = self.clients.get(&site) {
            c.set_addr(addr);
        }
    }
}

impl FederationTransport for TcpTransport {
    fn sites(&self) -> Vec<SiteId> {
        self.clients.keys().copied().collect()
    }

    fn call(&self, to: SiteId, payload: Payload) -> AmcResult<Payload> {
        self.clients
            .get(&to)
            .ok_or(AmcError::SiteDown(to))?
            .call(payload)
    }

    fn admin(&self, to: SiteId, req: AdminRequest) -> AmcResult<AdminReply> {
        self.clients
            .get(&to)
            .ok_or(AmcError::SiteDown(to))?
            .admin(req)
    }
}
