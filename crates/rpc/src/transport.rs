//! [`FederationTransport`] over TCP: one client per site — pooled
//! blocking connections ([`RpcClient`]) or a single multiplexed
//! pipelining connection ([`MuxClient`]) per site.

use crate::client::{RetryPolicy, RpcClient};
use crate::mux::MuxClient;
use amc_net::transport::{AdminReply, AdminRequest, FederationTransport};
use amc_net::Payload;
use amc_obs::ObsSink;
use amc_types::{AmcError, AmcResult, SiteId};
use std::collections::BTreeMap;
use std::net::SocketAddr;

/// One site's client, either flavour.
enum SiteClient {
    /// Pooled blocking connections, one checked out per in-flight call.
    Blocking(RpcClient),
    /// One shared multiplexed connection; concurrent calls pipeline.
    Mux(MuxClient),
}

impl SiteClient {
    fn call(&self, payload: Payload) -> AmcResult<Payload> {
        match self {
            SiteClient::Blocking(c) => c.call(payload),
            SiteClient::Mux(c) => c.call(payload),
        }
    }

    fn admin(&self, req: AdminRequest) -> AmcResult<AdminReply> {
        match self {
            SiteClient::Blocking(c) => c.admin(req),
            SiteClient::Mux(c) => c.admin(req),
        }
    }

    fn set_addr(&self, addr: SocketAddr) {
        match self {
            SiteClient::Blocking(c) => c.set_addr(addr),
            SiteClient::Mux(c) => c.set_addr(addr),
        }
    }

    fn sheds(&self) -> u64 {
        match self {
            SiteClient::Blocking(c) => c.sheds(),
            SiteClient::Mux(c) => c.sheds(),
        }
    }
}

/// The networked transport: the coordinator reaches every site through a
/// deadline/retry RPC client over loopback (or any) TCP.
pub struct TcpTransport {
    clients: BTreeMap<SiteId, SiteClient>,
    pipelining: bool,
}

impl TcpTransport {
    /// A transport for the sites at `addrs`, all sharing `policy` and
    /// emitting client-side events into `obs`. Uses pooled blocking
    /// clients (one connection per in-flight call).
    pub fn new(addrs: BTreeMap<SiteId, SocketAddr>, policy: RetryPolicy, obs: ObsSink) -> Self {
        let clients = addrs
            .into_iter()
            .map(|(site, addr)| {
                (
                    site,
                    SiteClient::Blocking(RpcClient::new(site, addr, policy, obs.clone())),
                )
            })
            .collect();
        TcpTransport {
            clients,
            pipelining: false,
        }
    }

    /// Like [`TcpTransport::new`], but every site is reached over a
    /// single multiplexed connection and concurrent calls pipeline. The
    /// transport reports [`FederationTransport::supports_pipelining`],
    /// so the coordinator fans message rounds out in parallel.
    pub fn new_mux(addrs: BTreeMap<SiteId, SocketAddr>, policy: RetryPolicy, obs: ObsSink) -> Self {
        let clients = addrs
            .into_iter()
            .map(|(site, addr)| {
                (
                    site,
                    SiteClient::Mux(MuxClient::new(site, addr, policy, obs.clone())),
                )
            })
            .collect();
        TcpTransport {
            clients,
            pipelining: true,
        }
    }

    /// Repoint one site's client (a restarted site server may listen on a
    /// new port).
    pub fn set_site_addr(&self, site: SiteId, addr: SocketAddr) {
        if let Some(c) = self.clients.get(&site) {
            c.set_addr(addr);
        }
    }

    /// Total load-shed (`BufferExhausted`) answers across every site's
    /// client, retried and terminal alike.
    pub fn sheds(&self) -> u64 {
        self.clients.values().map(SiteClient::sheds).sum()
    }
}

impl FederationTransport for TcpTransport {
    fn sites(&self) -> Vec<SiteId> {
        self.clients.keys().copied().collect()
    }

    fn call(&self, to: SiteId, payload: Payload) -> AmcResult<Payload> {
        self.clients
            .get(&to)
            .ok_or(AmcError::SiteDown(to))?
            .call(payload)
    }

    fn admin(&self, to: SiteId, req: AdminRequest) -> AmcResult<AdminReply> {
        self.clients
            .get(&to)
            .ok_or(AmcError::SiteDown(to))?
            .admin(req)
    }

    fn supports_pipelining(&self) -> bool {
        self.pipelining
    }

    fn load_sheds(&self) -> u64 {
        self.sheds()
    }
}
