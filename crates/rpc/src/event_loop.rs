//! The event-loop site-server runtime.
//!
//! One epoll thread owns every socket; a small worker pool owns every
//! dispatch. The loop never blocks on I/O or on the engine:
//!
//! - **Reads** are nonblocking and incremental. Bytes land in a
//!   per-connection [`FrameBuffer`]; a frame that arrives in ten pieces
//!   is ten cheap appends and one decode. There is no `read_exact`
//!   anywhere, so there is no way for a timeout to eat half a frame.
//! - **Dispatch** happens off-loop. Each decoded request becomes a job
//!   for the worker pool, so a dispatch that blocks (a WAL fsync, a lock
//!   wait) stalls one worker, not the loop — and concurrent workers
//!   hitting the WAL together are exactly what
//!   [`amc_wal::GroupCommitter`] needs to merge their fsyncs.
//! - **Writes** are batched. Finished replies are serialized into the
//!   connection's write buffer; whatever has accumulated by the time the
//!   socket is writable goes out in one syscall. A slow reader causes
//!   `EPOLLOUT`-driven flushing, never a blocked thread.
//! - **Backpressure** is per connection and explicit. At most
//!   [`MAX_IN_FLIGHT_PER_CONN`] requests may be dispatched concurrently
//!   per connection; excess requests are not queued but *shed* with an
//!   [`ErrorReply`](Frame::ErrorReply) carrying
//!   [`AmcError::BufferExhausted`], so an overloaded server stays
//!   responsive and the client learns immediately instead of timing out.
//!
//! Replies are written in completion order, not arrival order: the
//! request id — echoed verbatim in every reply — is what lets a
//! pipelining client match them up again.

use crate::server::reply_for_frame;
use crate::wire::{encode_frame, Frame, FrameBuffer};
use amc_epoll::{Interest, Poller, Waker};
use amc_net::{LocalCommManager, SubmitMode};
use amc_obs::ObsSink;
use amc_paxos::AcceptorHost;
use amc_types::{AmcError, SiteId};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Max requests dispatched concurrently per connection before load
/// shedding kicks in. Small on purpose: a well-behaved pipelining client
/// keeps fewer in flight, and anything past this bound is better
/// answered "overloaded" now than queued towards a timeout.
pub const MAX_IN_FLIGHT_PER_CONN: usize = 64;

/// Cap on bytes buffered as un-flushed replies for one connection. A
/// peer that keeps sending requests while never reading replies piles
/// output up here; past this bound the connection is closed (its
/// unread replies are dropped with it) rather than letting one stalled
/// reader grow the server's memory without limit. Honest clients never
/// get near it: [`MAX_IN_FLIGHT_PER_CONN`] bounds outstanding real
/// replies, and shed replies only accumulate while the peer floods
/// without reading — exactly the behaviour this cap punishes.
pub const MAX_WBUF_BYTES: usize = 256 * 1024;

/// Epoll tokens 0/1 are the listener and the waker; connections start
/// above them.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// How long one epoll wait sleeps before re-checking the stop flag.
const WAIT_TICK: Duration = Duration::from_millis(100);

/// Counters the loop maintains; cheap enough to read any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventServerStats {
    /// Connections currently registered with the poller.
    pub current_connections: u64,
    /// High-water mark of concurrently registered connections.
    pub peak_connections: u64,
    /// Requests answered with a load-shed `ErrorReply` instead of being
    /// dispatched.
    pub load_sheds: u64,
    /// Requests dispatched to the worker pool.
    pub dispatched: u64,
    /// Connections closed because a stalled reader let its write buffer
    /// exceed [`MAX_WBUF_BYTES`].
    pub wbuf_overflows: u64,
}

#[derive(Default)]
struct SharedStats {
    current: AtomicU64,
    peak: AtomicU64,
    load_sheds: AtomicU64,
    dispatched: AtomicU64,
    wbuf_overflows: AtomicU64,
}

/// A dispatch job: which connection asked, and what it asked.
struct Job {
    conn: u64,
    frame: Frame,
}

/// A finished dispatch: which connection to answer, and the reply frame.
struct Completion {
    conn: u64,
    reply: Frame,
}

/// Worker-pool plumbing: a bounded job queue the loop pushes into and a
/// completion queue the workers push back, with the eventfd waker as the
/// loop's doorbell.
struct Pool {
    jobs: Mutex<VecDeque<Job>>,
    jobs_cv: Condvar,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    stop: AtomicBool,
}

/// Per-connection state owned by the event loop.
struct Conn {
    stream: TcpStream,
    rbuf: FrameBuffer,
    /// Batched outgoing bytes; `wpos` is how much has already been
    /// written. Replies append here and are flushed together.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Requests currently dispatched to the pool for this connection.
    in_flight: usize,
    /// The interest currently registered with the poller.
    interest: Interest,
    /// Reads hit EOF or a fatal decode error; the connection closes as
    /// soon as the write buffer drains and the in-flight count is zero.
    closing: bool,
}

/// A running event-loop site server. Drop-in replacement for
/// [`SiteServer`](crate::SiteServer): same spawn surface, same wire
/// vocabulary, same acceptor hook — different concurrency model.
pub struct EventServer {
    site: SiteId,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    pool: Arc<Pool>,
    stats: Arc<SharedStats>,
    loop_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl EventServer {
    /// Bind `listen` and serve `manager` on the event-loop runtime.
    pub fn spawn(
        site: SiteId,
        manager: Arc<LocalCommManager>,
        mode: SubmitMode,
        listen: &str,
        obs: ObsSink,
    ) -> io::Result<EventServer> {
        Self::spawn_with_acceptor(site, manager, mode, listen, obs, None)
    }

    /// Like [`EventServer::spawn`], additionally mounting a co-located
    /// Paxos Commit acceptor (see
    /// [`SiteServer::spawn_with_acceptor`](crate::SiteServer::spawn_with_acceptor)).
    pub fn spawn_with_acceptor(
        site: SiteId,
        manager: Arc<LocalCommManager>,
        mode: SubmitMode,
        listen: &str,
        obs: ObsSink,
        acceptor: Option<Arc<AcceptorHost>>,
    ) -> io::Result<EventServer> {
        let listener = crate::server::bind_with_retry(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(SharedStats::default());
        let pool = Arc::new(Pool {
            jobs: Mutex::new(VecDeque::new()),
            jobs_cv: Condvar::new(),
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            stop: AtomicBool::new(false),
        });

        // Workers spend most of their life *waiting* — on locks, on the
        // group committer's fsync — not computing, so the pool is sized
        // well past the core count: enough that a burst of wedged
        // dispatches (every worker parked on the same hot lock) still
        // leaves hands free for the requests behind it, few enough that
        // hundreds of connections don't mean hundreds of threads.
        let n_workers = (2 * std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4))
        .clamp(16, 32);
        let mut workers = Vec::with_capacity(n_workers);
        for _ in 0..n_workers {
            let pool = Arc::clone(&pool);
            let manager = Arc::clone(&manager);
            let obs = obs.clone();
            let acceptor = acceptor.clone();
            workers.push(std::thread::spawn(move || {
                worker_loop(&pool, site, &manager, mode, &obs, acceptor.as_deref());
            }));
        }

        let loop_thread = {
            let stop = Arc::clone(&stop);
            let pool = Arc::clone(&pool);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                // A loop that cannot set itself up serves nothing; every
                // connection attempt will see ECONNREFUSED once the
                // listener drops.
                let _ = event_loop(listener, stop, pool, stats);
            })
        };

        Ok(EventServer {
            site,
            addr,
            stop,
            pool,
            stats,
            loop_thread: Some(loop_thread),
            workers,
        })
    }

    /// The site this server fronts.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// The address the server actually listens on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current loop counters.
    pub fn stats(&self) -> EventServerStats {
        EventServerStats {
            current_connections: self.stats.current.load(Ordering::Relaxed),
            peak_connections: self.stats.peak.load(Ordering::Relaxed),
            load_sheds: self.stats.load_sheds.load(Ordering::Relaxed),
            dispatched: self.stats.dispatched.load(Ordering::Relaxed),
            wbuf_overflows: self.stats.wbuf_overflows.load(Ordering::Relaxed),
        }
    }

    /// Stop the loop and the workers, dropping every connection.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.pool.waker.wake();
        if let Some(h) = self.loop_thread.take() {
            let _ = h.join();
        }
        self.pool.stop.store(true, Ordering::SeqCst);
        self.pool.jobs_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for EventServer {
    fn drop(&mut self) {
        if self.loop_thread.is_some() {
            self.stop_and_join();
        }
    }
}

/// One worker: pull a job, dispatch it through the shared request path,
/// hand the reply back to the loop, ring the doorbell.
fn worker_loop(
    pool: &Pool,
    site: SiteId,
    manager: &LocalCommManager,
    mode: SubmitMode,
    obs: &ObsSink,
    acceptor: Option<&AcceptorHost>,
) {
    loop {
        let job = {
            let mut jobs = pool.jobs.lock();
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if pool.stop.load(Ordering::SeqCst) {
                    return;
                }
                pool.jobs_cv.wait(&mut jobs);
            }
        };
        // Only request-kind frames are ever enqueued, so `reply_for_frame`
        // always produces a reply here.
        let Some(reply) = reply_for_frame(job.frame, site, manager, mode, obs, acceptor) else {
            continue;
        };
        pool.completions.lock().push(Completion {
            conn: job.conn,
            reply,
        });
        pool.waker.wake();
    }
}

/// The loop itself: accept, read/decode, hand out jobs, collect
/// completions, batch-write replies.
fn event_loop(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    pool: Arc<Pool>,
    stats: Arc<SharedStats>,
) -> io::Result<()> {
    let poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    poller.register(pool.waker.fd(), TOKEN_WAKER, Interest::READ)?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events = Vec::new();
    let mut chunk = [0u8; 64 * 1024];

    while !stop.load(Ordering::SeqCst) {
        poller.wait(&mut events, Some(WAIT_TICK))?;
        // Tokens whose connection state changed this round and may need
        // closing or interest updates.
        for ev in events.clone() {
            match ev.token {
                TOKEN_LISTENER => {
                    accept_ready(&listener, &poller, &mut conns, &mut next_token, &stats);
                }
                TOKEN_WAKER => {
                    pool.waker.drain();
                    drain_completions(&pool, &poller, &mut conns, &stats);
                }
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue;
                    };
                    let mut dead = ev.error;
                    if ev.readable && !dead {
                        dead = read_ready(conn, token, &mut chunk, &pool, &stats);
                    }
                    if ev.writable && !dead {
                        dead = flush(conn).is_err();
                    }
                    finish_or_update(&poller, &mut conns, token, dead, &stats);
                }
            }
        }
    }

    // Shutdown: deregister and drop everything.
    for (_, conn) in conns.drain() {
        poller.deregister(conn.stream.as_raw_fd());
    }
    poller.deregister(listener.as_raw_fd());
    poller.deregister(pool.waker.fd());
    Ok(())
}

/// Accept every pending connection (the listener is level-triggered and
/// nonblocking).
fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    stats: &SharedStats,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        };
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let _ = stream.set_nodelay(true);
        let token = *next_token;
        *next_token += 1;
        if poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            continue;
        }
        conns.insert(
            token,
            Conn {
                stream,
                rbuf: FrameBuffer::new(),
                wbuf: Vec::new(),
                wpos: 0,
                in_flight: 0,
                interest: Interest::READ,
                closing: false,
            },
        );
        let now = conns.len() as u64;
        stats.current.store(now, Ordering::Relaxed);
        stats.peak.fetch_max(now, Ordering::Relaxed);
    }
}

/// Drain the socket into the frame buffer and decode every complete
/// frame. Returns `true` when the connection must die *immediately*
/// (poisoned stream or peer sent reply-kind frames).
fn read_ready(
    conn: &mut Conn,
    token: u64,
    chunk: &mut [u8],
    pool: &Pool,
    stats: &SharedStats,
) -> bool {
    loop {
        match conn.stream.read(chunk) {
            // EOF: no new requests, but in-flight replies still get
            // written back before the close.
            Ok(0) => {
                conn.closing = true;
                break;
            }
            Ok(n) => conn.rbuf.extend(&chunk[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    let mut jobs = Vec::new();
    loop {
        match conn.rbuf.next_frame() {
            Ok(Some(frame @ (Frame::Request { .. } | Frame::AdminRequest { .. }))) => {
                if conn.in_flight >= MAX_IN_FLIGHT_PER_CONN {
                    // Load shed: answer now, dispatch never. The reply
                    // goes through the same batched write path.
                    stats.load_sheds.fetch_add(1, Ordering::Relaxed);
                    let shed = Frame::ErrorReply {
                        req_id: frame.req_id(),
                        error: AmcError::BufferExhausted,
                    };
                    conn.wbuf.extend_from_slice(&encode_frame(&shed));
                } else {
                    conn.in_flight += 1;
                    stats.dispatched.fetch_add(1, Ordering::Relaxed);
                    jobs.push(Job { conn: token, frame });
                }
            }
            // A server only accepts requests (cf. the blocking runtime).
            Ok(Some(_)) => return true,
            Ok(None) => break,
            Err(_) => return true,
        }
    }
    // Shed replies landed in the write buffer above; a peer that floods
    // requests while never reading replies must not grow it without
    // bound. Give the socket one chance to take the backlog, then close.
    if conn.wbuf.len() - conn.wpos > MAX_WBUF_BYTES
        && (flush(conn).is_err() || conn.wbuf.len() - conn.wpos > MAX_WBUF_BYTES)
    {
        stats.wbuf_overflows.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    if !jobs.is_empty() {
        let n = jobs.len();
        let mut q = pool.jobs.lock();
        q.extend(jobs);
        drop(q);
        // Wake one worker per job, not the whole pool: `notify_all` here
        // stampedes every idle worker onto one queue lock per request.
        for _ in 0..n {
            pool.jobs_cv.notify_one();
        }
    }
    false
}

/// Serialize finished replies into their connections' write buffers and
/// flush what the sockets will take.
fn drain_completions(
    pool: &Pool,
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    stats: &SharedStats,
) {
    let completions = std::mem::take(&mut *pool.completions.lock());
    let mut touched: Vec<u64> = Vec::new();
    for c in completions {
        // The connection may have died while its request was in flight;
        // the reply is then undeliverable and simply dropped.
        let Some(conn) = conns.get_mut(&c.conn) else {
            continue;
        };
        conn.in_flight -= 1;
        conn.wbuf.extend_from_slice(&encode_frame(&c.reply));
        if !touched.contains(&c.conn) {
            touched.push(c.conn);
        }
    }
    // One flush per touched connection: replies that completed together
    // leave in one write.
    for token in touched {
        let dead = {
            let conn = conns.get_mut(&token).expect("touched conns exist");
            if flush(conn).is_err() {
                true
            } else if conn.wbuf.len() - conn.wpos > MAX_WBUF_BYTES {
                // The socket would not take the backlog: the peer has
                // stopped reading. Close rather than buffer without
                // bound; its unread replies die with the connection.
                stats.wbuf_overflows.fetch_add(1, Ordering::Relaxed);
                true
            } else {
                false
            }
        };
        finish_or_update(poller, conns, token, dead, stats);
    }
}

/// Write as much buffered output as the socket takes right now.
fn flush(conn: &mut Conn) -> io::Result<()> {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wpos > 64 * 1024 {
        conn.wbuf.drain(..conn.wpos);
        conn.wpos = 0;
    }
    Ok(())
}

/// Close a connection that is done (or dead), or fix up its poller
/// interest to match whether output is pending.
fn finish_or_update(
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    dead: bool,
    stats: &SharedStats,
) {
    let Some(conn) = conns.get_mut(&token) else {
        return;
    };
    let drained = conn.wpos == conn.wbuf.len();
    let done = conn.closing && drained && conn.in_flight == 0;
    if dead || done {
        poller.deregister(conn.stream.as_raw_fd());
        conns.remove(&token);
        stats.current.store(conns.len() as u64, Ordering::Relaxed);
        return;
    }
    let want = if drained {
        Interest::READ
    } else {
        Interest::READ_WRITE
    };
    if want != conn.interest
        && poller
            .reregister(conn.stream.as_raw_fd(), token, want)
            .is_ok()
    {
        conn.interest = want;
    }
}
