//! The connection-supervising RPC client.
//!
//! One [`RpcClient`] fronts one site. Every request gets a fresh id, a
//! per-request deadline (socket read/write timeouts), and up to
//! [`RetryPolicy::max_attempts`] tries separated by capped exponential
//! backoff. Any transport failure — connect refused, write failed,
//! deadline expired, reply garbled, id mismatch — discards the
//! connection (the next attempt dials a fresh one) and counts one
//! attempt. Application errors carried in an `ErrorReply` frame are NOT
//! retried: the site answered; the answer is an error.
//!
//! Retrying protocol messages is safe by construction: every manager
//! handler is idempotent (work map, tombstones, durable markers), which
//! is exactly the property the paper's inquiry/repetition machinery
//! already depends on.

use crate::wire::{read_frame, write_frame, Frame};
use amc_net::transport::{AdminReply, AdminRequest};
use amc_net::Payload;
use amc_obs::{EventKind, ObsSink};
use amc_types::{AmcError, AmcResult, SiteId};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Deadlines and retry shape for one client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Deadline for establishing a connection.
    pub connect_timeout: Duration,
    /// Per-request deadline (applies to the write and to the reply read).
    pub request_timeout: Duration,
    /// Total attempts before the site is declared down.
    pub max_attempts: u32,
    /// Backoff before the 2nd attempt; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(2),
            max_attempts: 10,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The backoff *envelope* after failed attempt number `attempt`
    /// (1-based): base · 2^(attempt−1), capped. The client sleeps a
    /// jittered value inside `[envelope/2, envelope]` (equal jitter) so
    /// that the many clients a coordinator runs — one per site — do not
    /// re-dial a recovering site in lockstep after a shared outage.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        let exp = attempt.saturating_sub(1).min(16);
        self.backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_cap)
    }

    /// Apply equal jitter to an envelope: uniform in `[d/2, d]`, driven
    /// by `r` (any uniformly distributed word).
    pub fn jittered(d: Duration, r: u64) -> Duration {
        let nanos = d.as_nanos() as u64;
        let half = nanos / 2;
        if half == 0 {
            return d;
        }
        Duration::from_nanos(half + r % (nanos - half + 1))
    }
}

/// A client for one site: address, pooled connections, retry policy.
///
/// Round-trip against a real [`SiteServer`](crate::SiteServer) on an
/// ephemeral loopback port:
///
/// ```
/// use amc_engine::{TplConfig, TwoPLEngine};
/// use amc_net::{AdminReply, AdminRequest, EngineHandle, LocalCommManager, SubmitMode};
/// use amc_obs::ObsSink;
/// use amc_rpc::{RetryPolicy, RpcClient, SiteServer};
/// use amc_types::SiteId;
/// use std::sync::Arc;
///
/// let site = SiteId::new(1);
/// let engine = Arc::new(TwoPLEngine::new(TplConfig::default()));
/// let manager = Arc::new(LocalCommManager::new(site, EngineHandle::Preparable(engine)));
/// let server = SiteServer::spawn(
///     site, manager, SubmitMode::CommitBefore, "127.0.0.1:0", ObsSink::disabled(),
/// )?;
///
/// let client = RpcClient::new(site, server.addr(), RetryPolicy::default(), ObsSink::disabled());
/// assert!(matches!(client.admin(AdminRequest::Ping)?, AdminReply::Pong));
/// server.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct RpcClient {
    site: SiteId,
    addr: Mutex<SocketAddr>,
    policy: RetryPolicy,
    /// Idle connections. Every in-flight request checks one out; failures
    /// drop it instead of returning it.
    pool: Mutex<Vec<TcpStream>>,
    next_req: AtomicU64,
    ever_connected: AtomicBool,
    /// SplitMix64 state for backoff jitter (seeded per client, so two
    /// clients retrying the same outage desynchronise).
    jitter_state: AtomicU64,
    /// Requests the site answered with a load-shed (`BufferExhausted`).
    sheds: AtomicU64,
    obs: ObsSink,
}

impl RpcClient {
    /// A client for `site` at `addr`.
    pub fn new(site: SiteId, addr: SocketAddr, policy: RetryPolicy, obs: ObsSink) -> Self {
        RpcClient {
            site,
            addr: Mutex::new(addr),
            policy,
            pool: Mutex::new(Vec::new()),
            next_req: AtomicU64::new(1),
            ever_connected: AtomicBool::new(false),
            jitter_state: AtomicU64::new(
                0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(site.raw()) + 1),
            ),
            sheds: AtomicU64::new(0),
            obs,
        }
    }

    /// How many requests the site answered with a load-shed
    /// (`BufferExhausted`) since this client was created.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Record one load-shed answer: counted and traced so backpressure is
    /// attributable per transaction in `explain --events`.
    fn note_shed(&self, gtx: Option<amc_types::GlobalTxnId>) {
        self.sheds.fetch_add(1, Ordering::Relaxed);
        self.obs.emit(
            gtx,
            SiteId::CENTRAL,
            EventKind::RpcShed {
                to: self.site,
                attempt: 1,
            },
        );
    }

    /// Next jitter word (SplitMix64).
    fn jitter_word(&self) -> u64 {
        let x = self
            .jitter_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The site this client fronts.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Idle pooled connections (checked in, not currently in flight).
    pub fn pooled_connections(&self) -> usize {
        self.pool.lock().len()
    }

    /// Point the client at a new address (a restarted site may come back
    /// on a different port). Pooled connections to the old address are
    /// dropped.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock() = addr;
        self.pool.lock().clear();
    }

    /// Send one protocol message and wait for the site's reply.
    pub fn call(&self, payload: Payload) -> AmcResult<Payload> {
        let gtx = payload.gtx();
        let label = payload.label();
        let reply = self.with_retries(|req_id| Frame::Request {
            req_id,
            payload: payload.clone(),
        })?;
        match reply {
            Frame::Reply { payload, .. } => {
                self.obs.emit(
                    Some(gtx),
                    SiteId::CENTRAL,
                    EventKind::MsgDeliver {
                        label: payload.label(),
                        from: self.site,
                    },
                );
                Ok(payload)
            }
            Frame::ErrorReply { error, .. } => {
                if matches!(error, AmcError::BufferExhausted) {
                    self.note_shed(Some(gtx));
                }
                Err(error)
            }
            other => Err(AmcError::Protocol(format!(
                "site answered {label} with a non-protocol frame {other:?}"
            ))),
        }
    }

    /// Send one admin request and wait for the site's reply.
    pub fn admin(&self, req: AdminRequest) -> AmcResult<AdminReply> {
        let reply = self.with_retries(|req_id| Frame::AdminRequest {
            req_id,
            req: req.clone(),
        })?;
        match reply {
            Frame::AdminReply { reply, .. } => Ok(reply),
            Frame::ErrorReply { error, .. } => {
                if matches!(error, AmcError::BufferExhausted) {
                    self.note_shed(None);
                }
                Err(error)
            }
            other => Err(AmcError::Protocol(format!(
                "site answered admin with a non-admin frame {other:?}"
            ))),
        }
    }

    /// Run the attempt/backoff loop around [`RpcClient::roundtrip`].
    fn with_retries(&self, make_frame: impl Fn(u64) -> Frame) -> AmcResult<Frame> {
        for attempt in 1..=self.policy.max_attempts {
            let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
            let frame = make_frame(req_id);
            // Retries of a protocol message carry the transaction they
            // are retrying for, so a trace can attribute the retry storm
            // to the right transaction (admin retries have none).
            let gtx = match &frame {
                Frame::Request { payload, .. } => Some(payload.gtx()),
                _ => None,
            };
            match self.roundtrip(&frame) {
                Ok(reply) => return Ok(reply),
                Err(_) if attempt < self.policy.max_attempts => {
                    self.obs.emit(
                        gtx,
                        SiteId::CENTRAL,
                        EventKind::RpcRetry {
                            to: self.site,
                            attempt,
                        },
                    );
                    std::thread::sleep(RetryPolicy::jittered(
                        self.policy.backoff_after(attempt),
                        self.jitter_word(),
                    ));
                }
                Err(_) => break,
            }
        }
        Err(AmcError::SiteDown(self.site))
    }

    /// One attempt: check out (or dial) a connection, write the frame,
    /// read the matching reply. Any failure discards the connection.
    fn roundtrip(&self, frame: &Frame) -> Result<Frame, ()> {
        let mut conn = match self.pool.lock().pop() {
            Some(c) => c,
            None => self.dial()?,
        };
        conn.set_read_timeout(Some(self.policy.request_timeout))
            .map_err(|_| ())?;
        conn.set_write_timeout(Some(self.policy.request_timeout))
            .map_err(|_| ())?;
        if let Frame::Request { payload, .. } = frame {
            self.obs.emit(
                Some(payload.gtx()),
                SiteId::CENTRAL,
                EventKind::MsgSend {
                    label: payload.label(),
                    from: SiteId::CENTRAL,
                    to: self.site,
                },
            );
        }
        write_frame(&mut conn, frame).map_err(|_| ())?;
        let reply = read_frame(&mut conn).map_err(|_| ())?;
        if reply.req_id() != frame.req_id() {
            // A stale reply can only come from a connection we should
            // have discarded; never trust it.
            return Err(());
        }
        self.pool.lock().push(conn);
        Ok(reply)
    }

    fn dial(&self) -> Result<TcpStream, ()> {
        let addr = *self.addr.lock();
        let conn =
            TcpStream::connect_timeout(&addr, self.policy.connect_timeout).map_err(|_| ())?;
        let _ = conn.set_nodelay(true);
        if self.ever_connected.swap(true, Ordering::Relaxed) {
            self.obs.emit(
                None,
                SiteId::CENTRAL,
                EventKind::RpcReconnect { to: self.site },
            );
        }
        Ok(conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(100),
            ..RetryPolicy::default()
        };
        assert_eq!(p.backoff_after(1), Duration::from_millis(10));
        assert_eq!(p.backoff_after(2), Duration::from_millis(20));
        assert_eq!(p.backoff_after(3), Duration::from_millis(40));
        assert_eq!(p.backoff_after(4), Duration::from_millis(80));
        assert_eq!(p.backoff_after(5), Duration::from_millis(100));
        assert_eq!(p.backoff_after(30), Duration::from_millis(100));
    }

    #[test]
    fn jitter_stays_in_the_equal_jitter_band() {
        let d = Duration::from_millis(100);
        for r in [0u64, 1, 49, 50, 51, 99, u64::MAX, 0xDEAD_BEEF] {
            let j = RetryPolicy::jittered(d, r);
            assert!(j >= d / 2 && j <= d, "{j:?} outside [{:?}, {d:?}]", d / 2);
        }
        // Degenerate envelopes pass through unchanged.
        assert_eq!(RetryPolicy::jittered(Duration::ZERO, 7), Duration::ZERO);
        assert_eq!(
            RetryPolicy::jittered(Duration::from_nanos(1), 7),
            Duration::from_nanos(1)
        );
    }

    #[test]
    fn jitter_words_differ_across_draws_and_clients() {
        let addr = "127.0.0.1:1".parse().unwrap();
        let a = RpcClient::new(
            SiteId::new(1),
            addr,
            RetryPolicy::default(),
            ObsSink::disabled(),
        );
        let b = RpcClient::new(
            SiteId::new(2),
            addr,
            RetryPolicy::default(),
            ObsSink::disabled(),
        );
        assert_ne!(a.jitter_word(), a.jitter_word());
        assert_ne!(a.jitter_word(), b.jitter_word());
    }

    #[test]
    fn unreachable_site_is_down_after_bounded_attempts() {
        // A port nothing listens on: every attempt fails to connect, and
        // the client gives up with SiteDown after max_attempts.
        let policy = RetryPolicy {
            connect_timeout: Duration::from_millis(50),
            request_timeout: Duration::from_millis(50),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
        };
        // Bind-then-drop to get a port that is closed right now.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let client = RpcClient::new(SiteId::new(1), addr, policy, ObsSink::disabled());
        let err = client
            .call(Payload::Prepare {
                gtx: amc_types::GlobalTxnId::new(1),
            })
            .unwrap_err();
        assert!(matches!(err, AmcError::SiteDown(s) if s == SiteId::new(1)));
    }
}
