//! The multiplexed, pipelining RPC client.
//!
//! Where [`RpcClient`](crate::RpcClient) checks a whole connection out
//! of a pool per request — N concurrent requests need N sockets — a
//! [`MuxClient`] shares **one** connection among every caller. Each
//! request is tagged with a fresh id and written to the shared socket;
//! a dedicated reader thread decodes replies incrementally (through a
//! [`FrameBuffer`], so partial frames survive read-timeout ticks) and
//! completes whichever caller's id each reply names — in whatever order
//! the server finished them. That is the client half of pipelining: many
//! requests in flight on one stream, out-of-order completion, no
//! head-of-line coupling between callers.
//!
//! Failure shape matches the pooled client: a request that cannot be
//! delivered or answered inside the deadline counts one attempt, the
//! connection is torn down (failing *every* pending request, each of
//! which retries independently), and the next attempt redials. Retries
//! are safe for the same reason they always were: every manager handler
//! is idempotent.

use crate::client::RetryPolicy;
use crate::wire::{write_frame, Frame, FrameBuffer};
use amc_net::transport::{AdminReply, AdminRequest};
use amc_net::Payload;
use amc_obs::{EventKind, ObsSink};
use amc_types::{AmcError, AmcResult, SiteId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::Read as _;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often the reader thread's blocked read wakes to check for
/// shutdown.
const READ_TICK: Duration = Duration::from_millis(100);

/// One caller's parking spot: its own mutex + condvar, so completing a
/// reply wakes exactly that caller — never the whole herd of waiters.
struct Slot {
    reply: Mutex<Option<Frame>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot {
            reply: Mutex::new(None),
            cv: Condvar::new(),
        })
    }
}

/// One live multiplexed connection: the shared write half, the pending
/// table the reader thread completes into, and the reader itself.
struct Channel {
    /// Writers serialize frame writes through this lock; a frame is
    /// written atomically, so interleaved callers never corrupt framing.
    writer: Mutex<TcpStream>,
    /// `req_id` → the caller waiting for that reply.
    pending: Mutex<HashMap<u64, Arc<Slot>>>,
    /// The reader saw EOF/garbage/reset: nothing further will complete.
    dead: AtomicBool,
    stop: AtomicBool,
}

impl Channel {
    /// Kill the channel and wake every waiter so they can fail fast.
    fn poison(&self) {
        self.dead.store(true, Ordering::SeqCst);
        for (_, slot) in self.pending.lock().drain() {
            // Lock-then-notify: the waiter either holds the slot lock
            // (and will observe `dead` on its next check) or is parked
            // in `wait_for` (and this wakes it).
            let _guard = slot.reply.lock();
            slot.cv.notify_one();
        }
    }
}

/// Reader thread: pump bytes into a [`FrameBuffer`], route each decoded
/// frame to its pending slot by request id.
fn reader_loop(mut stream: TcpStream, chan: Arc<Channel>) {
    if stream.set_read_timeout(Some(READ_TICK)).is_err() {
        chan.poison();
        return;
    }
    let mut buf = FrameBuffer::new();
    let mut chunk = [0u8; 64 * 1024];
    loop {
        if chan.stop.load(Ordering::SeqCst) {
            chan.poison();
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                chan.poison();
                return;
            }
            Ok(n) => buf.extend(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut
                    || e.kind() == std::io::ErrorKind::Interrupted =>
            {
                continue
            }
            Err(_) => {
                chan.poison();
                return;
            }
        }
        loop {
            match buf.next_frame() {
                Ok(Some(frame)) => {
                    // An id nobody waits for is a reply whose caller
                    // already timed out and withdrew: drop it.
                    let slot = chan.pending.lock().remove(&frame.req_id());
                    if let Some(slot) = slot {
                        // Notify while holding the slot lock so the
                        // caller cannot slip into `wait_for` between the
                        // fill and the wakeup.
                        let mut reply = slot.reply.lock();
                        *reply = Some(frame);
                        slot.cv.notify_one();
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    chan.poison();
                    return;
                }
            }
        }
    }
}

/// A multiplexed pipelining client for one site.
///
/// Cheap to clone-share via `Arc`; any number of threads may
/// [`MuxClient::call`] concurrently and their requests share one
/// connection.
pub struct MuxClient {
    site: SiteId,
    addr: Mutex<SocketAddr>,
    policy: RetryPolicy,
    /// The current channel, lazily (re)dialed. Dead channels are
    /// replaced on the next call.
    chan: Mutex<Option<Arc<Channel>>>,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
    next_req: AtomicU64,
    ever_connected: AtomicBool,
    jitter_state: AtomicU64,
    sheds: AtomicU64,
    obs: ObsSink,
}

impl MuxClient {
    /// A client for `site` at `addr`. No connection is made until the
    /// first call.
    pub fn new(site: SiteId, addr: SocketAddr, policy: RetryPolicy, obs: ObsSink) -> Self {
        MuxClient {
            site,
            addr: Mutex::new(addr),
            policy,
            chan: Mutex::new(None),
            reader: Mutex::new(None),
            next_req: AtomicU64::new(1),
            ever_connected: AtomicBool::new(false),
            jitter_state: AtomicU64::new(
                0xD1B5_4A32_D192_ED03u64.wrapping_mul(u64::from(site.raw()) + 1),
            ),
            sheds: AtomicU64::new(0),
            obs,
        }
    }

    /// The site this client fronts.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// How many requests the site answered with a load-shed
    /// (`BufferExhausted`) since this client was created — retried and
    /// terminal sheds both count.
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Point the client at a new address; the current channel (if any)
    /// is torn down.
    pub fn set_addr(&self, addr: SocketAddr) {
        *self.addr.lock() = addr;
        if let Some(chan) = self.chan.lock().take() {
            chan.stop.store(true, Ordering::SeqCst);
            chan.poison();
        }
    }

    fn jitter_word(&self) -> u64 {
        let x = self
            .jitter_state
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Send one protocol message and wait for the site's reply.
    pub fn call(&self, payload: Payload) -> AmcResult<Payload> {
        let gtx = payload.gtx();
        let label = payload.label();
        let reply = self.with_retries(|req_id| Frame::Request {
            req_id,
            payload: payload.clone(),
        })?;
        match reply {
            Frame::Reply { payload, .. } => {
                self.obs.emit(
                    Some(gtx),
                    SiteId::CENTRAL,
                    EventKind::MsgDeliver {
                        label: payload.label(),
                        from: self.site,
                    },
                );
                Ok(payload)
            }
            Frame::ErrorReply { error, .. } => Err(error),
            other => Err(AmcError::Protocol(format!(
                "site answered {label} with a non-protocol frame {other:?}"
            ))),
        }
    }

    /// Send one admin request and wait for the site's reply.
    pub fn admin(&self, req: AdminRequest) -> AmcResult<AdminReply> {
        let reply = self.with_retries(|req_id| Frame::AdminRequest {
            req_id,
            req: req.clone(),
        })?;
        match reply {
            Frame::AdminReply { reply, .. } => Ok(reply),
            Frame::ErrorReply { error, .. } => Err(error),
            other => Err(AmcError::Protocol(format!(
                "site answered admin with a non-admin frame {other:?}"
            ))),
        }
    }

    fn with_retries(&self, make_frame: impl Fn(u64) -> Frame) -> AmcResult<Frame> {
        for attempt in 1..=self.policy.max_attempts {
            let req_id = self.next_req.fetch_add(1, Ordering::Relaxed);
            let frame = make_frame(req_id);
            let gtx = match &frame {
                Frame::Request { payload, .. } => Some(payload.gtx()),
                _ => None,
            };
            match self.one_attempt(&frame) {
                Ok(reply) => return Ok(reply),
                // The server shedding load is an answer, not a transport
                // failure — but it IS retryable: back off and try again
                // rather than bubbling an overload spike up as an abort.
                // Every shed is counted and traced distinctly from a
                // transport retry so backpressure stays observable.
                Err(Some(AmcError::BufferExhausted)) => {
                    self.sheds.fetch_add(1, Ordering::Relaxed);
                    self.obs.emit(
                        gtx,
                        SiteId::CENTRAL,
                        EventKind::RpcShed {
                            to: self.site,
                            attempt,
                        },
                    );
                    if attempt == self.policy.max_attempts {
                        return Err(AmcError::BufferExhausted);
                    }
                    std::thread::sleep(RetryPolicy::jittered(
                        self.policy.backoff_after(attempt),
                        self.jitter_word(),
                    ));
                }
                Err(None) if attempt < self.policy.max_attempts => {
                    self.obs.emit(
                        gtx,
                        SiteId::CENTRAL,
                        EventKind::RpcRetry {
                            to: self.site,
                            attempt,
                        },
                    );
                    std::thread::sleep(RetryPolicy::jittered(
                        self.policy.backoff_after(attempt),
                        self.jitter_word(),
                    ));
                }
                Err(Some(err)) => return Err(err),
                Err(None) => break,
            }
        }
        Err(AmcError::SiteDown(self.site))
    }

    /// One attempt over the shared channel. `Err(None)` is a transport
    /// failure (retry, redial); `Err(Some(e))` is the site's answer.
    fn one_attempt(&self, frame: &Frame) -> Result<Frame, Option<AmcError>> {
        let chan = self.channel().ok_or(None)?;
        let req_id = frame.req_id();
        let slot = Slot::new();
        chan.pending.lock().insert(req_id, Arc::clone(&slot));
        if let Frame::Request { payload, .. } = frame {
            self.obs.emit(
                Some(payload.gtx()),
                SiteId::CENTRAL,
                EventKind::MsgSend {
                    label: payload.label(),
                    from: SiteId::CENTRAL,
                    to: self.site,
                },
            );
        }
        {
            let mut writer = chan.writer.lock();
            if write_frame(&mut *writer, frame).is_err() {
                drop(writer);
                chan.pending.lock().remove(&req_id);
                self.discard(&chan);
                return Err(None);
            }
        }
        let deadline = Instant::now() + self.policy.request_timeout;
        let mut reply = slot.reply.lock();
        loop {
            if let Some(frame) = reply.take() {
                return match frame {
                    Frame::ErrorReply { error, .. } => Err(Some(error)),
                    other => Ok(other),
                };
            }
            if chan.dead.load(Ordering::SeqCst) {
                drop(reply);
                chan.pending.lock().remove(&req_id);
                self.discard(&chan);
                return Err(None);
            }
            let now = Instant::now();
            if now >= deadline {
                // Withdraw only this request: the connection and every
                // other pending request stay healthy. A late reply to
                // this id is dropped by the reader.
                drop(reply);
                if chan.pending.lock().remove(&req_id).is_some() {
                    return Err(None);
                }
                // The withdraw lost a race: this id is no longer pending
                // because the reader (or poison) already claimed it. The
                // reader fills the slot right after unpending, so the
                // reply is ours — reporting a timeout here would discard
                // an answer that arrived in time and retry a request the
                // site already served.
                reply = slot.reply.lock();
                loop {
                    if let Some(frame) = reply.take() {
                        return match frame {
                            Frame::ErrorReply { error, .. } => Err(Some(error)),
                            other => Ok(other),
                        };
                    }
                    if chan.dead.load(Ordering::SeqCst) {
                        // Poison drained the table without a fill.
                        drop(reply);
                        self.discard(&chan);
                        return Err(None);
                    }
                    slot.cv.wait_for(&mut reply, READ_TICK);
                }
            }
            slot.cv.wait_for(&mut reply, deadline - now);
        }
    }

    /// The live channel, dialing a fresh one if there is none or the
    /// current one is dead.
    fn channel(&self) -> Option<Arc<Channel>> {
        let mut slot = self.chan.lock();
        if let Some(chan) = slot.as_ref() {
            if !chan.dead.load(Ordering::SeqCst) {
                return Some(Arc::clone(chan));
            }
        }
        // (Re)dial. Join the previous reader first so dead readers don't
        // pile up across reconnects.
        if let Some(h) = self.reader.lock().take() {
            let _ = h.join();
        }
        let addr = *self.addr.lock();
        let stream = TcpStream::connect_timeout(&addr, self.policy.connect_timeout).ok()?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().ok()?;
        if self.ever_connected.swap(true, Ordering::Relaxed) {
            self.obs.emit(
                None,
                SiteId::CENTRAL,
                EventKind::RpcReconnect { to: self.site },
            );
        }
        let chan = Arc::new(Channel {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            dead: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });
        let reader_chan = Arc::clone(&chan);
        *self.reader.lock() = Some(std::thread::spawn(move || {
            reader_loop(read_half, reader_chan);
        }));
        *slot = Some(Arc::clone(&chan));
        Some(chan)
    }

    /// Drop `chan` if it is still the current channel (a racing caller
    /// may already have redialed).
    fn discard(&self, chan: &Arc<Channel>) {
        chan.poison();
        let mut slot = self.chan.lock();
        if let Some(current) = slot.as_ref() {
            if Arc::ptr_eq(current, chan) {
                *slot = None;
            }
        }
    }
}

impl Drop for MuxClient {
    fn drop(&mut self) {
        if let Some(chan) = self.chan.lock().take() {
            chan.stop.store(true, Ordering::SeqCst);
            chan.poison();
        }
        if let Some(h) = self.reader.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// The timeout-withdraw vs reader-completion race, replayed by hand:
    /// the reader has already pulled the caller's id out of `pending`
    /// (so the withdraw at the deadline finds nothing) but the slot fill
    /// lands only after the deadline — exactly what happens when the
    /// reply's bytes arrive while the caller holds the slot lock for its
    /// final deadline check. The caller must claim the reply rather than
    /// report a timeout for a request the site answered.
    #[test]
    fn timed_out_caller_claims_a_reply_the_reader_already_unpended() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let policy = RetryPolicy {
            request_timeout: Duration::from_millis(50),
            max_attempts: 1,
            ..RetryPolicy::default()
        };
        let client = Arc::new(MuxClient::new(
            SiteId::new(1),
            addr,
            policy,
            ObsSink::disabled(),
        ));
        let caller = {
            let client = Arc::clone(&client);
            std::thread::spawn(move || client.admin(AdminRequest::Ping))
        };
        // Act as the server: accept and read the request, which proves
        // the caller's slot is registered (insert happens before write).
        let (mut conn, _) = listener.accept().unwrap();
        let frame = crate::wire::read_frame(&mut conn).unwrap();
        let req_id = frame.req_id();
        // The reader's winning interleaving: unpend before the caller's
        // deadline, fill only after it.
        let chan = client.chan.lock().clone().expect("channel dialed");
        let slot = chan
            .pending
            .lock()
            .remove(&req_id)
            .expect("caller is pending");
        std::thread::sleep(Duration::from_millis(120));
        {
            let mut reply = slot.reply.lock();
            *reply = Some(Frame::AdminReply {
                req_id,
                reply: AdminReply::Pong,
            });
            slot.cv.notify_one();
        }
        let got = caller.join().unwrap();
        assert_eq!(got.unwrap(), AdminReply::Pong);
    }

    /// Load-shed replies are retried away, but never invisibly: every
    /// `BufferExhausted` answer bumps the client's shed counter and lands
    /// in the observability log as a distinct `rpc-shed` event.
    #[test]
    fn shed_replies_are_counted_and_traced_even_when_the_retry_succeeds() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let policy = RetryPolicy {
            request_timeout: Duration::from_millis(500),
            max_attempts: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let obs = ObsSink::enabled(64);
        let client = Arc::new(MuxClient::new(SiteId::new(1), addr, policy, obs.clone()));
        let caller = {
            let client = Arc::clone(&client);
            std::thread::spawn(move || client.admin(AdminRequest::Ping))
        };
        // Act as the server on one persistent connection: shed the first
        // two attempts, answer the third.
        let (mut conn, _) = listener.accept().unwrap();
        for attempt in 0..3 {
            let frame = crate::wire::read_frame(&mut conn).unwrap();
            let req_id = frame.req_id();
            let reply = if attempt < 2 {
                Frame::ErrorReply {
                    req_id,
                    error: AmcError::BufferExhausted,
                }
            } else {
                Frame::AdminReply {
                    req_id,
                    reply: AdminReply::Pong,
                }
            };
            crate::wire::write_frame(&mut conn, &reply).unwrap();
        }
        let got = caller.join().unwrap();
        assert_eq!(got.unwrap(), AdminReply::Pong);
        assert_eq!(client.sheds(), 2, "both shed answers must be counted");
        let shed_events = obs
            .snapshot()
            .events()
            .filter(|e| matches!(e.kind, EventKind::RpcShed { .. }))
            .count();
        assert_eq!(shed_events, 2, "each shed must be traced as rpc-shed");
    }
}
