//! The parameterised workload generator.

use crate::program::{object, GlobalProgram};
use amc_sim::SimRng;
use amc_types::{ObjectId, Operation, SiteId, Value};
use std::collections::BTreeMap;

/// Operation mix (fractions must sum to ≤ 1; the remainder becomes reads).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of plain writes (non-commuting).
    pub write: f64,
    /// Fraction of increments (commuting).
    pub increment: f64,
    /// Fraction of escrow reserves (self-commuting, bound-checked).
    pub reserve: f64,
}

impl OpMix {
    /// All increments — the Fig. 8 / bank-transfer regime.
    pub const INCREMENT_HEAVY: OpMix = OpMix {
        write: 0.0,
        increment: 0.8,
        reserve: 0.0,
    };
    /// Classic read/write mix with no commutative structure.
    pub const WRITE_HEAVY: OpMix = OpMix {
        write: 0.5,
        increment: 0.0,
        reserve: 0.0,
    };
    /// A balanced mix.
    pub const MIXED: OpMix = OpMix {
        write: 0.2,
        increment: 0.4,
        reserve: 0.0,
    };
    /// Order processing: mostly reserves plus restocks.
    pub const ESCROW_HEAVY: OpMix = OpMix {
        write: 0.0,
        increment: 0.2,
        reserve: 0.6,
    };
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of local database sites (1-based ids).
    pub sites: u32,
    /// Objects pre-loaded per site.
    pub objects_per_site: u64,
    /// Zipf skew over object indices (0 = uniform, 0.99 = hot).
    pub zipf_theta: f64,
    /// Operations per global transaction (split across sites).
    pub ops_per_txn: usize,
    /// Participating sites per transaction (clamped to `sites`).
    pub sites_per_txn: u32,
    /// Operation mix.
    pub mix: OpMix,
    /// Probability a generated program aborts through its own logic.
    pub intended_abort_prob: f64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            sites: 3,
            objects_per_site: 1000,
            zipf_theta: 0.0,
            ops_per_txn: 6,
            sites_per_txn: 2,
            mix: OpMix::MIXED,
            intended_abort_prob: 0.0,
        }
    }
}

impl WorkloadSpec {
    /// The initial data every site must be loaded with: `objects_per_site`
    /// counters, each starting at 100.
    pub fn initial_data(&self, site: SiteId) -> Vec<(ObjectId, Value)> {
        (0..self.objects_per_site)
            .map(|i| (object(site, i), Value::counter(100)))
            .collect()
    }

    /// Initial state across all sites merged (for the equivalence oracle).
    pub fn initial_state(&self) -> BTreeMap<ObjectId, Value> {
        (1..=self.sites)
            .flat_map(|s| self.initial_data(SiteId::new(s)))
            .collect()
    }
}

/// Stateful generator.
#[derive(Debug)]
pub struct WorkloadGen {
    spec: WorkloadSpec,
    rng: SimRng,
}

impl WorkloadGen {
    /// Generator over `spec`, seeded deterministically.
    pub fn new(spec: WorkloadSpec, seed: u64) -> Self {
        WorkloadGen {
            spec,
            rng: SimRng::new(seed),
        }
    }

    /// The spec in use.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Draw a (possibly hot) object index.
    fn draw_index(&mut self) -> u64 {
        self.rng
            .zipf(self.spec.objects_per_site, self.spec.zipf_theta)
    }

    /// Generate the next global transaction program.
    pub fn next_program(&mut self) -> GlobalProgram {
        let fanout = self.spec.sites_per_txn.clamp(1, self.spec.sites);
        // Choose distinct participant sites.
        let mut sites: Vec<SiteId> = Vec::with_capacity(fanout as usize);
        while sites.len() < fanout as usize {
            let s = SiteId::new(1 + self.rng.below(u64::from(self.spec.sites)) as u32);
            if !sites.contains(&s) {
                sites.push(s);
            }
        }
        sites.sort();

        let mut per_site: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();
        for i in 0..self.spec.ops_per_txn {
            let site = sites[i % sites.len()];
            let obj = object(site, self.draw_index());
            let roll = self.rng.unit();
            let mix = self.spec.mix;
            let op = if roll < mix.write {
                Operation::Write {
                    obj,
                    value: Value::counter(self.rng.below(1_000_000) as i64),
                }
            } else if roll < mix.write + mix.increment {
                Operation::Increment {
                    obj,
                    delta: 1 + self.rng.below(10) as i64,
                }
            } else if roll < mix.write + mix.increment + mix.reserve {
                Operation::Reserve {
                    obj,
                    amount: 1 + self.rng.below(3),
                }
            } else {
                Operation::Read { obj }
            };
            per_site.entry(site).or_default().push(op);
        }

        let intends_abort = self.rng.chance(self.spec.intended_abort_prob);
        if intends_abort {
            // Transaction logic that must fail: read an object that is
            // never created (index beyond the loaded range).
            let site = sites[0];
            per_site.entry(site).or_default().push(Operation::Read {
                obj: object(site, self.spec.objects_per_site + 1_000_000),
            });
        }
        GlobalProgram {
            per_site,
            intends_abort,
        }
    }

    /// Generate a batch.
    pub fn programs(&mut self, n: usize) -> Vec<GlobalProgram> {
        (0..n).map(|_| self.next_program()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{site_of_object, OBJECTS_PER_SITE_STRIDE};

    #[test]
    fn programs_respect_placement_and_fanout() {
        let mut g = WorkloadGen::new(
            WorkloadSpec {
                sites: 4,
                sites_per_txn: 2,
                ops_per_txn: 8,
                ..WorkloadSpec::default()
            },
            42,
        );
        for _ in 0..100 {
            let p = g.next_program();
            p.check_placement().unwrap();
            assert!(p.sites().len() <= 2);
            assert!(p.op_count() >= 8);
            for s in p.sites() {
                assert!(s.raw() >= 1 && s.raw() <= 4);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        let mut a = WorkloadGen::new(spec.clone(), 7);
        let mut b = WorkloadGen::new(spec, 7);
        for _ in 0..50 {
            assert_eq!(a.next_program(), b.next_program());
        }
    }

    #[test]
    fn intended_abort_rate_is_respected() {
        let mut g = WorkloadGen::new(
            WorkloadSpec {
                intended_abort_prob: 0.3,
                ..WorkloadSpec::default()
            },
            11,
        );
        let n = 2000;
        let aborts = g.programs(n).iter().filter(|p| p.intends_abort).count();
        let rate = aborts as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn abort_programs_touch_a_missing_object() {
        let mut g = WorkloadGen::new(
            WorkloadSpec {
                intended_abort_prob: 1.0,
                ..WorkloadSpec::default()
            },
            3,
        );
        let p = g.next_program();
        assert!(p.intends_abort);
        let missing = p.merged_ops().iter().any(|op| {
            matches!(op, Operation::Read { obj }
                if obj.raw() % crate::program::OBJECTS_PER_SITE_STRIDE >= 1000)
        });
        assert!(missing);
    }

    #[test]
    fn skew_concentrates_accesses() {
        let mut hot = WorkloadGen::new(
            WorkloadSpec {
                zipf_theta: 0.99,
                sites: 1,
                sites_per_txn: 1,
                objects_per_site: 1000,
                ..WorkloadSpec::default()
            },
            5,
        );
        let mut head = 0usize;
        let mut total = 0usize;
        for p in hot.programs(500) {
            for op in p.merged_ops() {
                total += 1;
                if op.object().raw() % OBJECTS_PER_SITE_STRIDE < 20 {
                    head += 1;
                }
            }
        }
        assert!(head * 3 > total, "hot head got {head}/{total} accesses");
        let _ = site_of_object(object(SiteId::new(1), 0));
    }

    #[test]
    fn initial_state_covers_all_sites() {
        let spec = WorkloadSpec {
            sites: 3,
            objects_per_site: 10,
            ..WorkloadSpec::default()
        };
        let state = spec.initial_state();
        assert_eq!(state.len(), 30);
        assert!(state.contains_key(&object(SiteId::new(3), 9)));
    }
}
