//! Balanced-transfer programs: the invariant-preserving workload.
//!
//! Unlike the generic generator (whose increments are independent draws),
//! a transfer moves `amount` from one site's account to another's, so the
//! federation-wide total is invariant — the property the bank example and
//! the conservation tests audit. A configurable fraction of transfers name
//! a non-existent beneficiary, which aborts the transaction through its own
//! logic (the intended-abort path of §3.2/§3.3).

use crate::program::{object, GlobalProgram};
use amc_sim::SimRng;
use amc_types::{Operation, SiteId};
use std::collections::BTreeMap;

/// Parameters for a balanced-transfer stream.
#[derive(Debug, Clone)]
pub struct TransferSpec {
    /// Number of local sites (1-based ids).
    pub sites: u32,
    /// Accounts per site.
    pub accounts_per_site: u64,
    /// Zipf skew over account indices.
    pub zipf_theta: f64,
    /// Maximum transfer amount (drawn uniformly from `1..=max`).
    pub max_amount: i64,
    /// Probability the beneficiary account does not exist (intended abort).
    pub bad_beneficiary_prob: f64,
}

impl Default for TransferSpec {
    fn default() -> Self {
        TransferSpec {
            sites: 3,
            accounts_per_site: 256,
            zipf_theta: 0.6,
            max_amount: 50,
            bad_beneficiary_prob: 0.0,
        }
    }
}

/// Generator of balanced transfers.
#[derive(Debug)]
pub struct TransferGen {
    spec: TransferSpec,
    rng: SimRng,
}

impl TransferGen {
    /// Seeded generator.
    pub fn new(spec: TransferSpec, seed: u64) -> Self {
        assert!(spec.sites >= 2, "a transfer needs two sites");
        TransferGen {
            spec,
            rng: SimRng::new(seed),
        }
    }

    /// Draw one transfer program.
    pub fn next_program(&mut self) -> GlobalProgram {
        let sites = u64::from(self.spec.sites);
        let from = SiteId::new(1 + self.rng.below(sites) as u32);
        let to = loop {
            let t = SiteId::new(1 + self.rng.below(sites) as u32);
            if t != from {
                break t;
            }
        };
        let amount = 1 + self.rng.below(self.spec.max_amount.max(1) as u64) as i64;
        let intends_abort = self.rng.chance(self.spec.bad_beneficiary_prob);
        let to_account = if intends_abort {
            // Outside the loaded range: the increment fails with NotFound.
            object(to, self.spec.accounts_per_site + 1_000)
        } else {
            object(
                to,
                self.rng
                    .zipf(self.spec.accounts_per_site, self.spec.zipf_theta),
            )
        };
        let from_account = object(
            from,
            self.rng
                .zipf(self.spec.accounts_per_site, self.spec.zipf_theta),
        );
        let per_site = BTreeMap::from([
            (
                from,
                vec![Operation::Increment {
                    obj: from_account,
                    delta: -amount,
                }],
            ),
            (
                to,
                vec![Operation::Increment {
                    obj: to_account,
                    delta: amount,
                }],
            ),
        ]);
        GlobalProgram {
            per_site,
            intends_abort,
        }
    }

    /// Draw a batch.
    pub fn programs(&mut self, n: usize) -> Vec<GlobalProgram> {
        (0..n).map(|_| self.next_program()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::Operation;

    #[test]
    fn transfers_are_balanced() {
        let mut g = TransferGen::new(TransferSpec::default(), 9);
        for p in g.programs(200) {
            if p.intends_abort {
                continue;
            }
            let total: i64 = p
                .merged_ops()
                .iter()
                .map(|op| match op {
                    Operation::Increment { delta, .. } => *delta,
                    _ => panic!("transfers are increments only"),
                })
                .sum();
            assert_eq!(total, 0, "unbalanced transfer {p:?}");
            assert_eq!(p.sites().len(), 2);
            p.check_placement().unwrap();
        }
    }

    #[test]
    fn bad_beneficiary_rate_is_respected() {
        let mut g = TransferGen::new(
            TransferSpec {
                bad_beneficiary_prob: 0.25,
                ..TransferSpec::default()
            },
            4,
        );
        let n = 2000;
        let bad = g.programs(n).iter().filter(|p| p.intends_abort).count();
        let rate = bad as f64 / n as f64;
        assert!((0.2..0.3).contains(&rate), "rate {rate}");
    }

    #[test]
    fn determinism() {
        let a: Vec<_> = TransferGen::new(TransferSpec::default(), 7).programs(20);
        let b: Vec<_> = TransferGen::new(TransferSpec::default(), 7).programs(20);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "two sites")]
    fn single_site_rejected() {
        TransferGen::new(
            TransferSpec {
                sites: 1,
                ..TransferSpec::default()
            },
            1,
        );
    }
}
