//! Global transaction programs and the object ↔ site naming scheme.
//!
//! Objects are partitioned across the local databases (each object lives at
//! exactly one site, §2's decomposition): object ids are
//! `site * STRIDE + index`, so both directions of the mapping are O(1) and
//! collision-free, and everything stays far below the reserved marker
//! region.

use amc_types::{ObjectId, Operation, SiteId};
use std::collections::BTreeMap;

/// Id stride per site — supports up to this many objects per site.
pub const OBJECTS_PER_SITE_STRIDE: u64 = 1 << 32;

/// The object with `index` at `site` (sites are 1-based; 0 is the central
/// system which stores no workload data).
pub fn object(site: SiteId, index: u64) -> ObjectId {
    assert!(
        !site.is_central(),
        "central system stores no workload objects"
    );
    assert!(index < OBJECTS_PER_SITE_STRIDE);
    ObjectId::new(u64::from(site.raw()) * OBJECTS_PER_SITE_STRIDE + index)
}

/// The site an object lives at.
pub fn site_of_object(obj: ObjectId) -> SiteId {
    SiteId::new((obj.raw() / OBJECTS_PER_SITE_STRIDE) as u32)
}

/// One global transaction, decomposed by site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalProgram {
    /// The per-site local programs, in submit order.
    pub per_site: BTreeMap<SiteId, Vec<Operation>>,
    /// True when the program is built to abort through its own logic (a
    /// read of a non-existent object at one site).
    pub intends_abort: bool,
}

impl GlobalProgram {
    /// New program from per-site operation lists.
    pub fn new(per_site: BTreeMap<SiteId, Vec<Operation>>) -> Self {
        GlobalProgram {
            per_site,
            intends_abort: false,
        }
    }

    /// The participating sites, ascending.
    pub fn sites(&self) -> Vec<SiteId> {
        self.per_site.keys().copied().collect()
    }

    /// Total operation count.
    pub fn op_count(&self) -> usize {
        self.per_site.values().map(Vec::len).sum()
    }

    /// All operations merged in site order (the canonical replay program
    /// for the equivalence oracle).
    pub fn merged_ops(&self) -> Vec<Operation> {
        self.per_site.values().flatten().copied().collect()
    }

    /// Sanity: every operation is addressed to the site it is filed under.
    pub fn check_placement(&self) -> Result<(), String> {
        for (site, ops) in &self.per_site {
            for op in ops {
                let home = site_of_object(op.object());
                if home != *site {
                    return Err(format!("op {op} on {} filed under {site}", home));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amc_types::Value;

    #[test]
    fn object_site_roundtrip() {
        for s in 1..=5u32 {
            for i in [0u64, 1, 1000, OBJECTS_PER_SITE_STRIDE - 1] {
                let o = object(SiteId::new(s), i);
                assert_eq!(site_of_object(o), SiteId::new(s));
            }
        }
    }

    #[test]
    #[should_panic(expected = "central")]
    fn central_site_has_no_objects() {
        object(SiteId::CENTRAL, 0);
    }

    #[test]
    fn object_ids_stay_below_marker_region() {
        let o = object(SiteId::new(1000), OBJECTS_PER_SITE_STRIDE - 1);
        assert!(o.raw() < (1 << 62));
    }

    #[test]
    fn placement_check_catches_misfiled_ops() {
        let s1 = SiteId::new(1);
        let s2 = SiteId::new(2);
        let mut per_site = BTreeMap::new();
        per_site.insert(
            s1,
            vec![Operation::Read {
                obj: object(s2, 0), // wrong site!
            }],
        );
        let p = GlobalProgram::new(per_site);
        assert!(p.check_placement().is_err());
    }

    #[test]
    fn merged_ops_and_counts() {
        let s1 = SiteId::new(1);
        let s2 = SiteId::new(2);
        let mut per_site = BTreeMap::new();
        per_site.insert(s1, vec![Operation::Read { obj: object(s1, 0) }]);
        per_site.insert(
            s2,
            vec![Operation::Write {
                obj: object(s2, 1),
                value: Value::ZERO,
            }],
        );
        let p = GlobalProgram::new(per_site);
        assert_eq!(p.op_count(), 2);
        assert_eq!(p.sites(), vec![s1, s2]);
        assert_eq!(p.merged_ops().len(), 2);
        p.check_placement().unwrap();
    }
}
