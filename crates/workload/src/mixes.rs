//! The contention-aware workload engine: production-shaped transaction
//! mixes over a seeded Zipfian key stream.
//!
//! The paper's trade-offs (C2: commit-before wins concurrency under
//! contention; C3: commit-after's edge is intended aborts; C4: semantic
//! commutativity beats read/write locking) only separate once skew,
//! contention and transaction *shape* are varied. This module provides the
//! mixes that vary them, one [`MixGen`] per [`MixKind`]:
//!
//! * **transfer** — balanced 2-site money transfers (the uniform baseline
//!   every earlier experiment ran);
//! * **zipf** — the generic read/increment/write mix over a Zipfian hot
//!   set, with a tunable intended-abort rate;
//! * **hotkey** — sum-conserving increment/decrement pairs on a small hot
//!   counter set: pure commutative updates, where MLT's semantic L1 modes
//!   should shine (claim C4 under real skew);
//! * **tpcc-lite** — a `NewOrder`-shaped multi-op/multi-site profile:
//!   5–15 operations over 1–3 sites mixing escrow stock [`Reserve`]s,
//!   balance/ytd increments, an order-record write and item reads;
//! * **read-heavy** — long read-only scans interleaved with short
//!   sum-neutral writer transactions (the analytics-next-to-OLTP shape).
//!
//! **Determinism contract (DESIGN.md §14).** A generator is a pure
//! function of `(kind, spec, seed)`: the program stream is bit-for-bit
//! identical across runs, machines, and runtimes — the DES path, the
//! threaded in-process path, and the networked `amc-loadgen` path all
//! consume the *same* stream for the same seed. [`fingerprint`] hashes a
//! stream into one `u64` so tests can pin that.
//!
//! [`Reserve`]: amc_types::Operation::Reserve

use crate::program::{object, GlobalProgram};
use amc_sim::SimRng;
use amc_types::{Operation, SiteId, Value};
use std::collections::BTreeMap;

/// Which contention-aware mix a [`MixGen`] produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// Balanced 2-site transfers (uniform-ish baseline; theta still
    /// skews the account choice).
    Transfer,
    /// Generic read/increment/write mix over a Zipfian hot set.
    Zipf,
    /// Sum-conserving hot-key increment/decrement counter pairs.
    HotKey,
    /// `NewOrder`-shaped multi-op/multi-site profile with escrow reserves.
    TpccLite,
    /// Long read-only scans interleaved with short writers.
    ReadHeavy,
}

impl MixKind {
    /// Every mix, in table order.
    pub const ALL: [MixKind; 5] = [
        MixKind::Transfer,
        MixKind::Zipf,
        MixKind::HotKey,
        MixKind::TpccLite,
        MixKind::ReadHeavy,
    ];

    /// The flag/report label (`amc-loadgen --workload <label>`).
    pub fn label(self) -> &'static str {
        match self {
            MixKind::Transfer => "transfer",
            MixKind::Zipf => "zipf",
            MixKind::HotKey => "hotkey",
            MixKind::TpccLite => "tpcc-lite",
            MixKind::ReadHeavy => "read-heavy",
        }
    }

    /// Parse a `--workload` flag value.
    pub fn parse(s: &str) -> Option<MixKind> {
        MixKind::ALL.into_iter().find(|k| k.label() == s)
    }

    /// Whether every non-aborting program of this mix preserves the
    /// federation-wide counter sum (the conservation oracle applies).
    pub fn conserves_sum(self) -> bool {
        matches!(
            self,
            MixKind::Transfer | MixKind::HotKey | MixKind::ReadHeavy
        )
    }
}

/// Shared parameters of every mix.
#[derive(Debug, Clone)]
pub struct MixSpec {
    /// Number of local sites (1-based ids).
    pub sites: u32,
    /// Counters pre-loaded per site, each starting at
    /// [`MixSpec::INITIAL_PER_OBJECT`].
    pub objects_per_site: u64,
    /// Zipf skew over key choice (0 = uniform; 0.9–1.2 = hot).
    pub theta: f64,
    /// Probability a program aborts through its own logic (a read of an
    /// object that does not exist — the §3.2/§3.3 intended-abort path).
    pub intended_abort_prob: f64,
    /// Fan-out cap: participating sites per transaction for the
    /// multi-site mixes (clamped to `sites`; tpcc-lite draws 1..=cap).
    pub max_fanout: u32,
}

impl MixSpec {
    /// Every pre-loaded counter starts at this value.
    pub const INITIAL_PER_OBJECT: i64 = 100;

    /// The initial data one site must be loaded with.
    pub fn initial_data(&self, site: SiteId) -> Vec<(amc_types::ObjectId, Value)> {
        (0..self.objects_per_site)
            .map(|i| (object(site, i), Value::counter(Self::INITIAL_PER_OBJECT)))
            .collect()
    }

    /// The federation-wide initial counter sum (for conservation checks).
    pub fn initial_sum(&self) -> i64 {
        i64::from(self.sites) * self.objects_per_site as i64 * Self::INITIAL_PER_OBJECT
    }
}

impl Default for MixSpec {
    fn default() -> Self {
        MixSpec {
            sites: 3,
            objects_per_site: 256,
            theta: 0.6,
            intended_abort_prob: 0.0,
            max_fanout: 3,
        }
    }
}

/// Stateful generator for one [`MixKind`].
///
/// The tpcc-lite profile builder draws 5–15 operations over 1–3 sites per
/// program — escrow stock reserves, balance increments, an order-record
/// write and item reads:
///
/// ```
/// use amc_workload::{MixGen, MixKind, MixSpec};
///
/// let mut gen = MixGen::new(MixKind::TpccLite, MixSpec::default(), 42);
/// for _ in 0..50 {
///     let order = gen.next_program();
///     assert!((5..=15).contains(&order.op_count()), "5–15 ops per NewOrder");
///     assert!((1..=3).contains(&order.sites().len()), "1–3 participating sites");
///     order.check_placement().unwrap();
/// }
///
/// // Pure function of (kind, spec, seed): the stream replays bit for bit.
/// let a = MixGen::new(MixKind::TpccLite, MixSpec::default(), 7).programs(20);
/// let b = MixGen::new(MixKind::TpccLite, MixSpec::default(), 7).programs(20);
/// assert_eq!(a, b);
/// ```
#[derive(Debug)]
pub struct MixGen {
    kind: MixKind,
    spec: MixSpec,
    rng: SimRng,
    /// Monotone program counter — gives the read-heavy mix its
    /// deterministic writer cadence and tpcc-lite its order-slot cursor.
    produced: u64,
}

impl MixGen {
    /// Generator over `spec`, seeded deterministically.
    pub fn new(kind: MixKind, spec: MixSpec, seed: u64) -> Self {
        assert!(spec.sites >= 1, "a federation needs at least one site");
        assert!(spec.objects_per_site >= 8, "mixes need a few objects");
        MixGen {
            kind,
            spec,
            rng: SimRng::new(seed),
            produced: 0,
        }
    }

    /// The mix this generator produces.
    pub fn kind(&self) -> MixKind {
        self.kind
    }

    /// The spec in use.
    pub fn spec(&self) -> &MixSpec {
        &self.spec
    }

    fn draw_site(&mut self) -> SiteId {
        SiteId::new(1 + self.rng.below(u64::from(self.spec.sites)) as u32)
    }

    fn draw_key(&mut self) -> u64 {
        self.rng.zipf(self.spec.objects_per_site, self.spec.theta)
    }

    /// Append the intended-abort trigger when the spec's dice say so: a
    /// read of an object beyond the loaded range, filed at the first
    /// participating site, so the abort travels the transaction's own
    /// logic path.
    fn maybe_poison(&mut self, per_site: &mut BTreeMap<SiteId, Vec<Operation>>) -> bool {
        if !self.rng.chance(self.spec.intended_abort_prob) {
            return false;
        }
        let site = *per_site.keys().next().expect("programs are never empty");
        per_site.entry(site).or_default().push(Operation::Read {
            obj: object(site, self.spec.objects_per_site + 1_000_000),
        });
        true
    }

    /// Generate the next program of the mix.
    pub fn next_program(&mut self) -> GlobalProgram {
        self.produced += 1;
        let mut per_site = match self.kind {
            MixKind::Transfer => self.transfer(),
            MixKind::Zipf => self.zipf_mix(),
            MixKind::HotKey => self.hotkey(),
            MixKind::TpccLite => self.tpcc_lite(),
            MixKind::ReadHeavy => self.read_heavy(),
        };
        let intends_abort = self.maybe_poison(&mut per_site);
        GlobalProgram {
            per_site,
            intends_abort,
        }
    }

    /// Generate a batch.
    pub fn programs(&mut self, n: usize) -> Vec<GlobalProgram> {
        (0..n).map(|_| self.next_program()).collect()
    }

    /// Balanced transfer: `-amount` at one site, `+amount` at another
    /// (same site twice when the federation has only one).
    fn transfer(&mut self) -> BTreeMap<SiteId, Vec<Operation>> {
        let from = self.draw_site();
        let to = if self.spec.sites == 1 {
            from
        } else {
            loop {
                let t = self.draw_site();
                if t != from {
                    break t;
                }
            }
        };
        let amount = 1 + self.rng.below(8) as i64;
        let from_obj = object(from, self.draw_key());
        let to_obj = object(to, self.draw_key());
        let mut per_site: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();
        per_site.entry(from).or_default().push(Operation::Increment {
            obj: from_obj,
            delta: -amount,
        });
        per_site.entry(to).or_default().push(Operation::Increment {
            obj: to_obj,
            delta: amount,
        });
        per_site
    }

    /// Generic skewed mix: 6 ops over up to `max_fanout` sites — 20%
    /// writes, 40% increments, the rest reads.
    fn zipf_mix(&mut self) -> BTreeMap<SiteId, Vec<Operation>> {
        let fanout = self.spec.max_fanout.clamp(1, self.spec.sites).min(2);
        let sites = self.distinct_sites(fanout);
        let mut per_site: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();
        for i in 0..6usize {
            let site = sites[i % sites.len()];
            let obj = object(site, self.draw_key());
            let roll = self.rng.unit();
            let op = if roll < 0.2 {
                Operation::Write {
                    obj,
                    value: Value::counter(self.rng.below(1_000) as i64),
                }
            } else if roll < 0.6 {
                Operation::Increment {
                    obj,
                    delta: 1 + self.rng.below(10) as i64,
                }
            } else {
                Operation::Read { obj }
            };
            per_site.entry(site).or_default().push(op);
        }
        per_site
    }

    /// Hot-key counter pair: `+d` on one hot counter, `-d` on another —
    /// pure commuting increments, federation sum invariant. Three in four
    /// are cross-site (when possible); the rest land both legs on one
    /// site.
    fn hotkey(&mut self) -> BTreeMap<SiteId, Vec<Operation>> {
        let a = self.draw_site();
        let cross = self.spec.sites > 1 && !self.rng.chance(0.25);
        let b = if cross {
            loop {
                let s = self.draw_site();
                if s != a {
                    break s;
                }
            }
        } else {
            a
        };
        let delta = 1 + self.rng.below(5) as i64;
        let up = object(a, self.draw_key());
        let down = object(b, self.draw_key());
        let mut per_site: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();
        per_site
            .entry(a)
            .or_default()
            .push(Operation::Increment { obj: up, delta });
        per_site.entry(b).or_default().push(Operation::Increment {
            obj: down,
            delta: -delta,
        });
        per_site
    }

    /// `NewOrder`-shaped: one customer read + one district-ytd increment
    /// at the home site, then 2–11 order lines — each an escrow stock
    /// [`Operation::Reserve`] preceded (for every third line) by an item
    /// read — spread over 1..=`max_fanout` sites, closed by one
    /// order-record write at the home site. Total 5–15 operations.
    fn tpcc_lite(&mut self) -> BTreeMap<SiteId, Vec<Operation>> {
        let fanout = 1 + self.rng.below(u64::from(self.spec.max_fanout.clamp(1, 3).min(
            self.spec.sites,
        ))) as u32;
        let sites = self.distinct_sites(fanout);
        let home = sites[0];
        let mut per_site: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();

        // Customer read + district ytd increment at the home site.
        let customer = object(home, self.draw_key());
        per_site
            .entry(home)
            .or_default()
            .push(Operation::Read { obj: customer });
        let district = object(home, self.draw_key());
        per_site.entry(home).or_default().push(Operation::Increment {
            obj: district,
            delta: 1 + self.rng.below(20) as i64,
        });

        // 2..=11 order lines: escrow stock reserves at remote warehouses,
        // every third line preceded by an item read. Budget: 2 header ops
        // + lines + reads + 1 order write <= 15.
        let lines = 2 + self.rng.below(8) as usize; // 2..=9
        let mut emitted = 0usize;
        for line in 0..lines {
            if 2 + emitted + 2 >= 15 {
                break;
            }
            let warehouse = sites[self.rng.below(sites.len() as u64) as usize];
            let stock = object(warehouse, self.draw_key());
            if line % 3 == 2 {
                per_site
                    .entry(warehouse)
                    .or_default()
                    .push(Operation::Read { obj: stock });
                emitted += 1;
            }
            per_site.entry(warehouse).or_default().push(Operation::Reserve {
                obj: stock,
                amount: 1 + self.rng.below(3),
            });
            emitted += 1;
        }

        // Order record: overwrite the program's private order slot in the
        // home site's order region (uniform — order slots are not hot).
        let slot = self.rng.below(self.spec.objects_per_site);
        per_site.entry(home).or_default().push(Operation::Write {
            obj: object(home, slot),
            value: Value::counter(self.produced as i64),
        });
        per_site
    }

    /// Read-heavy: every fourth program is a short sum-neutral writer
    /// (one `+d`/`-d` increment pair on one site); the rest are long
    /// read-only scans of 12–24 hot keys over up to two sites.
    fn read_heavy(&mut self) -> BTreeMap<SiteId, Vec<Operation>> {
        if self.produced % 4 == 0 {
            let site = self.draw_site();
            let delta = 1 + self.rng.below(5) as i64;
            let up = object(site, self.draw_key());
            let down = object(site, self.draw_key());
            return BTreeMap::from([(
                site,
                vec![
                    Operation::Increment { obj: up, delta },
                    Operation::Increment {
                        obj: down,
                        delta: -delta,
                    },
                ],
            )]);
        }
        let fanout = 2.min(self.spec.sites);
        let sites = self.distinct_sites(fanout);
        let len = 12 + self.rng.below(13) as usize; // 12..=24
        let mut per_site: BTreeMap<SiteId, Vec<Operation>> = BTreeMap::new();
        for i in 0..len {
            let site = sites[i % sites.len()];
            per_site.entry(site).or_default().push(Operation::Read {
                obj: object(site, self.draw_key()),
            });
        }
        per_site
    }

    /// `n` distinct participant sites, first one first-drawn (the "home"
    /// site of the multi-op mixes).
    fn distinct_sites(&mut self, n: u32) -> Vec<SiteId> {
        let n = n.clamp(1, self.spec.sites) as usize;
        let mut sites = Vec::with_capacity(n);
        while sites.len() < n {
            let s = self.draw_site();
            if !sites.contains(&s) {
                sites.push(s);
            }
        }
        sites
    }
}

/// FNV-1a fingerprint of a program stream — the determinism witness the
/// workload tests pin per `(kind, spec, seed)`. Two streams fingerprint
/// equal iff every program, site assignment and operation matches.
pub fn fingerprint(programs: &[GlobalProgram]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for p in programs {
        eat(&[u8::from(p.intends_abort)]);
        for (site, ops) in &p.per_site {
            eat(&site.raw().to_le_bytes());
            for op in ops {
                eat(op.to_string().as_bytes());
            }
        }
        eat(b"|");
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in MixKind::ALL {
            assert_eq!(MixKind::parse(k.label()), Some(k));
        }
        assert_eq!(MixKind::parse("nope"), None);
    }

    #[test]
    fn every_mix_respects_placement() {
        for kind in MixKind::ALL {
            let mut g = MixGen::new(kind, MixSpec::default(), 3);
            for p in g.programs(100) {
                p.check_placement().unwrap();
                assert!(p.op_count() >= 1);
            }
        }
    }

    #[test]
    fn conserving_mixes_are_sum_neutral() {
        for kind in MixKind::ALL.into_iter().filter(|k| k.conserves_sum()) {
            let mut g = MixGen::new(kind, MixSpec::default(), 9);
            for p in g.programs(300) {
                let delta: i64 = p
                    .merged_ops()
                    .iter()
                    .map(|op| match op {
                        Operation::Increment { delta, .. } => *delta,
                        Operation::Read { .. } => 0,
                        other => panic!("{kind:?} produced non-conserving {other}"),
                    })
                    .sum();
                assert_eq!(delta, 0, "{kind:?} produced an unbalanced program");
            }
        }
    }

    #[test]
    fn hotkey_is_pure_increments() {
        let mut g = MixGen::new(MixKind::HotKey, MixSpec::default(), 5);
        for p in g.programs(200) {
            assert!(p
                .merged_ops()
                .iter()
                .all(|op| matches!(op, Operation::Increment { .. })));
        }
    }

    #[test]
    fn tpcc_lite_reserves_and_bounds() {
        let mut g = MixGen::new(MixKind::TpccLite, MixSpec::default(), 11);
        let mut saw_reserve = false;
        let mut fanouts = std::collections::BTreeSet::new();
        for p in g.programs(300) {
            assert!((5..=15).contains(&p.op_count()), "got {}", p.op_count());
            assert!((1..=3).contains(&p.sites().len()));
            fanouts.insert(p.sites().len());
            saw_reserve |= p
                .merged_ops()
                .iter()
                .any(|op| matches!(op, Operation::Reserve { .. }));
        }
        assert!(saw_reserve, "NewOrder without stock reserves");
        assert!(fanouts.len() >= 2, "fan-out never varied: {fanouts:?}");
    }

    #[test]
    fn read_heavy_interleaves_writers() {
        let mut g = MixGen::new(MixKind::ReadHeavy, MixSpec::default(), 2);
        let ps = g.programs(40);
        let writers = ps
            .iter()
            .filter(|p| p.merged_ops().iter().any(Operation::is_update))
            .count();
        let scans = ps.iter().filter(|p| p.op_count() >= 12).count();
        assert_eq!(writers, 10, "every fourth program writes");
        assert_eq!(scans, 30, "the rest are long scans");
    }

    #[test]
    fn intended_abort_rate_is_respected() {
        let spec = MixSpec {
            intended_abort_prob: 0.3,
            ..MixSpec::default()
        };
        let mut g = MixGen::new(MixKind::TpccLite, spec, 17);
        let n = 2000;
        let aborts = g.programs(n).iter().filter(|p| p.intends_abort).count();
        let rate = aborts as f64 / n as f64;
        assert!((0.25..0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn fingerprint_detects_any_divergence() {
        let a = MixGen::new(MixKind::HotKey, MixSpec::default(), 1).programs(50);
        let b = MixGen::new(MixKind::HotKey, MixSpec::default(), 1).programs(50);
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = MixGen::new(MixKind::HotKey, MixSpec::default(), 2).programs(50);
        assert_ne!(fingerprint(&a), fingerprint(&c));
        let mut mutated = a.clone();
        mutated[49].intends_abort = true;
        assert_ne!(fingerprint(&a), fingerprint(&mutated));
    }

    #[test]
    fn single_site_federation_works_for_every_mix() {
        let spec = MixSpec {
            sites: 1,
            ..MixSpec::default()
        };
        for kind in MixKind::ALL {
            let mut g = MixGen::new(kind, spec.clone(), 4);
            for p in g.programs(50) {
                assert_eq!(p.sites().len(), 1);
                p.check_placement().unwrap();
            }
        }
    }
}
