//! # amc-workload
//!
//! Synthetic workloads exercising the federation the way the paper's
//! motivating scenarios would: global transactions decomposed into per-site
//! local programs, with tunable contention (Zipf skew over a hot set),
//! operation mix (commuting increments vs. non-commuting writes), fan-out
//! (sites per transaction) and an intended-abort rate realised *through
//! transaction logic* (a read of a non-existent object), so intended aborts
//! travel the same code path real ones would.
//!
//! Three named scenarios mirror the integration use-cases of §1:
//!
//! * **bank** — money transfers between accounts at different institutions
//!   (pure increments: the MLT sweet spot);
//! * **inventory** — order placement: stock decrements plus order-record
//!   inserts (mixed commutativity);
//! * **travel** — trip booking across airline/hotel/car databases
//!   (read-check-then-write: the conservative end).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod program;
pub mod scenario;
pub mod transfers;

pub use generator::{OpMix, WorkloadGen, WorkloadSpec};
pub use program::{object, site_of_object, GlobalProgram, OBJECTS_PER_SITE_STRIDE};
pub use scenario::Scenario;
pub use transfers::{TransferGen, TransferSpec};
