//! # amc-workload
//!
//! Synthetic workloads exercising the federation the way the paper's
//! motivating scenarios would: global transactions decomposed into per-site
//! local programs, with tunable contention (Zipf skew over a hot set),
//! operation mix (commuting increments vs. non-commuting writes), fan-out
//! (sites per transaction) and an intended-abort rate realised *through
//! transaction logic* (a read of a non-existent object), so intended aborts
//! travel the same code path real ones would.
//!
//! Three named scenarios mirror the integration use-cases of §1:
//!
//! * **bank** — money transfers between accounts at different institutions
//!   (pure increments: the MLT sweet spot);
//! * **inventory** — order placement: stock decrements plus order-record
//!   inserts (mixed commutativity);
//! * **travel** — trip booking across airline/hotel/car databases
//!   (read-check-then-write: the conservative end).
//!
//! On top of the scenario generators sits the **contention-aware workload
//! engine** ([`mixes`]): a seeded Zipfian key stream ([`zipf::ZipfKeys`])
//! feeding production-shaped mixes — balanced transfers, a generic skewed
//! mix, hot-key commuting counters, a TPC-C-style `NewOrder` profile with
//! escrow reserves, and read-heavy scans with short writers. The same
//! streams drive the DES path, the threaded runtime, and `amc-loadgen`
//! over TCP (determinism contract: DESIGN.md §14; regime map:
//! OPERATORS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod mixes;
pub mod program;
pub mod scenario;
pub mod transfers;
pub mod zipf;

pub use generator::{OpMix, WorkloadGen, WorkloadSpec};
pub use mixes::{fingerprint, MixGen, MixKind, MixSpec};
pub use program::{object, site_of_object, GlobalProgram, OBJECTS_PER_SITE_STRIDE};
pub use scenario::Scenario;
pub use transfers::{TransferGen, TransferSpec};
pub use zipf::ZipfKeys;
