//! Named scenarios for the examples and domain benchmarks.

use crate::generator::{OpMix, WorkloadSpec};

/// The three motivating integration scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Inter-bank transfers: increments only, high commutativity.
    Bank,
    /// Order processing: stock decrements plus order-record writes.
    Inventory,
    /// Trip booking: read-check-then-write across three databases.
    Travel,
}

impl Scenario {
    /// A tuned [`WorkloadSpec`] for the scenario.
    pub fn spec(&self) -> WorkloadSpec {
        match self {
            Scenario::Bank => WorkloadSpec {
                sites: 3,
                objects_per_site: 500,
                zipf_theta: 0.6,
                ops_per_txn: 4,
                sites_per_txn: 2,
                mix: OpMix {
                    write: 0.0,
                    increment: 1.0,
                    reserve: 0.0,
                },
                intended_abort_prob: 0.02,
            },
            Scenario::Inventory => WorkloadSpec {
                sites: 4,
                objects_per_site: 400,
                zipf_theta: 0.8,
                ops_per_txn: 6,
                sites_per_txn: 2,
                mix: OpMix {
                    write: 0.1,
                    increment: 0.2,
                    reserve: 0.4,
                },
                intended_abort_prob: 0.05,
            },
            Scenario::Travel => WorkloadSpec {
                sites: 3,
                objects_per_site: 200,
                zipf_theta: 0.9,
                ops_per_txn: 6,
                sites_per_txn: 3,
                mix: OpMix {
                    write: 0.3,
                    increment: 0.1,
                    reserve: 0.3,
                },
                intended_abort_prob: 0.1,
            },
        }
    }

    /// Scenario name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Bank => "bank",
            Scenario::Inventory => "inventory",
            Scenario::Travel => "travel",
        }
    }

    /// Every scenario.
    pub const ALL: [Scenario; 3] = [Scenario::Bank, Scenario::Inventory, Scenario::Travel];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_internally_consistent() {
        for s in Scenario::ALL {
            let spec = s.spec();
            assert!(spec.sites >= 1);
            assert!(spec.sites_per_txn <= spec.sites);
            assert!(spec.mix.write + spec.mix.increment + spec.mix.reserve <= 1.0);
            assert!((0.0..=1.0).contains(&spec.intended_abort_prob));
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn bank_is_pure_increments() {
        let spec = Scenario::Bank.spec();
        assert_eq!(spec.mix.write, 0.0);
        assert_eq!(spec.mix.increment, 1.0);
    }

    #[test]
    fn travel_is_write_heavy_and_wide() {
        let spec = Scenario::Travel.spec();
        assert!(spec.mix.write >= 0.3);
        assert_eq!(spec.sites_per_txn, 3);
    }

    #[test]
    fn inventory_is_escrow_heavy() {
        let spec = Scenario::Inventory.spec();
        assert!(spec.mix.reserve >= 0.3);
    }
}
