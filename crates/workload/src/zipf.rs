//! Seeded Zipfian key generation — the contention dial of the workload
//! engine.
//!
//! Every contention-aware mix draws its keys from a [`ZipfKeys`] stream:
//! a pure function of `(n, theta, seed)` built on the deterministic
//! [`SimRng`], so a workload's access pattern is reproducible bit for bit
//! on the discrete-event runtime, the threaded runtime, and the networked
//! (`amc-loadgen`) runtime alike. `theta = 0` degenerates to uniform;
//! `theta` around 0.9–1.2 concentrates most draws on a handful of hot
//! keys — the regime where protocol choice starts to matter (see
//! OPERATORS.md).

use amc_sim::SimRng;

/// A seeded stream of Zipf-distributed ranks in `[0, n)`.
///
/// Rank 0 is the hottest key; the top-1 key's draw frequency is monotone
/// in `theta` (pinned by `tests/workload_mixes.rs`).
///
/// ```
/// use amc_workload::ZipfKeys;
///
/// // Same (n, theta, seed) — same key stream, always.
/// let a: Vec<u64> = ZipfKeys::new(1000, 0.9, 42).take(5).collect();
/// let b: Vec<u64> = ZipfKeys::new(1000, 0.9, 42).take(5).collect();
/// assert_eq!(a, b);
///
/// // Skew concentrates draws on low ranks: with theta = 1.2 the hottest
/// // 1% of keys takes far more than 1% of the draws.
/// let hot = ZipfKeys::new(1000, 1.2, 7).take(2000).filter(|&k| k < 10).count();
/// assert!(hot > 400, "hot head got only {hot}/2000 draws");
///
/// // theta = 0 is uniform: every key stays in range, none dominates.
/// let max = ZipfKeys::new(16, 0.0, 3).take(1000).max().unwrap();
/// assert!(max < 16);
/// ```
#[derive(Debug)]
pub struct ZipfKeys {
    rng: SimRng,
    n: u64,
    theta: f64,
}

impl ZipfKeys {
    /// A stream over `n` keys with skew `theta`, seeded deterministically.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "a key space needs at least one key");
        assert!(
            (0.0..=2.0).contains(&theta),
            "theta {theta} outside the supported [0, 2] range"
        );
        ZipfKeys {
            rng: SimRng::new(seed),
            n,
            theta,
        }
    }

    /// Draw the next key.
    pub fn draw(&mut self) -> u64 {
        self.rng.zipf(self.n, self.theta)
    }

    /// The key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The configured skew.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl Iterator for ZipfKeys {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.draw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a: Vec<u64> = ZipfKeys::new(100, 0.9, 11).take(64).collect();
        let b: Vec<u64> = ZipfKeys::new(100, 0.9, 11).take(64).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let a: Vec<u64> = ZipfKeys::new(1000, 0.9, 1).take(64).collect();
        let b: Vec<u64> = ZipfKeys::new(1000, 0.9, 2).take(64).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn draws_stay_in_range() {
        for theta in [0.0, 0.6, 1.2, 2.0] {
            assert!(ZipfKeys::new(17, theta, 5).take(2000).all(|k| k < 17));
        }
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_key_space_rejected() {
        ZipfKeys::new(0, 0.5, 1);
    }

    #[test]
    #[should_panic(expected = "outside the supported")]
    fn wild_theta_rejected() {
        ZipfKeys::new(10, 5.0, 1);
    }
}
